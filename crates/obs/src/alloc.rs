//! A counting global allocator and its process-wide registration.
//!
//! [`CountingAlloc`] wraps [`System`] and tracks current and peak live
//! bytes with relaxed atomics (moved here from
//! `hamlet-experiments::factorized` so every binary — the CLI included
//! — can report real peak-allocation numbers). A binary installs it
//! with `#[global_allocator]` and then calls [`install_meter`] so
//! library code (the CLI's `--metrics` rendering, the run journal) can
//! read the peak without knowing which binary it runs in.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A `System`-wrapping allocator that tracks current and peak live
/// bytes. Install as `#[global_allocator]` in a binary to make peak
/// numbers real; without it they read 0.
pub struct CountingAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh counter (const so it can back a static).
    pub const fn new() -> Self {
        Self {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Live bytes right now.
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// Forgets any peak above the current watermark.
    pub fn reset_peak(&self) {
        self.peak.store(self.current(), Ordering::Relaxed);
    }

    /// Peak live bytes since the last [`reset_peak`](Self::reset_peak).
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates all allocation to `System`; the bookkeeping uses
// only relaxed atomics and never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let now = self.current.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.current.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

static METER: OnceLock<&'static CountingAlloc> = OnceLock::new();

/// Registers the binary's installed allocator for process-wide peak
/// queries. Later calls are ignored (first installation wins).
pub fn install_meter(meter: &'static CountingAlloc) {
    let _ = METER.set(meter);
}

/// Peak live bytes from the installed allocator, or `None` when the
/// running binary did not install one.
pub fn peak_bytes() -> Option<usize> {
    METER.get().map(|m| m.peak())
}

/// Live bytes right now from the installed allocator, or `None` when
/// the running binary did not install one.
pub fn current_bytes() -> Option<usize> {
    METER.get().map(|m| m.current())
}

/// Resets the installed allocator's peak watermark to the current live
/// bytes, so a subsequent [`peak_bytes`] reports the peak of one phase
/// (e.g. a budgeted out-of-core ingest) rather than process lifetime.
/// No-op when no allocator is installed.
pub fn reset_peak() {
    if let Some(m) = METER.get() {
        m.reset_peak();
    }
}

/// Peak resident-set size of this process in bytes: the kernel's
/// `VmHWM` high-water mark where `/proc` exists, else the installed
/// allocator's peak (heap-only, an underestimate of true RSS), else
/// `None`. Unlike [`reset_peak`]-scoped heap peaks this is monotone
/// over the process lifetime — the honest number for "did the run fit
/// the memory budget".
pub fn peak_rss_bytes() -> Option<usize> {
    match std::fs::read_to_string("/proc/self/status") {
        Ok(status) => parse_vm_hwm(&status).or_else(peak_bytes),
        Err(_) => peak_bytes(),
    }
}

/// Extracts `VmHWM:  <n> kB` from `/proc/self/status` text as bytes.
fn parse_vm_hwm(status: &str) -> Option<usize> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: usize = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_alloc_tracks_peak() {
        // Not installed as the global allocator here; drive it directly.
        let a = CountingAlloc::new();
        unsafe {
            let layout = Layout::from_size_align(1024, 8).unwrap();
            let p = a.alloc(layout);
            assert!(a.current() >= 1024);
            assert!(a.peak() >= 1024);
            a.dealloc(p, layout);
        }
        assert_eq!(a.current(), 0);
        a.reset_peak();
        assert_eq!(a.peak(), 0);
    }

    #[test]
    fn vm_hwm_parses_and_rss_is_plausible() {
        assert_eq!(
            parse_vm_hwm("VmPeak:\t  999 kB\nVmHWM:\t    1024 kB\nVmRSS:\t 512 kB\n"),
            Some(1024 * 1024)
        );
        assert_eq!(parse_vm_hwm("VmRSS:\t 512 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
        // On Linux the live reading exists and a test process certainly
        // holds at least a page.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes().unwrap_or(0) > 4096);
        }
    }

    #[test]
    fn meter_absent_reads_none_then_sticks() {
        // This test binary never installs a global meter before this
        // point; install a static one and observe it.
        static A: CountingAlloc = CountingAlloc::new();
        install_meter(&A);
        assert_eq!(peak_bytes(), Some(A.peak()));
        // Second installation is a no-op.
        static B: CountingAlloc = CountingAlloc::new();
        install_meter(&B);
        assert!(std::ptr::eq(*METER.get().unwrap(), &A));
    }
}
