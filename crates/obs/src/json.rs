//! A minimal JSON value: render and parse, no dependencies.
//!
//! Exists so the run journal can emit *and read back* JSONL without a
//! registry crate (the build environment is offline — see `shims/`).
//! Covers the JSON the journal produces: objects, arrays, strings with
//! escapes, integers/floats, booleans, null. Not a general-purpose
//! parser (no surrogate-pair decoding in `\u` escapes beyond the BMP).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered without trailing `.0` for integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Writes `s` as a JSON string literal with escaping.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.render_into(&mut buf);
        f.write_str(&buf)
    }
}

impl Json {
    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// Nesting is capped at [`MAX_PARSE_DEPTH`] levels: the parser is
    /// recursive descent, and without the cap a hostile document of a
    /// few hundred thousand `[` characters overflows the thread stack —
    /// an abort, not a catchable error. Beyond the cap parsing returns
    /// a normal `Err`.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        match p.chars.next() {
            None => Ok(v),
            Some((i, c)) => Err(format!("trailing '{c}' at byte {i}")),
        }
    }
}

/// Maximum container nesting [`Json::parse`] accepts. Deep enough for
/// any document this workspace produces; shallow enough that the
/// recursive parser stays well inside even a small thread stack.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}', found '{c}' at byte {i}")),
            None => Err(format!("expected '{want}', found end of input")),
        }
    }

    fn literal(&mut self, rest: &str, value: Json) -> Result<Json, String> {
        for want in rest.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth >= MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting exceeds {MAX_PARSE_DEPTH} levels; document rejected"
            ));
        }
        self.skip_ws();
        match self.chars.peek().copied() {
            None => Err("unexpected end of input".into()),
            Some((_, '{')) => {
                self.chars.next();
                let mut members = Vec::new();
                self.skip_ws();
                if matches!(self.chars.peek(), Some((_, '}'))) {
                    self.chars.next();
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = match self.value(depth + 1)? {
                        Json::Str(s) => s,
                        other => return Err(format!("object key must be a string, got {other}")),
                    };
                    self.skip_ws();
                    self.expect(':')?;
                    let v = self.value(depth + 1)?;
                    members.push((key, v));
                    self.skip_ws();
                    match self.chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, '}')) => return Ok(Json::Obj(members)),
                        Some((i, c)) => {
                            return Err(format!("expected ',' or '}}' at byte {i}, found '{c}'"))
                        }
                        None => return Err("unterminated object".into()),
                    }
                }
            }
            Some((_, '[')) => {
                self.chars.next();
                let mut items = Vec::new();
                self.skip_ws();
                if matches!(self.chars.peek(), Some((_, ']'))) {
                    self.chars.next();
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.chars.next() {
                        Some((_, ',')) => continue,
                        Some((_, ']')) => return Ok(Json::Arr(items)),
                        Some((i, c)) => {
                            return Err(format!("expected ',' or ']' at byte {i}, found '{c}'"))
                        }
                        None => return Err("unterminated array".into()),
                    }
                }
            }
            Some((_, '"')) => {
                self.chars.next();
                let mut s = String::new();
                loop {
                    match self.chars.next() {
                        None => return Err("unterminated string".into()),
                        Some((_, '"')) => return Ok(Json::Str(s)),
                        Some((_, '\\')) => match self.chars.next() {
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, '/')) => s.push('/'),
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 'r')) => s.push('\r'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, 'b')) => s.push('\u{8}'),
                            Some((_, 'f')) => s.push('\u{c}'),
                            Some((_, 'u')) => {
                                let mut code = 0u32;
                                for _ in 0..4 {
                                    let (i, c) = self
                                        .chars
                                        .next()
                                        .ok_or("unterminated \\u escape".to_string())?;
                                    code = code * 16
                                        + c.to_digit(16)
                                            .ok_or(format!("bad hex '{c}' at byte {i}"))?;
                                }
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            Some((i, c)) => return Err(format!("bad escape '\\{c}' at byte {i}")),
                            None => return Err("unterminated escape".into()),
                        },
                        Some((_, c)) => s.push(c),
                    }
                }
            }
            Some((_, 't')) => {
                self.chars.next();
                self.literal("rue", Json::Bool(true))
            }
            Some((_, 'f')) => {
                self.chars.next();
                self.literal("alse", Json::Bool(false))
            }
            Some((_, 'n')) => {
                self.chars.next();
                self.literal("ull", Json::Null)
            }
            Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                self.chars.next();
                let mut end = start + c.len_utf8();
                while matches!(
                    self.chars.peek(),
                    Some((_, c)) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-')
                ) {
                    let (i, c) = self.chars.next().expect("peeked");
                    end = i + c.len_utf8();
                }
                self.text[start..end]
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| format!("bad number '{}': {e}", &self.text[start..end]))
            }
            Some((i, c)) => Err(format!("unexpected '{c}' at byte {i}")),
        }
    }
}

/// Shorthand for building an object.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = obj(vec![
            ("name", Json::Str("train \"quoted\"\nline".into())),
            ("n", Json::Num(42.0)),
            ("ratio", Json::Num(0.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "spans",
                Json::Arr(vec![obj(vec![("total_ns", Json::Num(123456789.0))])]),
            ),
        ]);
        let text = v.to_string();
        assert!(text.contains("\\\"quoted\\\""), "{text}");
        assert!(text.contains("\"n\":42,"), "{text}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("ratio").and_then(Json::as_f64), Some(0.25));
        assert_eq!(
            back.get("spans").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\" : \"x\\u0041\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("xA"));
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        // A few hundred thousand '[' would overflow the stack without
        // the depth cap — overflow is an abort, not a catchable panic,
        // so this test existing and passing IS the regression check.
        for open in ["[", "{\"k\":"] {
            let deep = open.repeat(500_000);
            let err = Json::parse(&deep).unwrap_err();
            assert!(err.contains("nesting exceeds"), "{err}");
        }
        // Balanced-but-too-deep documents are rejected too.
        let balanced = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&balanced).is_err());
        // Documents at reasonable depth still parse.
        let ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH - 1),
            "]".repeat(MAX_PARSE_DEPTH - 1)
        );
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
