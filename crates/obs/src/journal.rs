//! The JSONL run journal.
//!
//! One [`RunJournal`] per experiment or CLI invocation, appended as a
//! single JSON line to `results/journal/runs.jsonl` (override the
//! directory with `HAMLET_JOURNAL_DIR`). Each entry records what future
//! perf comparisons need to trust a number: the exact command, every
//! `HAMLET_*` knob in the environment, a git-describe-style version,
//! per-phase span rollups, the final metric values, and any
//! configuration warnings raised during the run.
//!
//! Schema (one object per line):
//!
//! ```json
//! {"schema":1,"timestamp_unix_s":...,"command":"train ...",
//!  "version":"0.1.0+g<short-hash>","config":{"HAMLET_SCALE":"0.05"},
//!  "outcome":"ok","warnings":[],
//!  "spans":[{"name":"...","count":1,"total_ns":1,"max_ns":1}],
//!  "metrics":[{"name":"...","kind":"counter","value":1,"count":0}]}
//! ```

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{obj, Json};
use crate::metrics::MetricSnapshot;
use crate::span::SpanRollup;

/// Journal schema version; bump on breaking shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Environment variable overriding the journal directory.
pub const JOURNAL_DIR_VAR: &str = "HAMLET_JOURNAL_DIR";

/// Default journal directory, relative to the working directory.
pub const DEFAULT_JOURNAL_DIR: &str = "results/journal";

fn warnings_buffer() -> &'static Mutex<Vec<String>> {
    static WARNINGS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    WARNINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Emits a loud configuration warning: printed to stderr immediately
/// and recorded for the next [`RunJournal::capture`].
pub fn record_warning(message: impl Into<String>) {
    let message = message.into();
    eprintln!("warning: {message}");
    warnings_buffer()
        .lock()
        .expect("warnings lock")
        .push(message);
}

/// Drains the recorded warnings.
pub fn take_warnings() -> Vec<String> {
    std::mem::take(&mut *warnings_buffer().lock().expect("warnings lock"))
}

fn model_family_cell() -> &'static Mutex<Option<String>> {
    static FAMILY: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    FAMILY.get_or_init(|| Mutex::new(None))
}

/// Records the classifier family the current run trains or serves
/// (`naive_bayes`, `tree`, `gbt`, ...). The next [`RunJournal::capture`]
/// drains it into the entry's `model_family` field; the last setter
/// before capture wins.
pub fn set_model_family(family: impl Into<String>) {
    *model_family_cell().lock().expect("model family lock") = Some(family.into());
}

/// Drains the recorded model family.
pub fn take_model_family() -> Option<String> {
    model_family_cell()
        .lock()
        .expect("model family lock")
        .take()
}

/// Git-describe-style version: crate version plus the short commit hash
/// read from `.git` (searched upward from the working directory), e.g.
/// `0.1.0+gf8ab7d1`. Falls back to the bare version outside a checkout.
pub fn version() -> String {
    let base = env!("CARGO_PKG_VERSION");
    match git_short_hash() {
        Some(hash) => format!("{base}+g{hash}"),
        None => base.to_string(),
    }
}

/// Resolves HEAD to a short hash by reading `.git` directly (the
/// environment may have no `git` binary on PATH; this stays
/// dependency- and subprocess-free).
fn git_short_hash() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            let full = if let Some(refname) = head.strip_prefix("ref: ") {
                match std::fs::read_to_string(git.join(refname.trim())) {
                    Ok(h) => h.trim().to_string(),
                    // Packed refs: scan .git/packed-refs for the ref.
                    Err(_) => {
                        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                        packed
                            .lines()
                            .find(|l| l.ends_with(refname.trim()))?
                            .split_whitespace()
                            .next()?
                            .to_string()
                    }
                }
            } else {
                head.to_string() // detached HEAD
            };
            if full.len() < 7 || !full.bytes().all(|b| b.is_ascii_hexdigit()) {
                return None;
            }
            return Some(full[..7].to_string());
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `HAMLET_*` variable currently set, sorted by name (the
/// config snapshot a future reader needs to reproduce the run).
pub fn capture_env_config() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = std::env::vars_os()
        .filter_map(|(k, v)| {
            let k = k.into_string().ok()?;
            if !k.starts_with("HAMLET_") {
                return None;
            }
            Some((k, v.to_string_lossy().into_owned()))
        })
        .collect();
    out.sort();
    out
}

/// One run's journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunJournal {
    /// The command or experiment that ran (e.g. `train --dataset yelp`).
    pub command: String,
    /// Unix timestamp (seconds) at capture.
    pub timestamp_unix_s: u64,
    /// Git-describe-style version.
    pub version: String,
    /// Configuration: `HAMLET_*` env plus caller-supplied pairs.
    pub config: Vec<(String, String)>,
    /// `"ok"` or an error description.
    pub outcome: String,
    /// Classifier family the run trained or served, when one applies
    /// (set via [`set_model_family`]).
    pub model_family: Option<String>,
    /// Configuration warnings raised during the run.
    pub warnings: Vec<String>,
    /// Per-span-name wall-clock rollups.
    pub spans: Vec<SpanRollup>,
    /// Final metric values.
    pub metrics: Vec<MetricSnapshot>,
}

impl RunJournal {
    /// Captures a journal entry for `command`: env config, version,
    /// pending warnings, the given span rollups, and a metrics
    /// snapshot taken now.
    pub fn capture(
        command: impl Into<String>,
        outcome: impl Into<String>,
        spans: Vec<SpanRollup>,
    ) -> Self {
        Self {
            command: command.into(),
            timestamp_unix_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            version: version(),
            config: capture_env_config(),
            outcome: outcome.into(),
            model_family: take_model_family(),
            warnings: take_warnings(),
            spans,
            metrics: crate::metrics::snapshot(),
        }
    }

    /// Adds one config pair (CLI flags and similar non-env knobs).
    pub fn with_config(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.config.push((key.into(), value.into()));
        self
    }

    /// The entry as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        obj(vec![
            ("schema", Json::Num(SCHEMA_VERSION as f64)),
            ("timestamp_unix_s", Json::Num(self.timestamp_unix_s as f64)),
            ("command", Json::Str(self.command.clone())),
            ("version", Json::Str(self.version.clone())),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("outcome", Json::Str(self.outcome.clone())),
            (
                "model_family",
                match &self.model_family {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            (
                "warnings",
                Json::Arr(self.warnings.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("name", Json::Str(s.name.to_string())),
                                ("count", Json::Num(s.count as f64)),
                                ("total_ns", Json::Num(s.total_ns as f64)),
                                ("max_ns", Json::Num(s.max_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics",
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            obj(vec![
                                ("name", Json::Str(m.name.to_string())),
                                ("kind", Json::Str(m.kind.to_string())),
                                ("value", Json::Num(m.value as f64)),
                                ("count", Json::Num(m.count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// The journal directory: `HAMLET_JOURNAL_DIR` or the default.
    pub fn dir() -> PathBuf {
        std::env::var_os(JOURNAL_DIR_VAR)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_JOURNAL_DIR))
    }

    /// Appends this entry as one line to `dir/runs.jsonl`, creating the
    /// directory if needed. Returns the file path written. The append is
    /// atomic ([`crate::fsio::atomic_append`]): a crash or injected IO
    /// failure mid-write never leaves a torn line behind.
    pub fn append_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("runs.jsonl");
        crate::fsio::atomic_append(&path, &format!("{}\n", self.to_json()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_json_round_trips_through_the_parser() {
        let entry = RunJournal {
            command: "train --dataset yelp".into(),
            timestamp_unix_s: 1_722_000_000,
            version: "0.1.0+gabcdef0".into(),
            config: vec![("HAMLET_SCALE".into(), "0.05".into())],
            outcome: "ok".into(),
            model_family: Some("naive_bayes".into()),
            warnings: vec!["invalid HAMLET_THREADS='x'".into()],
            spans: vec![SpanRollup {
                name: "cli.train",
                count: 1,
                total_ns: 123_456_789,
                max_ns: 123_456_789,
            }],
            metrics: vec![MetricSnapshot {
                name: "hamlet_rows_joined_total",
                kind: "counter",
                value: 42,
                count: 0,
            }],
        };
        let line = entry.to_json();
        assert!(!line.contains('\n'), "one line per entry");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            parsed.get("command").and_then(Json::as_str),
            Some("train --dataset yelp")
        );
        assert_eq!(
            parsed
                .get("config")
                .and_then(|c| c.get("HAMLET_SCALE"))
                .and_then(Json::as_str),
            Some("0.05")
        );
        let spans = parsed.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(
            spans[0].get("total_ns").and_then(Json::as_f64),
            Some(123_456_789.0)
        );
        let metrics = parsed.get("metrics").and_then(Json::as_arr).unwrap();
        assert_eq!(
            metrics[0].get("name").and_then(Json::as_str),
            Some("hamlet_rows_joined_total")
        );
        assert_eq!(metrics[0].get("value").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            parsed
                .get("warnings")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            parsed.get("model_family").and_then(Json::as_str),
            Some("naive_bayes")
        );
    }

    #[test]
    fn model_family_is_recorded_and_drained() {
        set_model_family("gbt");
        let entry = RunJournal::capture("fam", "ok", Vec::new());
        assert_eq!(entry.model_family.as_deref(), Some("gbt"));
        assert!(Json::parse(&entry.to_json())
            .unwrap()
            .get("model_family")
            .and_then(Json::as_str)
            .is_some());
        // Drained: a family-less run journals null.
        let entry = RunJournal::capture("fam", "ok", Vec::new());
        assert_eq!(entry.model_family, None);
        let parsed = Json::parse(&entry.to_json()).unwrap();
        assert_eq!(parsed.get("model_family"), Some(&Json::Null));
    }

    #[test]
    fn append_creates_dir_and_appends_lines() {
        let dir = std::env::temp_dir().join("hamlet_obs_journal_test");
        let _ = std::fs::remove_dir_all(&dir);
        let entry = RunJournal::capture("test-cmd", "ok", Vec::new());
        let path = entry.append_to(&dir).unwrap();
        entry.append_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("command").and_then(Json::as_str), Some("test-cmd"));
            assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warnings_are_recorded_and_drained() {
        record_warning("test warning one");
        let entry = RunJournal::capture("w", "ok", Vec::new());
        assert!(entry.warnings.iter().any(|w| w == "test warning one"));
        // Drained: a second capture starts clean.
        let entry = RunJournal::capture("w", "ok", Vec::new());
        assert!(!entry.warnings.iter().any(|w| w == "test warning one"));
    }

    #[test]
    fn version_is_describe_shaped() {
        let v = version();
        assert!(v.starts_with(env!("CARGO_PKG_VERSION")), "{v}");
        // In a git checkout the short hash is appended.
        if let Some((_, hash)) = v.split_once("+g") {
            assert_eq!(hash.len(), 7);
            assert!(hash.bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn env_config_captures_hamlet_vars() {
        std::env::set_var("HAMLET_OBS_JOURNAL_PROBE", "on");
        let cfg = capture_env_config();
        assert!(cfg
            .iter()
            .any(|(k, v)| k == "HAMLET_OBS_JOURNAL_PROBE" && v == "on"));
        std::env::remove_var("HAMLET_OBS_JOURNAL_PROBE");
    }
}
