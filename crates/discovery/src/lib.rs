//! # hamlet-discovery
//!
//! Schema discovery for the hamlet workspace: mine foreign keys and
//! multi-table functional dependencies from a directory of raw CSVs —
//! *without materializing any join* — and synthesize the [`Manifest`]
//! the rest of the pipeline (profile, advise, factorized training)
//! already consumes.
//!
//! The paper's decision machinery (TR/ROR, appendix-C decomposition,
//! the advisor) assumes the star schema's FKs and FDs are declared;
//! real users hand over schemaless CSV dumps. This crate closes that
//! gap with the same join-avoidance discipline the factorized learners
//! use: per-column fingerprint sketches propose inclusion dependencies
//! (FK edges with containment scores), and the implied FDs `FK -> X_R`
//! are verified by a count-table fold over per-table partitions, with a
//! dirty-data tolerance (`HAMLET_FD_MAX_VIOLATIONS`) that lets FDs
//! holding on all-but-quarantined rows qualify — every accepted *and*
//! rejected candidate journaled with its evidence.
//!
//! ```
//! use std::collections::BTreeMap;
//! use hamlet_discovery::{discover_corpus, DiscoveryConfig};
//!
//! let mut corpus = BTreeMap::new();
//! corpus.insert(
//!     "orders.csv".to_string(),
//!     "Churn,Qty,EmployerID\nyes,2,e1\nno,1,e2\nno,2,e1\n".to_string(),
//! );
//! corpus.insert(
//!     "employers.csv".to_string(),
//!     "EmployerID,Country\ne1,NZ\ne2,IN\n".to_string(),
//! );
//! let d = discover_corpus(&corpus, &DiscoveryConfig::default())?;
//! assert_eq!(d.report.entity, "orders");
//! assert_eq!(d.report.accepted_fks().count(), 1);
//! // The synthesized manifest loads like a hand-written one.
//! assert!(d.manifest_text.contains("fk EmployerID employers.csv closed"));
//! # Ok::<(), hamlet_discovery::DiscoveryError>(())
//! ```

pub mod error;
pub mod miner;
pub mod report;
pub mod sketch;
pub mod verify;

pub use error::DiscoveryError;
pub use miner::{discover_corpus, discover_dir, Discovery, DiscoveryConfig};
pub use report::{
    DiscoveryReport, EntityFdAnalysis, FdEvidence, FdScope, FkCandidate, KeyCandidate,
    TableSummary, UnplacedTable,
};
pub use sketch::{fnv1a64, ColumnSketch, DEFAULT_SKETCH_SIZE};
pub use verify::{check_fd, FdCheck, FdViolation, MAX_VIOLATION_EXAMPLES};

// Re-exported so downstream callers can name the manifest type without
// depending on hamlet-relational directly.
pub use hamlet_relational::Manifest;

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::path::Path;

    use super::*;
    use hamlet_relational::DirtyPolicy;

    fn corpus(files: &[(&str, &str)]) -> BTreeMap<String, String> {
        files
            .iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect()
    }

    fn star_corpus() -> BTreeMap<String, String> {
        corpus(&[
            (
                "customers.csv",
                "Churn,Gender,EmployerID,PlanID\n\
                 yes,F,e1,p1\nno,M,e2,p2\nno,F,e1,p1\nyes,M,e3,p2\nno,F,e2,p1\nyes,M,e3,p2\n",
            ),
            (
                "employers.csv",
                "EmployerID,Country,Size\ne1,NZ,big\ne2,IN,small\ne3,NZ,small\n",
            ),
            ("plans.csv", "PlanID,Tier\np1,free\np2,paid\n"),
        ])
    }

    #[test]
    fn mines_a_two_fk_star() {
        let d = discover_corpus(&star_corpus(), &DiscoveryConfig::default()).unwrap();
        assert_eq!(d.report.entity, "customers");
        assert_eq!(d.report.target, "Churn");
        let accepted: Vec<_> = d.report.accepted_fks().collect();
        assert_eq!(accepted.len(), 2);
        assert!(accepted
            .iter()
            .any(|e| e.fk_column == "EmployerID" && e.key_table == "employers"));
        assert!(accepted
            .iter()
            .any(|e| e.fk_column == "PlanID" && e.key_table == "plans"));
        // Attribute-table FDs key -> feature all verified clean.
        assert!(d
            .report
            .fds
            .iter()
            .filter(|f| f.scope == FdScope::AttributeTable)
            .all(|f| f.accepted && f.violations == 0));
        // The manifest loads into a 2-join star over the same corpus.
        let c = star_corpus();
        let star = d
            .manifest
            .load_with(Path::new(""), |p| {
                c.get(&p.to_string_lossy().into_owned())
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            })
            .unwrap();
        assert_eq!(star.k(), 2);
        assert_eq!(star.n_s(), 6);
        star.materialize_all().unwrap();
    }

    #[test]
    fn evidence_covers_rejections_too() {
        let d = discover_corpus(&star_corpus(), &DiscoveryConfig::default()).unwrap();
        // Gender ⊆ nothing: proposals against both keys exist, rejected.
        assert!(d.report.fks.iter().any(|e| e.fk_column == "Gender"
            && !e.accepted
            && e.reason.contains("below threshold")));
        // Every column was examined as a key candidate.
        assert!(d
            .report
            .keys
            .iter()
            .any(|k| k.column == "Churn" && !k.accepted));
        assert!(d
            .report
            .keys
            .iter()
            .any(|k| k.table == "employers" && k.column == "EmployerID" && k.accepted));
    }

    #[test]
    fn violation_tolerance_journals_dirty_fds() {
        // e1 appears twice in employers with conflicting Country: with
        // tolerance 0 the key (and edge) die; with tolerance 1 the edge
        // survives and the FD carries journaled violation evidence.
        let dirty = corpus(&[
            (
                "customers.csv",
                "Churn,EmployerID\nyes,e1\nno,e2\nno,e1\nyes,e2\n",
            ),
            ("employers.csv", "EmployerID,Country\ne1,NZ\ne2,IN\ne1,AU\n"),
        ]);
        let strict = discover_corpus(&dirty, &DiscoveryConfig::default());
        assert!(
            matches!(strict, Err(DiscoveryError::NoStar { .. })),
            "{strict:?}"
        );

        let tolerant = DiscoveryConfig {
            max_violations: 1,
            ..DiscoveryConfig::default()
        };
        let d = discover_corpus(&dirty, &tolerant).unwrap();
        assert_eq!(d.report.accepted_fks().count(), 1);
        let fd = d
            .report
            .fds
            .iter()
            .find(|f| f.dependent == "Country")
            .unwrap();
        assert!(fd.accepted);
        assert_eq!(fd.violations, 1);
        assert_eq!(fd.examples.len(), 1);
        assert_eq!(fd.examples[0].determinant_label, "e1");
    }

    #[test]
    fn single_table_corpus_falls_back_to_wide_csv_analysis() {
        let wide = corpus(&[(
            "t.csv",
            "y,emp,country\nyes,e1,NZ\nno,e2,IN\nyes,e1,NZ\nno,e3,IN\nyes,e2,IN\nno,e3,IN\n",
        )]);
        let d = discover_corpus(&wide, &DiscoveryConfig::default()).unwrap();
        assert_eq!(d.report.entity, "t");
        assert_eq!(d.report.target, "y");
        assert!(d.report.fks.is_empty());
        // emp -> country inferred and verified clean.
        assert!(d
            .report
            .fds
            .iter()
            .any(|f| f.determinant == "emp" && f.dependent == "country" && f.accepted));
        assert!(d
            .entity_analysis_outcome()
            .contains("decomposes further into 1 attribute table"));
        // Manifest is entity-only and parses.
        assert!(!d.manifest_text.contains("table "));
    }

    impl Discovery {
        fn entity_analysis_outcome(&self) -> &str {
            &self.report.entity_analysis.decompose_outcome
        }
    }

    #[test]
    fn empty_corpus_is_typed() {
        let e = discover_corpus(&BTreeMap::new(), &DiscoveryConfig::default()).unwrap_err();
        assert!(matches!(e, DiscoveryError::EmptyCorpus { .. }));
    }

    #[test]
    fn declared_target_is_validated() {
        let cfg = DiscoveryConfig {
            target: Some("Ghost".to_string()),
            ..DiscoveryConfig::default()
        };
        let e = discover_corpus(&star_corpus(), &cfg).unwrap_err();
        assert!(matches!(e, DiscoveryError::Target { .. }), "{e}");
        let cfg = DiscoveryConfig {
            target: Some("EmployerID".to_string()),
            ..DiscoveryConfig::default()
        };
        let e = discover_corpus(&star_corpus(), &cfg).unwrap_err();
        assert!(e.to_string().contains("foreign-key column"), "{e}");
    }

    #[test]
    fn dirty_rows_follow_the_policy() {
        let mut c = star_corpus();
        c.insert(
            "customers.csv".to_string(),
            "Churn,Gender,EmployerID,PlanID\nyes,F,e1,p1\nno,M\nno,F,e1,p1\nyes,M,e3,p2\n"
                .to_string(),
        );
        // Default (quarantine) mines through the ragged row.
        let d = discover_corpus(&c, &DiscoveryConfig::default()).unwrap();
        let summary = d
            .report
            .tables
            .iter()
            .find(|t| t.table == "customers")
            .unwrap();
        assert_eq!(summary.quarantined, 1);
        assert_eq!(summary.total_rows, 4);
        // Abort surfaces the CSV fault as a typed relational error.
        let strict = DiscoveryConfig {
            on_dirty: DirtyPolicy::Abort,
            ..DiscoveryConfig::default()
        };
        assert!(matches!(
            discover_corpus(&c, &strict),
            Err(DiscoveryError::Relational(_))
        ));
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let base = discover_corpus(&star_corpus(), &DiscoveryConfig::default()).unwrap();
        for threads in [2, 8] {
            let cfg = DiscoveryConfig {
                threads,
                ..DiscoveryConfig::default()
            };
            let d = discover_corpus(&star_corpus(), &cfg).unwrap();
            assert_eq!(d.manifest_text, base.manifest_text);
            assert_eq!(
                d.report.to_json().to_string(),
                base.report.to_json().to_string()
            );
        }
    }

    #[test]
    fn discover_dir_roundtrip() {
        let dir = std::env::temp_dir().join("hamlet_discovery_dir_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in star_corpus() {
            std::fs::write(dir.join(name), text).unwrap();
        }
        let d = discover_dir(&dir, &DiscoveryConfig::default()).unwrap();
        assert_eq!(d.report.entity, "customers");
        // The manifest written next to the corpus loads from disk.
        let star = d.manifest.load(&dir).unwrap();
        assert_eq!(star.k(), 2);
        std::fs::remove_dir_all(&dir).ok();
        let e = discover_dir(&dir, &DiscoveryConfig::default()).unwrap_err();
        assert!(matches!(
            e,
            DiscoveryError::Io { .. } | DiscoveryError::EmptyCorpus { .. }
        ));
    }
}
