//! Discovery evidence: every candidate the miner accepted or rejected.
//!
//! The subsystem's contract is that no decision is silent: each key
//! candidate, FK edge, and FD carries its evidence (distinct ratios,
//! containment, violation counts with examples) whether it was accepted
//! or not, so an analyst can audit why the synthesized manifest looks
//! the way it does. The report renders to JSON via `hamlet_obs::json`
//! and is written with `hamlet_obs::atomic_write`; the rendered bytes
//! are bit-identical at any `HAMLET_THREADS` (the thread-invariance
//! proptest compares them directly), so nothing thread- or time-
//! dependent may enter these structures.

use std::path::Path;

use hamlet_obs::json::{obj, Json};

use crate::verify::FdViolation;

/// One loaded CSV file, pre-mining.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSummary {
    /// File name within the corpus (manifest file reference).
    pub file: String,
    /// Table name (file stem).
    pub table: String,
    /// Clean rows loaded.
    pub rows: usize,
    /// Columns in the header.
    pub columns: usize,
    /// Rows quarantined by the dirty policy during the mining load.
    pub quarantined: usize,
    /// Data rows present in the file (clean + quarantined).
    pub total_rows: usize,
}

/// A column examined as a candidate key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyCandidate {
    /// Table the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Rows in the column.
    pub rows: usize,
    /// Exact distinct labels.
    pub distinct: usize,
    /// `rows - distinct` — duplicate-carrying rows.
    pub duplicates: usize,
    /// Whether the column qualifies as a key under the tolerance.
    pub accepted: bool,
}

/// A proposed inclusion dependency `fk_table.fk_column ⊆ key_table.key_column`.
#[derive(Debug, Clone, PartialEq)]
pub struct FkCandidate {
    /// Referencing table.
    pub fk_table: String,
    /// Referencing column.
    pub fk_column: String,
    /// Referenced table.
    pub key_table: String,
    /// Referenced table's file name.
    pub key_file: String,
    /// Referenced key column.
    pub key_column: String,
    /// Estimated containment of the FK's values in the key's.
    pub containment: f64,
    /// Whether the containment is exact (neither sketch truncated).
    pub exact: bool,
    /// Distinct values on the FK side.
    pub fk_distinct: usize,
    /// Distinct values on the key side.
    pub key_distinct: usize,
    /// Closed-domain flag inferred for the edge (full containment).
    pub closed: bool,
    /// Whether the edge made it into the manifest.
    pub accepted: bool,
    /// Why it was accepted or rejected.
    pub reason: String,
}

/// Where an FD was verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdScope {
    /// `key -> feature` inside an attribute table (the paper's
    /// `FK -> X_R` after factorization through the join).
    AttributeTable,
    /// `FK -> X_S` on the entity table (appendix-C redundancy evidence).
    Entity,
}

impl FdScope {
    fn as_str(&self) -> &'static str {
        match self {
            FdScope::AttributeTable => "attribute_table",
            FdScope::Entity => "entity",
        }
    }
}

/// A verified FD with its full evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FdEvidence {
    /// Verification scope.
    pub scope: FdScope,
    /// Table the check ran in.
    pub table: String,
    /// Determinant attribute.
    pub determinant: String,
    /// Dependent attribute.
    pub dependent: String,
    /// Rows scanned.
    pub rows: usize,
    /// Distinct determinant values.
    pub groups: usize,
    /// Rows disagreeing with their group majority.
    pub violations: u64,
    /// Example violations (row order, capped).
    pub examples: Vec<FdViolation>,
    /// Whether the FD qualified under `HAMLET_FD_MAX_VIOLATIONS`.
    pub accepted: bool,
}

/// Appendix-C analysis of the accepted entity-side FDs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EntityFdAnalysis {
    /// Entity attributes functionally determined by some FK (candidates
    /// for omission under the decision rules).
    pub redundant_attributes: Vec<String>,
    /// The star-compatible FD subset, as `determinant -> dep1,dep2`.
    pub compatible_fds: Vec<String>,
    /// Outcome of feeding the compatible subset to `decompose_star` on
    /// the mined entity table.
    pub decompose_outcome: String,
}

/// A table left out of the synthesized manifest, with the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct UnplacedTable {
    /// Table name.
    pub table: String,
    /// Why it could not be placed in the star.
    pub reason: String,
}

/// Full evidence for one discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryReport {
    /// Containment threshold the run used.
    pub min_containment: f64,
    /// FD violation tolerance the run used.
    pub max_violations: u64,
    /// Sketch cap the run used.
    pub sketch_size: usize,
    /// Loaded tables, in file-name order.
    pub tables: Vec<TableSummary>,
    /// Chosen entity table.
    pub entity: String,
    /// Why that table was chosen as the star center.
    pub entity_reason: String,
    /// Chosen target column.
    pub target: String,
    /// Why that column was chosen as the target.
    pub target_reason: String,
    /// Every key candidate examined.
    pub keys: Vec<KeyCandidate>,
    /// Every FK edge proposed, accepted or not.
    pub fks: Vec<FkCandidate>,
    /// Every FD verified, accepted or not.
    pub fds: Vec<FdEvidence>,
    /// Appendix-C analysis over the entity-side FDs.
    pub entity_analysis: EntityFdAnalysis,
    /// Tables excluded from the manifest.
    pub unplaced: Vec<UnplacedTable>,
}

fn violation_json(v: &FdViolation) -> Json {
    obj(vec![
        ("row", Json::Num(v.row as f64)),
        ("determinant", Json::Str(v.determinant_label.clone())),
        ("expected", Json::Str(v.expected_label.clone())),
        ("found", Json::Str(v.found_label.clone())),
    ])
}

impl DiscoveryReport {
    /// Renders the full evidence as a JSON object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("kind", Json::Str("hamlet-discovery-report".to_string())),
            ("min_containment", Json::Num(self.min_containment)),
            ("max_violations", Json::Num(self.max_violations as f64)),
            ("sketch_size", Json::Num(self.sketch_size as f64)),
            ("entity", Json::Str(self.entity.clone())),
            ("entity_reason", Json::Str(self.entity_reason.clone())),
            ("target", Json::Str(self.target.clone())),
            ("target_reason", Json::Str(self.target_reason.clone())),
            (
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("file", Json::Str(t.file.clone())),
                                ("table", Json::Str(t.table.clone())),
                                ("rows", Json::Num(t.rows as f64)),
                                ("columns", Json::Num(t.columns as f64)),
                                ("quarantined", Json::Num(t.quarantined as f64)),
                                ("total_rows", Json::Num(t.total_rows as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "keys",
                Json::Arr(
                    self.keys
                        .iter()
                        .map(|k| {
                            obj(vec![
                                ("table", Json::Str(k.table.clone())),
                                ("column", Json::Str(k.column.clone())),
                                ("rows", Json::Num(k.rows as f64)),
                                ("distinct", Json::Num(k.distinct as f64)),
                                ("duplicates", Json::Num(k.duplicates as f64)),
                                ("accepted", Json::Bool(k.accepted)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fks",
                Json::Arr(
                    self.fks
                        .iter()
                        .map(|e| {
                            obj(vec![
                                ("fk_table", Json::Str(e.fk_table.clone())),
                                ("fk_column", Json::Str(e.fk_column.clone())),
                                ("key_table", Json::Str(e.key_table.clone())),
                                ("key_column", Json::Str(e.key_column.clone())),
                                ("containment", Json::Num(e.containment)),
                                ("exact", Json::Bool(e.exact)),
                                ("fk_distinct", Json::Num(e.fk_distinct as f64)),
                                ("key_distinct", Json::Num(e.key_distinct as f64)),
                                ("closed", Json::Bool(e.closed)),
                                ("accepted", Json::Bool(e.accepted)),
                                ("reason", Json::Str(e.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fds",
                Json::Arr(
                    self.fds
                        .iter()
                        .map(|fd| {
                            obj(vec![
                                ("scope", Json::Str(fd.scope.as_str().to_string())),
                                ("table", Json::Str(fd.table.clone())),
                                ("determinant", Json::Str(fd.determinant.clone())),
                                ("dependent", Json::Str(fd.dependent.clone())),
                                ("rows", Json::Num(fd.rows as f64)),
                                ("groups", Json::Num(fd.groups as f64)),
                                ("violations", Json::Num(fd.violations as f64)),
                                (
                                    "examples",
                                    Json::Arr(fd.examples.iter().map(violation_json).collect()),
                                ),
                                ("accepted", Json::Bool(fd.accepted)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "entity_analysis",
                obj(vec![
                    (
                        "redundant_attributes",
                        Json::Arr(
                            self.entity_analysis
                                .redundant_attributes
                                .iter()
                                .map(|a| Json::Str(a.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "compatible_fds",
                        Json::Arr(
                            self.entity_analysis
                                .compatible_fds
                                .iter()
                                .map(|a| Json::Str(a.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "decompose_outcome",
                        Json::Str(self.entity_analysis.decompose_outcome.clone()),
                    ),
                ]),
            ),
            (
                "unplaced",
                Json::Arr(
                    self.unplaced
                        .iter()
                        .map(|u| {
                            obj(vec![
                                ("table", Json::Str(u.table.clone())),
                                ("reason", Json::Str(u.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the rendered report atomically (tmp + fsync + rename).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_string();
        text.push('\n');
        hamlet_obs::atomic_write(path, text.as_bytes())
    }

    /// Accepted FK edges, in report order.
    pub fn accepted_fks(&self) -> impl Iterator<Item = &FkCandidate> {
        self.fks.iter().filter(|e| e.accepted)
    }

    /// Accepted FDs, in report order.
    pub fn accepted_fds(&self) -> impl Iterator<Item = &FdEvidence> {
        self.fds.iter().filter(|fd| fd.accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_reparses() {
        let report = DiscoveryReport {
            min_containment: 1.0,
            max_violations: 0,
            sketch_size: 64,
            tables: vec![TableSummary {
                file: "s.csv".into(),
                table: "s".into(),
                rows: 3,
                columns: 2,
                quarantined: 1,
                total_rows: 4,
            }],
            entity: "s".into(),
            entity_reason: "covers 1 table".into(),
            target: "y".into(),
            target_reason: "smallest distinct".into(),
            keys: vec![KeyCandidate {
                table: "r".into(),
                column: "k".into(),
                rows: 3,
                distinct: 3,
                duplicates: 0,
                accepted: true,
            }],
            fks: vec![FkCandidate {
                fk_table: "s".into(),
                fk_column: "k".into(),
                key_table: "r".into(),
                key_file: "r.csv".into(),
                key_column: "k".into(),
                containment: 1.0,
                exact: true,
                fk_distinct: 3,
                key_distinct: 3,
                closed: true,
                accepted: true,
                reason: "containment 1".into(),
            }],
            fds: vec![FdEvidence {
                scope: FdScope::AttributeTable,
                table: "r".into(),
                determinant: "k".into(),
                dependent: "f".into(),
                rows: 3,
                groups: 3,
                violations: 0,
                examples: vec![],
                accepted: true,
            }],
            entity_analysis: EntityFdAnalysis::default(),
            unplaced: vec![UnplacedTable {
                table: "orphan".into(),
                reason: "no edge".into(),
            }],
        };
        let text = report.to_json().to_string();
        let parsed = hamlet_obs::json::Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(|k| k.as_str()),
            Some("hamlet-discovery-report")
        );
        assert_eq!(parsed.get("fks").and_then(|a| a.as_arr()).unwrap().len(), 1);
        assert_eq!(report.accepted_fks().count(), 1);
        assert_eq!(report.accepted_fds().count(), 1);
    }
}
