//! Per-column fingerprint sketches for schema mining.
//!
//! Inclusion-dependency mining needs to answer "are the values of column
//! A a subset of the values of column B?" for many column pairs across
//! tables without ever joining them. A [`ColumnSketch`] summarizes one
//! column as: its exact row/distinct counts, its lexicographic label
//! extremes, and a k-minimum-values (KMV) set of 64-bit label hashes.
//! Below the cap the hash set is the *exact* distinct set, so containment
//! is exact (the zero-false-negative regime the acceptance tests rely
//! on); above the cap the KMV construction keeps the `k` smallest hashes
//! and containment becomes an unbiased estimate over the shared hash
//! prefix, with memory bounded by the cap instead of the column's
//! cardinality.
//!
//! Labels are hashed with FNV-1a (64-bit), matching the label-based FK
//! matching the manifest loader performs: two columns agree exactly when
//! their label strings agree.

use hamlet_relational::Column;

/// Default cap on stored hashes per column (`HAMLET_SKETCH_SIZE`).
pub const DEFAULT_SKETCH_SIZE: usize = 1 << 16;

/// FNV-1a 64-bit hash of a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of one column: exact counts plus a capped KMV hash set.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    /// Table the column came from.
    pub table: String,
    /// Column (attribute) name.
    pub column: String,
    /// Rows in the column (post-quarantine).
    pub rows: usize,
    /// Exact number of distinct labels observed.
    pub distinct: usize,
    /// Lexicographically smallest observed label.
    pub min_label: String,
    /// Lexicographically largest observed label.
    pub max_label: String,
    /// Whether the hash set was truncated to the cap (KMV regime).
    pub sampled: bool,
    /// Sorted ascending distinct label hashes, at most the build cap.
    hashes: Vec<u64>,
}

impl ColumnSketch {
    /// Sketches a column, keeping at most `cap` label hashes.
    pub fn of_column(table: &str, column_name: &str, col: &Column, cap: usize) -> ColumnSketch {
        let cap = cap.max(1);
        let domain = col.domain();
        // Observed codes (a column may not touch every domain value).
        let mut seen = vec![false; domain.size()];
        for &c in col.codes() {
            seen[c as usize] = true;
        }
        let mut distinct = 0usize;
        let mut min_label: Option<String> = None;
        let mut max_label: Option<String> = None;
        let mut hashes: Vec<u64> = Vec::new();
        for (code, _) in seen.iter().enumerate().filter(|(_, &s)| s) {
            let label = domain.label(code as u32);
            distinct += 1;
            hashes.push(fnv1a64(label.as_bytes()));
            let label = label.into_owned();
            if min_label.as_deref().is_none_or(|m| label.as_str() < m) {
                min_label = Some(label.clone());
            }
            if max_label.as_deref().is_none_or(|m| label.as_str() > m) {
                max_label = Some(label);
            }
        }
        hashes.sort_unstable();
        hashes.dedup();
        let sampled = hashes.len() > cap;
        hashes.truncate(cap); // KMV: keep the k smallest hashes
        ColumnSketch {
            table: table.to_string(),
            column: column_name.to_string(),
            rows: col.len(),
            distinct,
            min_label: min_label.unwrap_or_default(),
            max_label: max_label.unwrap_or_default(),
            sampled,
            hashes,
        }
    }

    /// Rows carrying a label that already appeared earlier in the column
    /// (zero for a candidate key).
    pub fn duplicate_rows(&self) -> usize {
        self.rows.saturating_sub(self.distinct)
    }

    /// Whether containment estimates against this sketch are exact.
    pub fn exact(&self) -> bool {
        !self.sampled
    }

    /// The largest hash this sketch is complete up to (`u64::MAX` when
    /// the whole distinct set fits).
    fn threshold(&self) -> u64 {
        if self.sampled {
            self.hashes.last().copied().unwrap_or(u64::MAX)
        } else {
            u64::MAX
        }
    }

    /// Estimated containment `|self ∩ sup| / |self|` — the fraction of
    /// this column's values present in `sup`. Exact when neither sketch
    /// was truncated; otherwise estimated over the hash range both
    /// sketches are complete for (the KMV threshold intersection).
    pub fn containment_in(&self, sup: &ColumnSketch) -> f64 {
        let theta = self.threshold().min(sup.threshold());
        let mut seen = 0usize;
        let mut hit = 0usize;
        for &h in &self.hashes {
            if h > theta {
                break;
            }
            seen += 1;
            if sup.hashes.binary_search(&h).is_ok() {
                hit += 1;
            }
        }
        if seen == 0 {
            return 0.0;
        }
        hit as f64 / seen as f64
    }

    /// Cheap necessary-condition pre-filter for `self ⊆ sup`: a subset's
    /// label range cannot extend beyond the superset's (only valid when
    /// `sup` is exact — a truncated sketch no longer knows its extremes'
    /// hashes, but min/max labels are tracked exactly regardless).
    pub fn range_within(&self, sup: &ColumnSketch) -> bool {
        self.min_label >= sup.min_label && self.max_label <= sup.max_label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relational::Domain;

    fn col(labels: &[&str], codes: Vec<u32>) -> Column {
        Column::new_unchecked(Domain::from_labels("c", labels).shared(), codes)
    }

    #[test]
    fn counts_and_extremes_are_exact() {
        let c = col(&["b", "a", "c"], vec![0, 1, 2, 0, 0]);
        let s = ColumnSketch::of_column("T", "c", &c, 1024);
        assert_eq!(s.rows, 5);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.duplicate_rows(), 2);
        assert_eq!(s.min_label, "a");
        assert_eq!(s.max_label, "c");
        assert!(s.exact());
    }

    #[test]
    fn unobserved_domain_values_do_not_count() {
        let c = col(&["x", "y", "z"], vec![0, 0, 1]);
        let s = ColumnSketch::of_column("T", "c", &c, 1024);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.max_label, "y");
    }

    #[test]
    fn exact_containment() {
        let sup = ColumnSketch::of_column("R", "k", &col(&["a", "b", "c"], vec![0, 1, 2]), 1024);
        let sub = ColumnSketch::of_column("S", "fk", &col(&["a", "c"], vec![0, 1]), 1024);
        assert_eq!(sub.containment_in(&sup), 1.0);
        let not = ColumnSketch::of_column("S", "fk", &col(&["a", "q"], vec![0, 1]), 1024);
        assert_eq!(not.containment_in(&sup), 0.5);
        assert_eq!(sup.containment_in(&sub), 2.0 / 3.0);
    }

    #[test]
    fn capped_sketch_estimates_over_shared_prefix() {
        let labels: Vec<String> = (0..500).map(|i| format!("v{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        let codes: Vec<u32> = (0..500).collect();
        let full = col(&refs, codes.clone());
        let sup = ColumnSketch::of_column("R", "k", &full, 64);
        assert!(sup.sampled);
        assert!(!sup.exact());
        // A true subset still reads as fully contained despite sampling.
        let sub_codes: Vec<u32> = (0..250).collect();
        let sub = ColumnSketch::of_column("S", "fk", &col(&refs, sub_codes), 64);
        assert_eq!(sub.containment_in(&sup), 1.0);
        // Distinct count stays exact even when hashes are capped.
        assert_eq!(sup.distinct, 500);
    }

    #[test]
    fn range_prefilter() {
        let sup = ColumnSketch::of_column("R", "k", &col(&["b", "c", "d"], vec![0, 1, 2]), 16);
        let inside = ColumnSketch::of_column("S", "f", &col(&["b", "c"], vec![0, 1]), 16);
        let outside = ColumnSketch::of_column("S", "f", &col(&["a", "c"], vec![0, 1]), 16);
        assert!(inside.range_within(&sup));
        assert!(!outside.range_within(&sup));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the sketch format is compared bit-for-bit across
        // thread counts, so the hash function must never drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
