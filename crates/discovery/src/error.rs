//! Typed errors for schema discovery.

use std::fmt;

use hamlet_obs::EnvError;
use hamlet_relational::RelationalError;

/// An error raised while mining a corpus. Every failure mode is typed:
/// chaos-corrupted corpora must surface as one of these (or as
/// tolerance-journaled evidence), never as a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryError {
    /// The corpus holds no CSV files.
    EmptyCorpus {
        /// Directory (or logical source) that was scanned.
        source: String,
    },
    /// A corpus file could not be read.
    Io {
        /// Path of the offending file.
        path: String,
        /// The underlying I/O error text.
        message: String,
    },
    /// A relational-layer failure (CSV parse, schema validation, dirty
    /// budget, manifest synthesis).
    Relational(RelationalError),
    /// An invalid discovery knob (`HAMLET_FD_MAX_VIOLATIONS`, ...).
    Env(EnvError),
    /// The corpus has several tables but no star shape could be mined.
    NoStar {
        /// Why no entity table could be chosen.
        reason: String,
    },
    /// No usable target column (bad `--target`, or no candidate).
    Target {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyCorpus { source } => {
                write!(f, "discovery: no CSV files found in '{source}'")
            }
            Self::Io { path, message } => write!(f, "discovery: cannot read {path}: {message}"),
            Self::Relational(e) => write!(f, "discovery: {e}"),
            Self::Env(e) => write!(f, "discovery: {e}"),
            Self::NoStar { reason } => write!(f, "discovery: no star schema found: {reason}"),
            Self::Target { reason } => write!(f, "discovery: no target: {reason}"),
        }
    }
}

impl std::error::Error for DiscoveryError {}

impl From<RelationalError> for DiscoveryError {
    fn from(e: RelationalError) -> Self {
        Self::Relational(e)
    }
}

impl From<EnvError> for DiscoveryError {
    fn from(e: EnvError) -> Self {
        Self::Env(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = DiscoveryError::NoStar {
            reason: "no edge met containment 1.00".into(),
        };
        assert!(e.to_string().contains("no star schema"));
        let e = DiscoveryError::Io {
            path: "/x/a.csv".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/x/a.csv"));
    }
}
