//! The schema miner: raw CSVs in, validated manifest + evidence out.
//!
//! Pipeline (each stage parallelized with
//! `hamlet_obs::parallel::run_indexed`, which returns results in index
//! order so output is bit-identical at any `HAMLET_THREADS`):
//!
//! 1. **Load** every `*.csv` as an all-nominal table (no roles assumed;
//!    dup keys and bad numerics stay visible as data, dirty rows follow
//!    the configured [`DirtyPolicy`]).
//! 2. **Sketch** every column ([`ColumnSketch`]): exact distinct counts
//!    plus capped KMV hash sets — the only cross-table state, so peak
//!    memory is bounded by per-table sketches, never a joined width.
//! 3. **Propose** candidate keys (distinct ≈ rows within the violation
//!    tolerance) and FK edges (containment ≥ `HAMLET_FD_MIN_CONTAINMENT`),
//!    pick the star center as the table whose accepted edges cover the
//!    most other tables.
//! 4. **Verify** the implied FDs factorized ([`check_fd`]): `key -> X_R`
//!    per attribute table, `FK -> X_S` on the entity (appendix-C
//!    redundancy evidence), each accepted within
//!    `HAMLET_FD_MAX_VIOLATIONS` or rejected, all journaled.
//! 5. **Synthesize** a manifest, validated by [`Manifest::parse`], that
//!    drops straight into `advise` / `train --strategy factorize`.

use std::collections::BTreeMap;
use std::path::Path;

use hamlet_obs::counter_add;
use hamlet_obs::parallel::run_indexed;
use hamlet_relational::{
    csv_header, csv_header_path, decompose_star, read_csv_file_lenient, read_csv_lenient,
    redundant_attributes, select_compatible_fds, CsvLoad, DirtyPolicy, FunctionalDependency,
    Manifest, Table,
};

use crate::error::DiscoveryError;
use crate::report::{
    DiscoveryReport, EntityFdAnalysis, FdEvidence, FdScope, FkCandidate, KeyCandidate,
    TableSummary, UnplacedTable,
};
use crate::sketch::{ColumnSketch, DEFAULT_SKETCH_SIZE};
use crate::verify::check_fd;

/// Discovery knobs. `threads` defaults to 1 (callers pass
/// `hamlet_obs::env::resolved_threads()`; the proptests pin it).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryConfig {
    /// Minimum containment for an FK edge (`HAMLET_FD_MIN_CONTAINMENT`,
    /// default 1.0 — exact inclusion).
    pub min_containment: f64,
    /// FD / key violation tolerance (`HAMLET_FD_MAX_VIOLATIONS`,
    /// default 0 — exact FDs only).
    pub max_violations: u64,
    /// Per-column hash-sketch cap (`HAMLET_SKETCH_SIZE`).
    pub sketch_size: usize,
    /// Worker threads for the sketch / edge / FD sweeps.
    pub threads: usize,
    /// Declared target column (heuristic pick when `None`).
    pub target: Option<String>,
    /// Dirty-row policy for the mining loads.
    pub on_dirty: DirtyPolicy,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_containment: 1.0,
            max_violations: 0,
            sketch_size: DEFAULT_SKETCH_SIZE,
            threads: 1,
            target: None,
            on_dirty: DirtyPolicy::Quarantine {
                max_bad_rows: usize::MAX,
            },
        }
    }
}

impl DiscoveryConfig {
    /// Reads the discovery knobs from the environment (strict parsing;
    /// an invalid value is a typed error, not a silent default) and the
    /// worker count from `HAMLET_THREADS`.
    pub fn from_env() -> Result<DiscoveryConfig, DiscoveryError> {
        let mut cfg = DiscoveryConfig::default();
        if let Some(v) = hamlet_obs::env::var_where(
            "HAMLET_FD_MIN_CONTAINMENT",
            "a float in (0, 1]",
            |&v: &f64| v > 0.0 && v <= 1.0,
        )? {
            cfg.min_containment = v;
        }
        if let Some(v) =
            hamlet_obs::env::var::<u64>("HAMLET_FD_MAX_VIOLATIONS", "a non-negative integer")?
        {
            cfg.max_violations = v;
        }
        if let Some(v) =
            hamlet_obs::env::var_where("HAMLET_SKETCH_SIZE", "a positive integer", |&v: &usize| {
                v > 0
            })?
        {
            cfg.sketch_size = v;
        }
        cfg.threads = hamlet_obs::env::resolved_threads();
        Ok(cfg)
    }
}

/// Result of a discovery run: the synthesized manifest (text and parsed)
/// plus the full evidence report.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// Manifest text, loadable with [`Manifest::parse`] + `load`.
    pub manifest_text: String,
    /// The parsed (already validated) manifest.
    pub manifest: Manifest,
    /// Evidence for every accepted and rejected candidate.
    pub report: DiscoveryReport,
}

/// One loaded corpus table.
struct Mined {
    file: String,
    name: String,
    table: Table,
    quarantined: usize,
    total_rows: usize,
}

/// File stem of a corpus file name (`x.csv` -> `x`), matching the
/// manifest loader's naming.
fn stem(file: &str) -> String {
    file.rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".csv")
        .to_string()
}

/// All-nominal feature specs for every header column — the role-free
/// mining load shared by the file and in-memory paths.
fn mining_specs(header: &[String]) -> Vec<(String, hamlet_relational::ColumnSpec)> {
    header
        .iter()
        .map(|h| (h.clone(), hamlet_relational::ColumnSpec::feature(h)))
        .collect()
}

/// Wraps one mining load into its [`Mined`] record, warning about
/// quarantined rows exactly as the legacy in-memory path did.
fn mined_from_load(file: &str, name: String, load: CsvLoad) -> Mined {
    if !load.quarantined.is_empty() {
        hamlet_obs::record_warning(format!(
            "discovery: table '{name}': quarantined {} of {} rows during the mining load",
            load.quarantined.len(),
            load.total_rows
        ));
    }
    Mined {
        file: file.to_string(),
        name,
        quarantined: load.quarantined.len(),
        total_rows: load.total_rows,
        table: load.table,
    }
}

/// Mines a directory of raw CSVs from the filesystem. Each file is
/// **streamed** through the chunked ingester (header sniffed from the
/// first line only, rows decoded incrementally under any
/// `HAMLET_MEM_BUDGET_MB` in force) — the corpus is never slurped into
/// memory as strings.
pub fn discover_dir(dir: &Path, cfg: &DiscoveryConfig) -> Result<Discovery, DiscoveryError> {
    let entries = std::fs::read_dir(dir).map_err(|e| DiscoveryError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| DiscoveryError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".csv") {
            names.push(name);
        }
    }
    names.sort();
    if names.is_empty() {
        return Err(DiscoveryError::EmptyCorpus {
            source: dir.display().to_string(),
        });
    }
    let mut tables: Vec<Mined> = Vec::new();
    for file in &names {
        let path = dir.join(file);
        let name = stem(file);
        let header = csv_header_path(&path, ',')?.ok_or_else(|| {
            DiscoveryError::Relational(hamlet_relational::RelationalError::EmptyTable {
                table: name.clone(),
            })
        })?;
        let specs = mining_specs(&header);
        let spec_refs: Vec<(&str, hamlet_relational::ColumnSpec)> =
            specs.iter().map(|(n, s)| (n.as_str(), s.clone())).collect();
        let load = read_csv_file_lenient(&name, &path, &spec_refs, ',', cfg.on_dirty)?;
        tables.push(mined_from_load(file, name, load));
    }
    discover_tables(tables, cfg)
}

/// Mines an in-memory corpus (file name -> CSV text). The entry point
/// for tests and the building block of [`discover_dir`].
pub fn discover_corpus(
    corpus: &BTreeMap<String, String>,
    cfg: &DiscoveryConfig,
) -> Result<Discovery, DiscoveryError> {
    if corpus.is_empty() {
        return Err(DiscoveryError::EmptyCorpus {
            source: "<in-memory corpus>".to_string(),
        });
    }

    // Stage 1: load every file as an all-nominal table. No roles are
    // assumed, so duplicate "keys" and stringly numerics survive as data
    // for the evidence passes below.
    let mut tables: Vec<Mined> = Vec::new();
    for (file, text) in corpus {
        let name = stem(file);
        let header = csv_header(text, ',').ok_or_else(|| {
            DiscoveryError::Relational(hamlet_relational::RelationalError::EmptyTable {
                table: name.clone(),
            })
        })?;
        let specs = mining_specs(&header);
        let spec_refs: Vec<(&str, hamlet_relational::ColumnSpec)> =
            specs.iter().map(|(n, s)| (n.as_str(), s.clone())).collect();
        let load = read_csv_lenient(&name, text, &spec_refs, ',', cfg.on_dirty)?;
        tables.push(mined_from_load(file, name, load));
    }
    discover_tables(tables, cfg)
}

/// Stages 2–5 over already-mined tables: sketches, edge proposals, FD
/// verification, and manifest synthesis. Shared by [`discover_dir`]
/// (streamed loads) and [`discover_corpus`] (in-memory loads), so both
/// entry points produce bit-identical output for identical logical data.
fn discover_tables(tables: Vec<Mined>, cfg: &DiscoveryConfig) -> Result<Discovery, DiscoveryError> {
    counter_add!("hamlet_discovery_tables_total", tables.len());

    // Stage 2: per-column fingerprint sketches, in parallel. The job is
    // a pure function of its index, so `run_indexed` keeps the output
    // deterministic at any thread count.
    let col_ix: Vec<(usize, usize)> = tables
        .iter()
        .enumerate()
        .flat_map(|(t, m)| (0..m.table.schema().len()).map(move |c| (t, c)))
        .collect();
    let sketches: Vec<ColumnSketch> = run_indexed(col_ix.len(), cfg.threads, &|i| {
        let (t, c) = col_ix[i];
        let m = &tables[t];
        ColumnSketch::of_column(
            &m.name,
            &m.table.schema().attributes()[c].name,
            m.table.column(c),
            cfg.sketch_size,
        )
    });
    let sketch_of = |t: usize, c: usize| -> &ColumnSketch {
        // col_ix is (t, c) in row-major order over the same schemas.
        let base: usize = tables[..t].iter().map(|m| m.table.schema().len()).sum();
        &sketches[base + c]
    };

    // Stage 3a: candidate keys — columns whose duplicate-row count fits
    // inside the violation tolerance.
    let mut keys: Vec<KeyCandidate> = Vec::new();
    for &(t, c) in &col_ix {
        let s = sketch_of(t, c);
        keys.push(KeyCandidate {
            table: s.table.clone(),
            column: s.column.clone(),
            rows: s.rows,
            distinct: s.distinct,
            duplicates: s.duplicate_rows(),
            accepted: s.rows > 0 && s.duplicate_rows() as u64 <= cfg.max_violations,
        });
    }

    if tables.len() == 1 {
        return single_table_discovery(&tables[0], cfg, keys);
    }

    // Stage 3b: FK edge proposals — every (column, accepted foreign key)
    // pair, containment evaluated in parallel over the sketches alone.
    let key_ix: Vec<usize> = keys
        .iter()
        .enumerate()
        .filter(|(_, k)| k.accepted)
        .map(|(i, _)| i)
        .collect();
    let pair_ix: Vec<(usize, usize)> = col_ix
        .iter()
        .enumerate()
        .flat_map(|(src, _)| key_ix.iter().map(move |&dst| (src, dst)))
        .filter(|&(src, dst)| col_ix[src].0 != col_ix[dst].0)
        .collect();
    let containments: Vec<(f64, bool)> = run_indexed(pair_ix.len(), cfg.threads, &|i| {
        let (src, dst) = pair_ix[i];
        let (st, sc) = col_ix[src];
        let (dt, dc) = col_ix[dst];
        let sub = sketch_of(st, sc);
        let sup = sketch_of(dt, dc);
        (sub.containment_in(sup), sub.exact() && sup.exact())
    });

    let mut fks: Vec<FkCandidate> = Vec::with_capacity(pair_ix.len());
    for (i, &(src, dst)) in pair_ix.iter().enumerate() {
        let (st, sc) = col_ix[src];
        let (dt, dc) = col_ix[dst];
        let sub = sketch_of(st, sc);
        let sup = sketch_of(dt, dc);
        let (containment, exact) = containments[i];
        fks.push(FkCandidate {
            fk_table: sub.table.clone(),
            fk_column: sub.column.clone(),
            key_table: sup.table.clone(),
            key_file: tables[dt].file.clone(),
            key_column: sup.column.clone(),
            containment,
            exact,
            fk_distinct: sub.distinct,
            key_distinct: sup.distinct,
            closed: containment >= 1.0,
            accepted: false,
            reason: format!(
                "containment {containment:.4} below threshold {:.2}",
                cfg.min_containment
            ),
        });
    }

    // Best above-threshold edge per source column: highest containment,
    // then the tightest key (fewest distinct values), then name order.
    // `fks` is index-parallel to `pair_ix`, so an edge index addresses
    // both its evidence record and its (source, key) column pair.
    let mut best_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, e) in fks.iter().enumerate() {
        if e.containment < cfg.min_containment {
            continue;
        }
        let key = col_ix[pair_ix[i].0];
        let better = match best_of.get(&key) {
            None => true,
            Some(&j) => {
                let b = &fks[j];
                (e.containment, b.key_distinct, &b.key_table, &b.key_column)
                    > (b.containment, e.key_distinct, &e.key_table, &e.key_column)
            }
        };
        if better {
            best_of.insert(key, i);
        }
    }
    for (i, e) in fks.iter_mut().enumerate() {
        if e.containment >= cfg.min_containment && best_of.get(&col_ix[pair_ix[i].0]) != Some(&i) {
            e.reason = "superseded by a tighter key for this column".to_string();
        }
    }

    // Star center: the table whose best edges cover the most other
    // tables; ties break on row count (entities are big), then name.
    let mut coverage: Vec<std::collections::BTreeSet<usize>> = tables
        .iter()
        .map(|_| std::collections::BTreeSet::new())
        .collect();
    for (&(src_t, _), &i) in &best_of {
        coverage[src_t].insert(col_ix[pair_ix[i].1].0);
    }
    let entity_t = (0..tables.len())
        .filter(|&t| !coverage[t].is_empty())
        .max_by(|&a, &b| {
            coverage[a]
                .len()
                .cmp(&coverage[b].len())
                .then(tables[a].table.n_rows().cmp(&tables[b].table.n_rows()))
                .then(tables[b].name.cmp(&tables[a].name)) // smaller name wins
        });
    let entity_t = match entity_t {
        Some(t) => t,
        None => {
            return Err(DiscoveryError::NoStar {
                reason: format!(
                    "no foreign-key edge met containment {:.2} across {} tables",
                    cfg.min_containment,
                    tables.len()
                ),
            })
        }
    };
    let entity = &tables[entity_t];
    let entity_reason = format!(
        "its accepted edges cover {} of {} other table(s); {} rows",
        coverage[entity_t].len(),
        tables.len() - 1,
        entity.table.n_rows()
    );

    // Resolve the entity's edges in header order; a second edge into the
    // same file must agree on the key column (a manifest section has one
    // key), and edges from non-center tables are journaled as rejected.
    let mut fk_of_col: BTreeMap<usize, usize> = BTreeMap::new(); // entity col -> fks index
    let mut key_of_file: BTreeMap<String, String> = BTreeMap::new(); // file -> key column
    for c in 0..entity.table.schema().len() {
        let Some(&i) = best_of.get(&(entity_t, c)) else {
            continue;
        };
        let (file, key_col) = (fks[i].key_file.clone(), fks[i].key_column.clone());
        match key_of_file.get(&file) {
            Some(k) if *k != key_col => {
                fks[i].reason = format!("table '{file}' is already keyed by '{k}'");
            }
            _ => {
                key_of_file.insert(file, key_col);
                fks[i].accepted = true;
                fks[i].reason = format!(
                    "containment {:.4} ({} of {} distinct values)",
                    fks[i].containment, fks[i].fk_distinct, fks[i].key_distinct
                );
                fk_of_col.insert(c, i);
            }
        }
    }
    for (&(src_t, _), &i) in &best_of {
        if src_t != entity_t {
            fks[i].reason = format!(
                "source table '{}' is not the star center",
                tables[src_t].name
            );
        }
    }
    if fk_of_col.is_empty() {
        return Err(DiscoveryError::NoStar {
            reason: format!(
                "star center '{}' kept no usable foreign-key edge",
                entity.name
            ),
        });
    }
    let accepted_edges = fks.iter().filter(|e| e.accepted).count();
    counter_add!("hamlet_discovery_fk_accepted_total", accepted_edges);
    counter_add!(
        "hamlet_discovery_fk_rejected_total",
        fks.len() - accepted_edges
    );

    // Tables neither center nor referenced stay out of the manifest.
    let placed: Vec<String> = fk_of_col
        .values()
        .map(|&i| fks[i].key_table.clone())
        .collect();
    let mut unplaced: Vec<UnplacedTable> = Vec::new();
    for (t, m) in tables.iter().enumerate() {
        if t != entity_t && !placed.contains(&m.name) {
            let reason = format!(
                "unreachable from star center '{}': no accepted foreign-key edge",
                entity.name
            );
            hamlet_obs::record_warning(format!(
                "discovery: table '{}' left out of the manifest ({reason})",
                m.name
            ));
            unplaced.push(UnplacedTable {
                table: m.name.clone(),
                reason,
            });
        }
    }

    // Target: declared, or the smallest-domain non-FK entity column.
    let fk_cols: Vec<String> = fk_of_col
        .keys()
        .map(|&c| entity.table.schema().attributes()[c].name.clone())
        .collect();
    let (target, target_reason) = choose_target(&entity.table, &fk_cols, cfg, |c| {
        sketch_of(entity_t, c).distinct
    })?;

    // Stage 4: factorized FD verification, in parallel. Attribute-table
    // FDs `key -> X_R` first (the paper's `FK -> X_R` through the join),
    // then entity-side `FK -> X_S` candidates for appendix C.
    struct FdJob {
        scope: FdScope,
        table_ix: usize,
        det: String,
        dep: String,
    }
    let mut jobs: Vec<FdJob> = Vec::new();
    let mut attr_seen: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for &i in fk_of_col.values() {
        let dst_t = col_ix[pair_ix[i].1].0;
        if !attr_seen.insert(dst_t) {
            continue; // two FKs into one table verify its FDs once
        }
        let key_col = fks[i].key_column.clone();
        for a in tables[dst_t].table.schema().attributes() {
            if a.name != key_col {
                jobs.push(FdJob {
                    scope: FdScope::AttributeTable,
                    table_ix: dst_t,
                    det: key_col.clone(),
                    dep: a.name.clone(),
                });
            }
        }
    }
    for &c in fk_of_col.keys() {
        let det = entity.table.schema().attributes()[c].name.clone();
        for (ci, a) in entity.table.schema().attributes().iter().enumerate() {
            if fk_of_col.contains_key(&ci) || a.name == target || a.name == det {
                continue;
            }
            jobs.push(FdJob {
                scope: FdScope::Entity,
                table_ix: entity_t,
                det: det.clone(),
                dep: a.name.clone(),
            });
        }
    }
    let checks = run_indexed(jobs.len(), cfg.threads, &|i| {
        let j = &jobs[i];
        check_fd(&tables[j.table_ix].table, &j.det, &j.dep)
    });
    let mut fds: Vec<FdEvidence> = Vec::with_capacity(jobs.len());
    for (j, c) in jobs.iter().zip(checks) {
        let c = c?;
        let accepted = c.holds_within(cfg.max_violations);
        if accepted && c.violations > 0 {
            hamlet_obs::record_warning(format!(
                "discovery: FD {}.{} -> {} accepted with {} violation(s) within tolerance {}",
                c.table, c.determinant, c.dependent, c.violations, cfg.max_violations
            ));
        }
        counter_add!(
            "hamlet_discovery_fd_violations_total",
            c.violations as usize
        );
        fds.push(FdEvidence {
            scope: j.scope,
            table: c.table,
            determinant: c.determinant,
            dependent: c.dependent,
            rows: c.rows,
            groups: c.groups,
            violations: c.violations,
            examples: c.examples,
            accepted,
        });
    }
    let accepted_fds = fds.iter().filter(|f| f.accepted).count();
    counter_add!("hamlet_discovery_fd_accepted_total", accepted_fds);
    counter_add!(
        "hamlet_discovery_fd_rejected_total",
        fds.len() - accepted_fds
    );

    // Appendix-C analysis over the accepted entity-side FDs: which
    // entity attributes are redundant, and does the compatible subset
    // actually decompose the mined entity?
    let entity_analysis = analyze_entity_fds(&entity.table, &fds);

    // Stage 5: synthesize the manifest. Directives follow the entity
    // header order so the loaded star is column-for-column identical to
    // one loaded from a hand-written manifest over the same files.
    let mut text = String::new();
    text.push_str("# synthesized by `hamlet discover`; evidence in the discovery report\n");
    text.push_str(&format!("entity {}\n", entity.file));
    text.push_str(&format!("target {target}\n"));
    let mut attr_files: Vec<(String, String)> = Vec::new(); // (file, key) in fk order
    for (c, a) in entity.table.schema().attributes().iter().enumerate() {
        if a.name == target {
            continue;
        }
        match fk_of_col.get(&c) {
            Some(&i) => {
                let e = &fks[i];
                text.push_str(&format!(
                    "fk {} {} {}\n",
                    e.fk_column,
                    e.key_file,
                    if e.closed { "closed" } else { "open" }
                ));
                if !attr_files.iter().any(|(f, _)| *f == e.key_file) {
                    attr_files.push((e.key_file.clone(), e.key_column.clone()));
                }
            }
            None => text.push_str(&format!("feature {}\n", a.name)),
        }
    }
    for (file, key) in &attr_files {
        text.push('\n');
        text.push_str(&format!("table {file}\n"));
        text.push_str(&format!("key {key}\n"));
        let Some(m) = tables.iter().find(|m| m.file == *file) else {
            continue;
        };
        for a in m.table.schema().attributes() {
            if a.name != *key {
                text.push_str(&format!("feature {}\n", a.name));
            }
        }
    }
    let manifest = Manifest::parse(&text)?;

    let report = DiscoveryReport {
        min_containment: cfg.min_containment,
        max_violations: cfg.max_violations,
        sketch_size: cfg.sketch_size,
        tables: tables
            .iter()
            .map(|m| TableSummary {
                file: m.file.clone(),
                table: m.name.clone(),
                rows: m.table.n_rows(),
                columns: m.table.schema().len(),
                quarantined: m.quarantined,
                total_rows: m.total_rows,
            })
            .collect(),
        entity: entity.name.clone(),
        entity_reason,
        target,
        target_reason,
        keys,
        fks,
        fds,
        entity_analysis,
        unplaced,
    };
    Ok(Discovery {
        manifest_text: text,
        manifest,
        report,
    })
}

/// Target selection: the declared column (validated), or the non-FK
/// column with the smallest distinct count ≥ 2 (ties break on header
/// order). Classification targets have small domains; keys and
/// high-cardinality features do not.
fn choose_target(
    entity: &Table,
    fk_cols: &[String],
    cfg: &DiscoveryConfig,
    distinct_of: impl Fn(usize) -> usize,
) -> Result<(String, String), DiscoveryError> {
    if let Some(t) = &cfg.target {
        if fk_cols.contains(t) {
            return Err(DiscoveryError::Target {
                reason: format!("declared target '{t}' is a foreign-key column"),
            });
        }
        if entity.schema().index_of(t).is_none() {
            return Err(DiscoveryError::Target {
                reason: format!(
                    "declared target '{t}' is not a column of entity '{}'",
                    entity.name()
                ),
            });
        }
        return Ok((t.clone(), "declared by the caller".to_string()));
    }
    let mut best: Option<(usize, usize)> = None; // (distinct, col)
    for (c, a) in entity.schema().attributes().iter().enumerate() {
        if fk_cols.contains(&a.name) {
            continue;
        }
        let d = distinct_of(c);
        if d < 2 {
            continue;
        }
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    match best {
        Some((d, c)) => {
            let name = entity.schema().attributes()[c].name.clone();
            Ok((
                name,
                format!("smallest-domain non-key column ({d} distinct values)"),
            ))
        }
        None => Err(DiscoveryError::Target {
            reason: format!(
                "entity '{}' has no non-key column with at least 2 distinct values",
                entity.name()
            ),
        }),
    }
}

/// Appendix-C analysis: accepted entity FDs -> redundant attributes, the
/// star-compatible subset, and a `decompose_star` attempt on the mined
/// entity instance.
fn analyze_entity_fds(entity: &Table, fds: &[FdEvidence]) -> EntityFdAnalysis {
    let mut by_det: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for fd in fds {
        if fd.accepted && fd.scope == FdScope::Entity {
            by_det
                .entry(fd.determinant.clone())
                .or_default()
                .push(fd.dependent.clone());
        }
    }
    let mut functional: Vec<FunctionalDependency> = Vec::new();
    for (det, mut deps) in by_det {
        deps.sort();
        deps.dedup();
        functional.push(FunctionalDependency {
            determinant: vec![det],
            dependents: deps,
        });
    }
    if functional.is_empty() {
        return EntityFdAnalysis {
            redundant_attributes: Vec::new(),
            compatible_fds: Vec::new(),
            decompose_outcome: "no entity-side FDs accepted".to_string(),
        };
    }
    let mut redundant = redundant_attributes(&functional);
    redundant.sort();
    let compatible = select_compatible_fds(&functional);
    let rendered: Vec<String> = compatible
        .iter()
        .map(|fd| {
            format!(
                "{} -> {}",
                fd.determinant.join(","),
                fd.dependents.join(",")
            )
        })
        .collect();
    let decompose_outcome = match decompose_star(entity, &compatible) {
        Ok(star) => format!(
            "entity decomposes further into {} attribute table(s)",
            star.k()
        ),
        Err(e) => format!("not decomposed: {e}"),
    };
    EntityFdAnalysis {
        redundant_attributes: redundant,
        compatible_fds: rendered,
        decompose_outcome,
    }
}

/// Single-file corpora skip FK mining entirely: the wide CSV is the
/// entity, and the inferred single-attribute FDs (canonically ordered by
/// `infer_single_fds`) drive the appendix-C analysis instead.
fn single_table_discovery(
    mined: &Mined,
    cfg: &DiscoveryConfig,
    keys: Vec<KeyCandidate>,
) -> Result<Discovery, DiscoveryError> {
    let (target, target_reason) = choose_target(&mined.table, &[], cfg, |c| {
        mined.table.column(c).distinct_count()
    })?;

    // Inferred FDs, with the target barred from both sides, verified
    // through the same count-table fold for uniform evidence.
    let inferred = hamlet_relational::infer_single_fds(&mined.table, 2);
    let mut fds: Vec<FdEvidence> = Vec::new();
    for fd in &inferred {
        let det = &fd.determinant[0];
        if *det == target {
            continue;
        }
        for dep in fd.dependents.iter().filter(|d| **d != target) {
            let c = check_fd(&mined.table, det, dep)?;
            let accepted = c.holds_within(cfg.max_violations);
            fds.push(FdEvidence {
                scope: FdScope::Entity,
                table: c.table,
                determinant: c.determinant,
                dependent: c.dependent,
                rows: c.rows,
                groups: c.groups,
                violations: c.violations,
                examples: c.examples,
                accepted,
            });
        }
    }
    let entity_analysis = analyze_entity_fds(&mined.table, &fds);
    counter_add!(
        "hamlet_discovery_fd_accepted_total",
        fds.iter().filter(|f| f.accepted).count()
    );

    let mut text = String::new();
    text.push_str("# synthesized by `hamlet discover`; evidence in the discovery report\n");
    text.push_str(&format!("entity {}\n", mined.file));
    text.push_str(&format!("target {target}\n"));
    for a in mined.table.schema().attributes() {
        if a.name != target {
            text.push_str(&format!("feature {}\n", a.name));
        }
    }
    let manifest = Manifest::parse(&text)?;
    let report = DiscoveryReport {
        min_containment: cfg.min_containment,
        max_violations: cfg.max_violations,
        sketch_size: cfg.sketch_size,
        tables: vec![TableSummary {
            file: mined.file.clone(),
            table: mined.name.clone(),
            rows: mined.table.n_rows(),
            columns: mined.table.schema().len(),
            quarantined: mined.quarantined,
            total_rows: mined.total_rows,
        }],
        entity: mined.name.clone(),
        entity_reason: "single-table corpus".to_string(),
        target,
        target_reason,
        keys,
        fks: Vec::new(),
        fds,
        entity_analysis,
        unplaced: Vec::new(),
    };
    Ok(Discovery {
        manifest_text: text,
        manifest,
        report,
    })
}
