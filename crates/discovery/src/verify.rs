//! Factorized FD verification: a count-table fold over one table.
//!
//! The paper's multi-table FD `FK -> X_R` never needs the join to be
//! checked: after the KFK join every entity row carries exactly the
//! attribute row its FK points at, so the FD holds in the join iff
//! `RID -> X_R` holds in the attribute table (and `FK -> X_S` candidates
//! can be checked directly on the entity). This module verifies such a
//! single-table FD with the same sufficient-statistics discipline the
//! factorized learners use: partition rows by determinant code (the
//! per-table hash partition), count dependent codes per partition, and
//! read the violation count off the counts — `Σ_group (rows_in_group −
//! majority_count)`. Memory is bounded by the number of *distinct*
//! (determinant, dependent) pairs, never the joined width.
//!
//! Dirty data is first-class: a dup-keyed or miskeyed row shows up as a
//! violation, and the caller decides (via `HAMLET_FD_MAX_VIOLATIONS`)
//! whether the FD still qualifies, with each counted exception
//! journaled through the examples below.

use std::collections::HashMap;

use hamlet_relational::{RelationalError, Table};

/// Violation examples retained per FD check (evidence, not a full dump).
pub const MAX_VIOLATION_EXAMPLES: usize = 3;

/// One row that disagrees with its determinant group's majority value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdViolation {
    /// 0-based data row in the checked table.
    pub row: usize,
    /// The determinant label of the offending row.
    pub determinant_label: String,
    /// The group's majority dependent label (what the FD predicts).
    pub expected_label: String,
    /// The dependent label actually found on this row.
    pub found_label: String,
}

/// Result of one factorized FD check `determinant -> dependent`.
#[derive(Debug, Clone, PartialEq)]
pub struct FdCheck {
    /// Table the FD was checked in.
    pub table: String,
    /// Determinant attribute.
    pub determinant: String,
    /// Dependent attribute.
    pub dependent: String,
    /// Rows scanned.
    pub rows: usize,
    /// Distinct determinant values (count-table partitions).
    pub groups: usize,
    /// Rows disagreeing with their group's majority dependent value
    /// (zero iff the FD holds exactly).
    pub violations: u64,
    /// Up to [`MAX_VIOLATION_EXAMPLES`] violating rows, in row order.
    pub examples: Vec<FdViolation>,
}

impl FdCheck {
    /// Whether the FD qualifies under a violation tolerance.
    pub fn holds_within(&self, max_violations: u64) -> bool {
        self.violations <= max_violations
    }
}

/// Checks `det -> dep` in `table` with a count-table fold.
///
/// Ties inside a group (two dependent values with equal counts) resolve
/// to the smaller code so the violation count and examples are
/// deterministic regardless of row or hash order.
pub fn check_fd(table: &Table, det: &str, dep: &str) -> Result<FdCheck, RelationalError> {
    let det_col = table.column_by_name(det)?;
    let dep_col = table.column_by_name(dep)?;

    // Fold rows into per-partition dependent counts.
    let mut counts: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
    for row in 0..table.n_rows() {
        *counts
            .entry(det_col.get(row))
            .or_default()
            .entry(dep_col.get(row))
            .or_insert(0) += 1;
    }

    // Majority dependent per partition; violations fall out of the counts.
    let mut majority: HashMap<u32, u32> = HashMap::with_capacity(counts.len());
    let mut violations = 0u64;
    for (&det_code, deps) in &counts {
        let mut best_code = u32::MAX;
        let mut best_n = 0u64;
        let mut total = 0u64;
        for (&code, &n) in deps {
            total += n;
            if n > best_n || (n == best_n && code < best_code) {
                best_code = code;
                best_n = n;
            }
        }
        violations += total - best_n;
        majority.insert(det_code, best_code);
    }

    // Evidence pass: the first few violating rows, in row order.
    let mut examples = Vec::new();
    if violations > 0 {
        for row in 0..table.n_rows() {
            if examples.len() >= MAX_VIOLATION_EXAMPLES {
                break;
            }
            let d = det_col.get(row);
            let found = dep_col.get(row);
            let expected = majority.get(&d).copied().unwrap_or(found);
            if found != expected {
                examples.push(FdViolation {
                    row,
                    determinant_label: det_col.domain().label(d).into_owned(),
                    expected_label: dep_col.domain().label(expected).into_owned(),
                    found_label: dep_col.domain().label(found).into_owned(),
                });
            }
        }
    }

    Ok(FdCheck {
        table: table.name().to_string(),
        determinant: det.to_string(),
        dependent: dep.to_string(),
        rows: table.n_rows(),
        groups: counts.len(),
        violations,
        examples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relational::{Domain, TableBuilder};

    fn table(det: Vec<u32>, dep: Vec<u32>) -> Table {
        TableBuilder::new("T")
            .feature("det", Domain::indexed("det", 8).shared(), det)
            .feature("dep", Domain::indexed("dep", 8).shared(), dep)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_fd_has_zero_violations() {
        let t = table(vec![0, 1, 2, 0, 1], vec![3, 4, 5, 3, 4]);
        let c = check_fd(&t, "det", "dep").unwrap();
        assert_eq!(c.violations, 0);
        assert_eq!(c.groups, 3);
        assert!(c.examples.is_empty());
        assert!(c.holds_within(0));
    }

    #[test]
    fn violations_counted_per_group_minority() {
        // Group 0 maps to {3:2, 4:1} -> one violation; group 1 is clean.
        let t = table(vec![0, 0, 0, 1], vec![3, 3, 4, 5]);
        let c = check_fd(&t, "det", "dep").unwrap();
        assert_eq!(c.violations, 1);
        assert!(!c.holds_within(0));
        assert!(c.holds_within(1));
        assert_eq!(c.examples.len(), 1);
        assert_eq!(c.examples[0].row, 2);
        assert_eq!(c.examples[0].expected_label, "dep#3");
        assert_eq!(c.examples[0].found_label, "dep#4");
    }

    #[test]
    fn ties_break_to_smaller_code() {
        // Group 0: {2:1, 5:1} — the majority is code 2, so row 1 violates.
        let t = table(vec![0, 0], vec![2, 5]);
        let c = check_fd(&t, "det", "dep").unwrap();
        assert_eq!(c.violations, 1);
        assert_eq!(c.examples[0].row, 1);
        assert_eq!(c.examples[0].expected_label, "dep#2");
    }

    #[test]
    fn example_cap_holds() {
        let t = table(vec![0; 10], vec![7, 1, 1, 1, 1, 7, 7, 7, 1, 7]);
        let c = check_fd(&t, "det", "dep").unwrap();
        assert_eq!(c.violations, 5);
        assert_eq!(c.examples.len(), MAX_VIOLATION_EXAMPLES);
    }

    #[test]
    fn unknown_column_is_typed_error() {
        let t = table(vec![0], vec![0]);
        assert!(matches!(
            check_fd(&t, "det", "ghost"),
            Err(RelationalError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn row_order_invariant() {
        let a = check_fd(&table(vec![0, 0, 1, 1], vec![2, 3, 4, 4]), "det", "dep").unwrap();
        let b = check_fd(&table(vec![1, 0, 1, 0], vec![4, 3, 4, 2]), "det", "dep").unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.groups, b.groups);
    }
}
