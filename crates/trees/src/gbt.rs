//! Gradient-boosted regression trees on ordinal class codes.
//!
//! The paper's multi-class targets are ordinal (star ratings, sales
//! levels) and its multi-class metric is RMSE on the codes, so boosting
//! is done in the natural space: least-squares regression trees on the
//! residual `y - F(x)`, with the fitted score mapped back to the
//! nearest class at prediction time (ties to the lower class — the
//! same lowest-index-wins rule every argmax in this workspace uses).
//!
//! Determinism discipline: unlike CART's integer count tables, the
//! split aggregates here are **float residual sums**, so summation
//! order matters. Every aggregate is accumulated by scanning the node's
//! rows in ascending entity-row order, generic over [`CodeSource`] —
//! the factorized path reads codes through FK indirection instead of a
//! wide table, executing the *same* float additions in the *same*
//! order. Materialized and factorized GBT models are therefore bitwise
//! identical, and split scoring parallelism (chunked over candidate
//! features, reduced in feature order) cannot perturb them.

use hamlet_ml::classifier::{Classifier, Model};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::CodeSource;
use hamlet_obs::parallel::run_indexed;

use crate::cart::{check_arena, majority, TreeError, GAIN_TOL};

/// Default boosting rounds when `HAMLET_GBT_ROUNDS` is unset.
pub const DEFAULT_GBT_ROUNDS: usize = 20;

/// Gradient-boosted trees learner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gbt {
    /// Boosting rounds (trees). See [`Gbt::from_env`] for the
    /// `HAMLET_GBT_ROUNDS` override.
    pub rounds: usize,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Nodes with fewer training rows become leaves.
    pub min_samples_split: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Worker count for split scoring; `None` resolves `HAMLET_THREADS`
    /// once per process. Bitwise-identical models at any value.
    pub threads: Option<usize>,
}

impl Default for Gbt {
    fn default() -> Self {
        Self {
            rounds: DEFAULT_GBT_ROUNDS,
            max_depth: 3,
            min_samples_split: 8,
            learning_rate: 0.3,
            threads: None,
        }
    }
}

impl Gbt {
    /// The default configuration with `rounds` taken from
    /// `HAMLET_GBT_ROUNDS` when set to a positive integer; an invalid
    /// value is journaled as a warning and the default is kept (the
    /// same non-strict policy as `HAMLET_THREADS`).
    pub fn from_env() -> Self {
        let rounds =
            hamlet_obs::env::var_where("HAMLET_GBT_ROUNDS", "a positive integer", |&r: &usize| {
                r > 0
            })
            .unwrap_or_else(|e| {
                hamlet_obs::journal::record_warning(format!("{e}; using default"));
                None
            })
            .unwrap_or(DEFAULT_GBT_ROUNDS);
        Self {
            rounds,
            ..Self::default()
        }
    }
}

/// One arena node of a regression tree; same children-before-parent
/// invariant as [`crate::cart::CartNode`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegNode {
    /// Mean residual of the node's training rows.
    Leaf { value: f64 },
    /// Route left when `code(feature) == value`, right otherwise.
    Split {
        feature: usize,
        value: u32,
        left: u32,
        right: u32,
    },
}

/// One fitted regression tree of the ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct RegTree {
    pub(crate) nodes: Vec<RegNode>,
    pub(crate) root: u32,
}

impl RegTree {
    /// The arena, children-before-parents.
    pub fn nodes(&self) -> &[RegNode] {
        &self.nodes
    }

    /// Index of the root node.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Evaluates the tree on one row.
    fn eval<S: CodeSource>(&self, data: &S, row: usize) -> f64 {
        let mut at = self.root as usize;
        for _ in 0..=self.nodes.len() {
            match self.nodes.get(at) {
                Some(RegNode::Leaf { value }) => return *value,
                Some(RegNode::Split {
                    feature,
                    value,
                    left,
                    right,
                }) => {
                    at = if data.code(*feature, row) == *value {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
                None => return 0.0,
            }
        }
        0.0
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GbtModel {
    feats: Vec<usize>,
    n_classes: usize,
    base: f64,
    learning_rate: f64,
    trees: Vec<RegTree>,
}

impl GbtModel {
    /// Rebuilds a model from serialized parts, validating every tree's
    /// arena invariants plus finiteness of base, shrinkage, and leaf
    /// values.
    pub fn from_parts(
        feats: Vec<usize>,
        n_classes: usize,
        n_features: usize,
        base: f64,
        learning_rate: f64,
        trees: Vec<(Vec<RegNode>, u32)>,
    ) -> Result<Self, TreeError> {
        if !base.is_finite() || !learning_rate.is_finite() {
            return Err(TreeError::NonFiniteLeaf { node: 0 });
        }
        let mut built = Vec::with_capacity(trees.len());
        for (nodes, root) in trees {
            check_arena(
                nodes.iter().enumerate().filter_map(|(i, n)| match n {
                    RegNode::Leaf { .. } => None,
                    RegNode::Split {
                        feature,
                        left,
                        right,
                        ..
                    } => Some((i, *feature, *left, *right)),
                }),
                nodes.len(),
                root,
                n_features,
            )?;
            if let Some((node, _)) = nodes
                .iter()
                .enumerate()
                .find(|(_, n)| matches!(n, RegNode::Leaf { value } if !value.is_finite()))
            {
                return Err(TreeError::NonFiniteLeaf { node });
            }
            built.push(RegTree { nodes, root });
        }
        Ok(Self {
            feats,
            n_classes,
            base,
            learning_rate,
            trees: built,
        })
    }

    /// The fitted ensemble.
    pub fn trees(&self) -> &[RegTree] {
        &self.trees
    }

    /// The constant initial score (training-mean label).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// The shrinkage the model was fitted with.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The raw boosted score `F(x)` before snapping to a class.
    pub fn raw_score<S: CodeSource>(&self, data: &S, row: usize) -> f64 {
        let mut f_val = self.base;
        for t in &self.trees {
            f_val += self.learning_rate * t.eval(data, row);
        }
        f_val
    }
}

impl Model for GbtModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        let f_val = self.raw_score(data, row);
        // Nearest class under squared distance, lowest class on ties —
        // the rule the serving scorer reproduces from per-class scores.
        let mut best = 0u32;
        let mut best_score = f64::NEG_INFINITY;
        for y in 0..self.n_classes.max(1) {
            let d = f_val - y as f64;
            let score = -(d * d);
            if score > best_score {
                best_score = score;
                best = y as u32;
            }
        }
        best
    }

    fn features(&self) -> &[usize] {
        &self.feats
    }
}

/// Best one-vs-rest split of one feature for least squares: maximizes
/// `sum_l²/n_l + sum_r²/n_r` (variance reduction up to node constants).
/// Aggregates come in per-value; both paths filled them in identical
/// row order, so everything here is a pure function of identical
/// floats.
fn best_reg_split(
    cnt: &[u64],
    sum: &[f64],
    n: u64,
    total: f64,
    parent_score: f64,
) -> Option<(u32, f64)> {
    let mut best: Option<(u32, f64)> = None;
    for v in 0..cnt.len() {
        let n_left = cnt[v];
        if n_left == 0 || n_left == n {
            continue;
        }
        let n_right = n - n_left;
        let sum_l = sum[v];
        let sum_r = total - sum_l;
        let score = sum_l * sum_l / n_left as f64 + sum_r * sum_r / n_right as f64;
        let gain = score - parent_score;
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((v as u32, gain));
        }
    }
    best
}

/// Grows one regression subtree over `rows`, updating `scores` for every
/// row that lands in a created leaf (leaves are created in deterministic
/// order, and each row belongs to exactly one).
#[allow(clippy::too_many_arguments)]
fn grow_reg<S: CodeSource + Sync>(
    cfg: &Gbt,
    src: &S,
    residual: &[f64],
    rows: &[usize],
    feats: &[usize],
    depth: usize,
    threads: usize,
    nodes: &mut Vec<RegNode>,
    scores: &mut [f64],
) -> u32 {
    let n = rows.len() as u64;
    let mut total = 0.0;
    for &r in rows {
        total += residual[r];
    }
    let mean = if rows.is_empty() {
        0.0
    } else {
        total / rows.len() as f64
    };
    let leaf = |nodes: &mut Vec<RegNode>, scores: &mut [f64]| {
        nodes.push(RegNode::Leaf { value: mean });
        for &r in rows {
            scores[r] += cfg.learning_rate * mean;
        }
        (nodes.len() - 1) as u32
    };
    if depth >= cfg.max_depth || rows.len() < cfg.min_samples_split || feats.is_empty() {
        return leaf(nodes, scores);
    }

    let parent_score = if n == 0 {
        0.0
    } else {
        total * total / n as f64
    };
    let chunk = feats.len().div_ceil(threads.max(1)).max(1);
    let n_chunks = feats.len().div_ceil(chunk);
    let per_chunk = run_indexed(n_chunks, threads, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(feats.len());
        feats[lo..hi]
            .iter()
            .map(|&f| {
                let d = src.feature_domain_size(f).max(1);
                let mut cnt = vec![0u64; d];
                let mut sum = vec![0.0f64; d];
                // Rows are scanned in node order — the same order on the
                // materialized and factorized paths, so the per-bucket
                // float sums are bitwise identical.
                for &r in rows {
                    let v = src.code(f, r) as usize;
                    if v < d {
                        cnt[v] += 1;
                        sum[v] += residual[r];
                    }
                }
                best_reg_split(&cnt, &sum, n, total, parent_score).map(|(v, g)| (f, v, g))
            })
            .collect::<Vec<_>>()
    });
    let mut best: Option<(usize, u32, f64)> = None;
    for cand in per_chunk.into_iter().flatten().flatten() {
        if best.is_none_or(|(_, _, g)| cand.2 > g) {
            best = Some(cand);
        }
    }
    let Some((feature, value, gain)) = best else {
        return leaf(nodes, scores);
    };
    if gain <= GAIN_TOL {
        return leaf(nodes, scores);
    }

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for &r in rows {
        if src.code(feature, r) == value {
            left_rows.push(r);
        } else {
            right_rows.push(r);
        }
    }
    if left_rows.is_empty() || right_rows.is_empty() {
        return leaf(nodes, scores);
    }
    let left = grow_reg(
        cfg,
        src,
        residual,
        &left_rows,
        feats,
        depth + 1,
        threads,
        nodes,
        scores,
    );
    let right = grow_reg(
        cfg,
        src,
        residual,
        &right_rows,
        feats,
        depth + 1,
        threads,
        nodes,
        scores,
    );
    nodes.push(RegNode::Split {
        feature,
        value,
        left,
        right,
    });
    (nodes.len() - 1) as u32
}

impl Gbt {
    /// Fits over any [`CodeSource`]: hand it a `Dataset` for the
    /// materialized path or a `FactorizedView` for the
    /// zero-materialization path — both run the identical float
    /// program.
    pub fn fit_source<S: CodeSource + Sync>(
        &self,
        src: &S,
        rows: &[usize],
        feats: &[usize],
    ) -> GbtModel {
        let threads = self
            .threads
            .unwrap_or_else(hamlet_obs::env::resolved_threads);
        let n_classes = src.n_classes();
        let n_total = src.n_examples();

        if feats.is_empty() || rows.is_empty() {
            // Majority-class predictor, per the Classifier contract: a
            // constant base score equal to the majority class snaps to
            // exactly that class.
            let mut class_counts = vec![0u64; n_classes.max(1)];
            for &r in rows {
                let y = src.label(r) as usize;
                if y < class_counts.len() {
                    class_counts[y] += 1;
                }
            }
            return GbtModel {
                feats: feats.to_vec(),
                n_classes,
                base: majority(&class_counts) as f64,
                learning_rate: self.learning_rate,
                trees: Vec::new(),
            };
        }

        let mut total = 0.0;
        for &r in rows {
            total += src.label(r) as f64;
        }
        let base = total / rows.len() as f64;
        let mut scores = vec![0.0f64; n_total];
        for &r in rows {
            scores[r] = base;
        }
        let mut residual = vec![0.0f64; n_total];
        let mut trees = Vec::with_capacity(self.rounds);
        for _ in 0..self.rounds {
            for &r in rows {
                residual[r] = src.label(r) as f64 - scores[r];
            }
            let mut nodes = Vec::new();
            let root = grow_reg(
                self,
                src,
                &residual,
                rows,
                feats,
                0,
                threads,
                &mut nodes,
                &mut scores,
            );
            trees.push(RegTree { nodes, root });
        }
        GbtModel {
            feats: feats.to_vec(),
            n_classes,
            base,
            learning_rate: self.learning_rate,
            trees,
        }
    }
}

impl Classifier for Gbt {
    type Fitted = GbtModel;

    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> GbtModel {
        self.fit_source(data, rows, feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_ml::dataset::Feature;

    fn ordinal_data() -> Dataset {
        // y tracks x0 with a deterministic wobble from x1.
        let x0: Vec<u32> = (0..90).map(|i| i % 3).collect();
        let x1: Vec<u32> = (0..90).map(|i| (i * 7) % 4).collect();
        let y: Vec<u32> = x0
            .iter()
            .zip(&x1)
            .map(|(&a, &b)| (a + u32::from(b == 0)).min(3))
            .collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 3,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 4,
                    codes: x1,
                },
            ],
            y,
            4,
        )
    }

    #[test]
    fn fits_the_ordinal_signal() {
        let data = ordinal_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let model = Gbt::default().fit(&data, &rows, &[0, 1]);
        let wrong = rows
            .iter()
            .filter(|&&r| model.predict_row(&data, r) != data.labels()[r])
            .count();
        assert!(
            wrong * 10 < rows.len(),
            "GBT should fit a deterministic ordinal signal, {wrong}/{} wrong",
            rows.len()
        );
    }

    #[test]
    fn empty_feats_is_majority_predictor() {
        let data = ordinal_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let model = Gbt::default().fit(&data, &rows, &[]);
        assert!(model.trees().is_empty());
        let mut counts = vec![0u64; data.n_classes()];
        for &r in &rows {
            counts[data.labels()[r] as usize] += 1;
        }
        let maj = majority(&counts);
        for &r in &rows {
            assert_eq!(model.predict_row(&data, r), maj);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_model() {
        let data = ordinal_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let base = Gbt {
            threads: Some(1),
            ..Gbt::default()
        }
        .fit(&data, &rows, &[0, 1]);
        for t in [2, 8] {
            let m = Gbt {
                threads: Some(t),
                ..Gbt::default()
            }
            .fit(&data, &rows, &[0, 1]);
            assert_eq!(base, m, "model changed at {t} threads");
        }
    }

    #[test]
    fn prediction_snaps_to_nearest_class_ties_low() {
        let model = GbtModel {
            feats: vec![],
            n_classes: 3,
            base: 0.5, // exactly between classes 0 and 1
            learning_rate: 0.1,
            trees: vec![],
        };
        let data = ordinal_data();
        assert_eq!(model.predict_row(&data, 0), 0);
        let model_hi = GbtModel { base: 1.6, ..model };
        assert_eq!(model_hi.predict_row(&data, 0), 2);
    }

    #[test]
    fn from_parts_rejects_non_finite_leaves() {
        let trees = vec![(vec![RegNode::Leaf { value: f64::NAN }], 0u32)];
        assert!(matches!(
            GbtModel::from_parts(vec![0], 2, 1, 0.0, 0.1, trees),
            Err(TreeError::NonFiniteLeaf { .. })
        ));
        assert!(GbtModel::from_parts(
            vec![0],
            2,
            1,
            0.0,
            0.1,
            vec![(vec![RegNode::Leaf { value: 0.25 }], 0)]
        )
        .is_ok());
    }

    #[test]
    fn rounds_env_override_applies() {
        std::env::set_var("HAMLET_GBT_ROUNDS", "7");
        assert_eq!(Gbt::from_env().rounds, 7);
        std::env::remove_var("HAMLET_GBT_ROUNDS");
        assert_eq!(Gbt::from_env().rounds, DEFAULT_GBT_ROUNDS);
    }
}
