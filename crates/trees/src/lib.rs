//! Tree learning over the star schema: CART decision trees and
//! gradient-boosted trees, trained two bit-for-bit identical ways.
//!
//! * **Materialized** — from `Dataset` rows of the join output, like
//!   every other classifier in `hamlet_ml`.
//! * **Factorized** — over a `FactorizedView`, with CART split
//!   statistics assembled from pushed-down per-table class-conditional
//!   count aggregates (the JoinBoost recipe) and GBT residual sums
//!   streamed through FK indirection, so **no join is ever
//!   materialized** and peak allocation does not scale with fanout.
//!
//! Both learners implement `Classifier` and `SweepFit`, so
//! forward/backward/filter selection sweeps run on trees through the
//! `hamlet_fs` engine unchanged, with thread-count-invariant parallel
//! split scoring (chunked over candidate features, reduced in feature
//! order).
//!
//! This family is why per-family join-avoidance thresholds exist: trees
//! are high-capacity learners, and "Are KFK Joins Safe to Avoid when
//! Learning High-Capacity Classifiers?" (arXiv 1704.00485) shows the
//! paper's linear-model TR/ROR thresholds are too permissive for them.
//! The Monte-Carlo revalidation in `hamlet_experiments::family` fits
//! the tree-specific `(rho, tau)` the advisor quotes.

pub mod cart;
pub mod factorized;
pub mod gbt;
pub mod sweep;

pub use cart::{CartModel, CartNode, CartTree, TreeError};
pub use factorized::{fit_factorized_gbt, fit_factorized_tree};
pub use gbt::{Gbt, GbtModel, RegNode, RegTree, DEFAULT_GBT_ROUNDS};
