//! [`SweepFit`] integration: trees as first-class citizens of the
//! selection engine.
//!
//! The engine's per-candidate fallback already parallelizes across
//! candidates and reduces in index order, so these impls do not replace
//! the sweep loop; what they add is the `SuffStats` hook. Every greedy
//! trial re-grows a tree from the root, and the root's count tables are
//! exactly the cached `SuffStats` tables — so the private `StatsCounts`
//! adapter serves the root split of every candidate trial from the
//! shared cache with zero row scans, while deeper nodes scan only their
//! own row subsets. The result is bitwise equal to a plain `fit`: the
//! cached tables hold the same integers a fresh scan would produce.

use std::borrow::Cow;

use hamlet_ml::suffstats::{SuffStats, SweepFit};

use crate::cart::{CartModel, CartTree, ScanCounts, SplitCounts};
use crate::gbt::Gbt;

/// [`SplitCounts`] over a [`SuffStats`] cache: root tables from the
/// cache, deeper nodes by scanning the underlying dataset. Only valid
/// when the tree is grown over exactly the cache's training rows —
/// which is what [`SweepFit::fit_swept`] guarantees.
struct StatsCounts<'a, 'b> {
    stats: &'a SuffStats<'b>,
}

impl SplitCounts for StatsCounts<'_, '_> {
    fn n_classes(&self) -> usize {
        hamlet_ml::CodeSource::n_classes(self.stats.data())
    }

    fn domain_size(&self, f: usize) -> usize {
        self.stats.data().feature(f).domain_size
    }

    fn label(&self, row: usize) -> u32 {
        self.stats.data().labels()[row]
    }

    fn code(&self, f: usize, row: usize) -> u32 {
        self.stats.data().feature(f).codes[row]
    }

    fn count_table(&self, f: usize, rows: &[usize]) -> Vec<u64> {
        ScanCounts {
            src: self.stats.data(),
        }
        .count_table(f, rows)
    }

    fn root_table(&self, f: usize, _rows: &[usize]) -> Cow<'_, [u64]> {
        // The cache was built over (data, train) and fit_swept grows
        // over exactly those training rows, so the cached table *is*
        // the root table.
        Cow::Borrowed(self.stats.table(f))
    }
}

impl SweepFit for CartTree {
    fn fit_swept(
        &self,
        stats: &SuffStats<'_>,
        feats: &[usize],
        _warm: Option<&CartModel>,
    ) -> CartModel {
        self.fit_with(&StatsCounts { stats }, stats.train(), feats)
    }
}

// GBT gains nothing from cached count tables (its aggregates are float
// residual sums that change every round), so it keeps the default
// fit-through delegation — correct, just uncached.
impl SweepFit for Gbt {}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_ml::classifier::Classifier;
    use hamlet_ml::dataset::{Dataset, Feature};

    fn data() -> Dataset {
        let x0: Vec<u32> = (0..60).map(|i| i % 4).collect();
        let x1: Vec<u32> = (0..60).map(|i| (i * 11 + 2) % 5).collect();
        let y: Vec<u32> = x0.iter().map(|&v| u32::from(v < 2)).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 4,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 5,
                    codes: x1,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn fit_swept_equals_fit_bit_for_bit() {
        let data = data();
        let train: Vec<usize> = (0..data.n_examples()).step_by(2).collect();
        let stats = SuffStats::new(&data, &train);
        let tree = CartTree::default();
        for feats in [vec![0usize], vec![1], vec![0, 1], vec![]] {
            let swept = tree.fit_swept(&stats, &feats, None);
            let direct = tree.fit(&data, &train, &feats);
            assert_eq!(swept, direct, "feats {feats:?}");
        }
        let gbt = Gbt::default();
        let swept = gbt.fit_swept(&stats, &[0, 1], None);
        let direct = gbt.fit(&data, &train, &[0, 1]);
        assert_eq!(swept, direct);
    }
}
