//! Factorized tree training over a star schema — no join, same bits.
//!
//! CART split scoring needs one class-conditional count table per
//! (node, candidate feature). For foreign features the table is
//! assembled by the JoinBoost fold
//! (`hamlet_factorized::counts::class_conditional_counts`): a dense
//! `count(FK, Y | node rows)` group-by pushed down to the entity table,
//! mapped through the attribute column in `O(n_R)`. The integers are
//! exactly those a scan of the materialized join would produce, so the
//! shared growth code emits the identical tree. Peak extra allocation
//! is the `n_R × |D_Y|` FK histogram — independent of join fanout.
//!
//! GBT aggregates are float residual sums, where order matters; there
//! the factorized path runs the same generic row-order scan as the
//! materialized one, reading codes through FK indirection
//! ([`hamlet_factorized::FactorizedView`]'s [`CodeSource`] impl) with
//! zero wide-table allocation.

use hamlet_factorized::{class_conditional_counts, FactorizedView};
use hamlet_ml::CodeSource;

use crate::cart::{CartModel, CartTree, SplitCounts};
use crate::gbt::{Gbt, GbtModel};

/// [`SplitCounts`] over a [`FactorizedView`]: base features by entity
/// scan, foreign features by pushed-down count aggregates.
pub(crate) struct PushdownCounts<'a, 'b> {
    pub view: &'a FactorizedView<'b>,
}

impl SplitCounts for PushdownCounts<'_, '_> {
    fn n_classes(&self) -> usize {
        self.view.n_classes()
    }

    fn domain_size(&self, f: usize) -> usize {
        self.view.feature_domain_size(f)
    }

    fn label(&self, row: usize) -> u32 {
        self.view.label(row)
    }

    fn code(&self, f: usize, row: usize) -> u32 {
        self.view.code(f, row)
    }

    fn count_table(&self, f: usize, rows: &[usize]) -> Vec<u64> {
        // Morsel-parallel on large nodes, sequential inside sweep
        // workers — either way the counts are integers, so split
        // scores stay bit-identical at any HAMLET_THREADS.
        class_conditional_counts(self.view, f, rows)
    }
}

/// Trains a CART tree over the star schema without materializing any
/// join. Bit-for-bit identical to
/// `tree.fit(&materialized_dataset, rows, feats)` on the same logical
/// data.
pub fn fit_factorized_tree(
    view: &FactorizedView<'_>,
    tree: &CartTree,
    rows: &[usize],
    feats: &[usize],
) -> CartModel {
    tree.fit_with(&PushdownCounts { view }, rows, feats)
}

/// Trains a gradient-boosted ensemble over the star schema without
/// materializing any join. Bit-for-bit identical to
/// `gbt.fit(&materialized_dataset, rows, feats)` on the same logical
/// data.
pub fn fit_factorized_gbt(
    view: &FactorizedView<'_>,
    gbt: &Gbt,
    rows: &[usize],
    feats: &[usize],
) -> GbtModel {
    gbt.fit_source(view, rows, feats)
}
