//! CART-style decision trees over categorical codes.
//!
//! Unlike the ID3 baseline in `hamlet_ml::tree` (multiway splits, one
//! child per category), these trees use **binary one-vs-rest splits**:
//! a node tests `code(feature) == value` and routes left on equality.
//! That choice is what makes factorized training natural — the entire
//! split-scoring decision at a node is a pure function of the
//! class-conditional count table `count(X = v, Y = y | node rows)`,
//! and those integer tables can be assembled either by scanning the
//! materialized join output or by folding pushed-down per-table counts
//! through the FK (the JoinBoost recipe, see `crate::factorized`).
//! Identical integer tables ⇒ identical float gains ⇒ identical splits
//! ⇒ **bit-for-bit identical trees** on both paths.
//!
//! Split scoring at each node fans out over candidate features with
//! `hamlet_obs::parallel::run_indexed` and reduces in feature order, so
//! the fitted tree is invariant to the worker count.

use std::borrow::Cow;

use hamlet_ml::classifier::{Classifier, Model};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::CodeSource;
use hamlet_obs::parallel::run_indexed;

/// Gains at or below this are noise, not structure — the same cutoff the
/// ID3 baseline uses.
pub(crate) const GAIN_TOL: f64 = 1e-12;

/// Node-statistics provider for tree growth: everything `grow_cart`
/// needs, abstracted so the materialized scan, the `SuffStats`-backed
/// sweep path, and the factorized pushdown produce trees through the
/// *same* code. Implementations must return identical integer tables
/// for identical logical data; everything downstream is then bitwise
/// equal by construction.
pub(crate) trait SplitCounts {
    fn n_classes(&self) -> usize;
    fn domain_size(&self, f: usize) -> usize;
    fn label(&self, row: usize) -> u32;
    fn code(&self, f: usize, row: usize) -> u32;

    /// Class-conditional counts of feature `f` over `rows`, flattened
    /// `[y * d + v]` (the `SuffStats::table` layout).
    fn count_table(&self, f: usize, rows: &[usize]) -> Vec<u64>;

    /// Same as [`SplitCounts::count_table`] but called exactly once per
    /// feature, at the root, with the full training row set — the hook
    /// that lets the sweep path serve cached `SuffStats` tables without
    /// a row scan.
    fn root_table(&self, f: usize, rows: &[usize]) -> Cow<'_, [u64]> {
        Cow::Owned(self.count_table(f, rows))
    }
}

/// The trivial provider: scan codes off any [`CodeSource`].
pub(crate) struct ScanCounts<'a, S: CodeSource> {
    pub src: &'a S,
}

impl<S: CodeSource> SplitCounts for ScanCounts<'_, S> {
    fn n_classes(&self) -> usize {
        self.src.n_classes()
    }

    fn domain_size(&self, f: usize) -> usize {
        self.src.feature_domain_size(f)
    }

    fn label(&self, row: usize) -> u32 {
        self.src.label(row)
    }

    fn code(&self, f: usize, row: usize) -> u32 {
        self.src.code(f, row)
    }

    fn count_table(&self, f: usize, rows: &[usize]) -> Vec<u64> {
        let c = self.src.n_classes();
        let d = self.src.feature_domain_size(f);
        let mut counts = vec![0u64; c * d];
        for &r in rows {
            counts[self.src.label(r) as usize * d + self.src.code(f, r) as usize] += 1;
        }
        counts
    }
}

/// CART learner configuration: binary one-vs-rest splits, Gini
/// impurity, depth- and support-limited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CartTree {
    /// Maximum tree depth (root = depth 0; a tree of one leaf has
    /// depth 0).
    pub max_depth: usize,
    /// Nodes with fewer training rows become leaves.
    pub min_samples_split: usize,
    /// Worker count for per-node split scoring; `None` resolves
    /// `HAMLET_THREADS` once per process. The fitted tree is identical
    /// at any value — scoring reduces in feature order.
    pub threads: Option<usize>,
}

impl Default for CartTree {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 4,
            threads: None,
        }
    }
}

/// One arena node of a fitted CART tree. Children always precede their
/// parent in the arena (`left < self`, `right < self`), so any walk
/// terminates in at most `nodes.len()` steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CartNode {
    /// Majority class of the node's training rows.
    Leaf { class: u32 },
    /// Route left when `code(feature) == value`, right otherwise.
    Split {
        feature: usize,
        value: u32,
        left: u32,
        right: u32,
    },
}

/// A structurally invalid tree arena (rejected by
/// [`CartModel::from_parts`] and [`crate::gbt::GbtModel::from_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// The arena has no nodes.
    EmptyNodes,
    /// The root index is outside the arena.
    RootOutOfRange { root: u32, n_nodes: usize },
    /// A split's child does not precede it (the acyclicity invariant).
    ChildOrder { node: usize },
    /// A split tests a feature position outside the declared layout.
    FeatureOutOfRange { node: usize, feature: usize },
    /// A leaf carries a non-finite value.
    NonFiniteLeaf { node: usize },
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyNodes => write!(f, "tree arena is empty"),
            Self::RootOutOfRange { root, n_nodes } => {
                write!(f, "root {root} outside arena of {n_nodes} nodes")
            }
            Self::ChildOrder { node } => {
                write!(f, "node {node}: children must precede their parent")
            }
            Self::FeatureOutOfRange { node, feature } => {
                write!(f, "node {node}: feature position {feature} out of range")
            }
            Self::NonFiniteLeaf { node } => write!(f, "node {node}: non-finite leaf value"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Checks the arena-shape invariants shared by classification and
/// regression trees: non-empty, root in range, children strictly before
/// parents, feature positions under `n_features`.
pub(crate) fn check_arena(
    splits: impl Iterator<Item = (usize, usize, u32, u32)>,
    n_nodes: usize,
    root: u32,
    n_features: usize,
) -> Result<(), TreeError> {
    if n_nodes == 0 {
        return Err(TreeError::EmptyNodes);
    }
    if root as usize >= n_nodes {
        return Err(TreeError::RootOutOfRange { root, n_nodes });
    }
    for (node, feature, left, right) in splits {
        if left as usize >= node || right as usize >= node {
            return Err(TreeError::ChildOrder { node });
        }
        if feature >= n_features {
            return Err(TreeError::FeatureOutOfRange { node, feature });
        }
    }
    Ok(())
}

/// A fitted CART tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CartModel {
    feats: Vec<usize>,
    n_classes: usize,
    nodes: Vec<CartNode>,
    root: u32,
}

impl CartModel {
    /// Rebuilds a model from serialized parts, validating the arena
    /// invariants (non-empty, root in range, children strictly precede
    /// parents — which guarantees walks terminate — and feature
    /// positions bounded by `n_features`).
    pub fn from_parts(
        feats: Vec<usize>,
        n_classes: usize,
        n_features: usize,
        nodes: Vec<CartNode>,
        root: u32,
    ) -> Result<Self, TreeError> {
        check_arena(
            nodes.iter().enumerate().filter_map(|(i, n)| match n {
                CartNode::Leaf { .. } => None,
                CartNode::Split {
                    feature,
                    left,
                    right,
                    ..
                } => Some((i, *feature, *left, *right)),
            }),
            nodes.len(),
            root,
            n_features,
        )?;
        Ok(Self {
            feats,
            n_classes,
            nodes,
            root,
        })
    }

    /// The arena, children-before-parents.
    pub fn nodes(&self) -> &[CartNode] {
        &self.nodes
    }

    /// Index of the root node in the arena.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf count.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, CartNode::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        // Children precede parents, so one forward pass suffices.
        let mut depths = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let CartNode::Split { left, right, .. } = n {
                let l = depths.get(*left as usize).copied().unwrap_or(0);
                let r = depths.get(*right as usize).copied().unwrap_or(0);
                depths[i] = 1 + l.max(r);
            }
        }
        depths.get(self.root as usize).copied().unwrap_or(0)
    }
}

impl Model for CartModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        let mut at = self.root as usize;
        // Children precede parents, so `at` strictly decreases; the
        // fuel bound makes even a corrupt arena terminate.
        for _ in 0..=self.nodes.len() {
            match self.nodes.get(at) {
                Some(CartNode::Leaf { class }) => return *class,
                Some(CartNode::Split {
                    feature,
                    value,
                    left,
                    right,
                }) => {
                    at = if data.code(*feature, row) == *value {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
                None => return 0,
            }
        }
        0
    }

    fn features(&self) -> &[usize] {
        &self.feats
    }
}

/// Gini impurity `1 - Σ p_y²` of a class histogram with `n` rows.
fn gini(class_counts: &[u64], n: f64) -> f64 {
    let mut sum = 0.0;
    for &k in class_counts {
        let p = k as f64 / n;
        sum += p * p;
    }
    1.0 - sum
}

/// Majority class (lowest index on ties) of a histogram.
pub(crate) fn majority(class_counts: &[u64]) -> u32 {
    let mut best = 0usize;
    let mut best_count = class_counts.first().copied().unwrap_or(0);
    for (y, &k) in class_counts.iter().enumerate().skip(1) {
        if k > best_count {
            best = y;
            best_count = k;
        }
    }
    best as u32
}

/// Best one-vs-rest split value of one feature from its count table:
/// `(value, Gini gain)`, values scanned in domain order, strictly
/// greater wins. Pure integer-counts-in, floats-out — the heart of the
/// materialized/factorized parity argument.
fn best_value_split(
    table: &[u64],
    d: usize,
    class_counts: &[u64],
    n: u64,
    parent_gini: f64,
) -> Option<(u32, f64)> {
    let c = class_counts.len();
    let nf = n as f64;
    let mut best: Option<(u32, f64)> = None;
    for v in 0..d {
        let mut n_left = 0u64;
        for y in 0..c {
            n_left += table[y * d + v];
        }
        if n_left == 0 || n_left == n {
            continue;
        }
        let n_right = n - n_left;
        let (nl, nr) = (n_left as f64, n_right as f64);
        let mut sum_l = 0.0;
        let mut sum_r = 0.0;
        for (y, &total_y) in class_counts.iter().enumerate() {
            let kl = table[y * d + v];
            let pl = kl as f64 / nl;
            let pr = (total_y - kl) as f64 / nr;
            sum_l += pl * pl;
            sum_r += pr * pr;
        }
        let after = (nl / nf) * (1.0 - sum_l) + (nr / nf) * (1.0 - sum_r);
        let gain = parent_gini - after;
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((v as u32, gain));
        }
    }
    best
}

/// Grows one subtree, returning its arena index. Children are pushed
/// before their parent, establishing the `left < self, right < self`
/// invariant every walk relies on.
fn grow<C: SplitCounts + Sync + ?Sized>(
    cfg: &CartTree,
    counts: &C,
    rows: &[usize],
    feats: &[usize],
    depth: usize,
    threads: usize,
    nodes: &mut Vec<CartNode>,
) -> u32 {
    let c = counts.n_classes().max(1);
    let mut class_counts = vec![0u64; c];
    for &r in rows {
        let y = counts.label(r) as usize;
        if y < c {
            class_counts[y] += 1;
        }
    }
    let node_majority = majority(&class_counts);
    let n = rows.len() as u64;
    let pure = class_counts.iter().filter(|&&k| k > 0).count() <= 1;
    let leaf = |nodes: &mut Vec<CartNode>| {
        nodes.push(CartNode::Leaf {
            class: node_majority,
        });
        (nodes.len() - 1) as u32
    };
    if depth >= cfg.max_depth || rows.len() < cfg.min_samples_split || pure || feats.is_empty() {
        return leaf(nodes);
    }

    // Score every candidate feature in parallel, chunked so each worker
    // owns a disjoint contiguous range; the reduction below walks the
    // flattened results in feature order, so the winner is independent
    // of the worker count.
    let parent_gini = gini(&class_counts, n as f64);
    let chunk = feats.len().div_ceil(threads.max(1)).max(1);
    let n_chunks = feats.len().div_ceil(chunk);
    let per_chunk = run_indexed(n_chunks, threads, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(feats.len());
        feats[lo..hi]
            .iter()
            .map(|&f| {
                let d = counts.domain_size(f);
                let table: Cow<'_, [u64]> = if depth == 0 {
                    counts.root_table(f, rows)
                } else {
                    Cow::Owned(counts.count_table(f, rows))
                };
                best_value_split(&table, d, &class_counts, n, parent_gini).map(|(v, g)| (f, v, g))
            })
            .collect::<Vec<_>>()
    });
    let mut best: Option<(usize, u32, f64)> = None;
    for cand in per_chunk.into_iter().flatten().flatten() {
        if best.is_none_or(|(_, _, g)| cand.2 > g) {
            best = Some(cand);
        }
    }
    let Some((feature, value, gain)) = best else {
        return leaf(nodes);
    };
    if gain <= GAIN_TOL {
        return leaf(nodes);
    }

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for &r in rows {
        if counts.code(feature, r) == value {
            left_rows.push(r);
        } else {
            right_rows.push(r);
        }
    }
    if left_rows.is_empty() || right_rows.is_empty() {
        // Unreachable when codes and count tables agree; degrade to a
        // leaf rather than recurse forever if they ever don't.
        return leaf(nodes);
    }
    let left = grow(cfg, counts, &left_rows, feats, depth + 1, threads, nodes);
    let right = grow(cfg, counts, &right_rows, feats, depth + 1, threads, nodes);
    nodes.push(CartNode::Split {
        feature,
        value,
        left,
        right,
    });
    (nodes.len() - 1) as u32
}

impl CartTree {
    /// Fits over any [`CodeSource`] — the materialized path when handed
    /// a [`Dataset`], the zero-materialization path when handed a
    /// `FactorizedView` (though `crate::factorized::fit_factorized_tree`
    /// is preferred there: it pushes the count aggregates down instead
    /// of scanning through FK indirection per node).
    pub fn fit_source<S: CodeSource + Sync>(
        &self,
        src: &S,
        rows: &[usize],
        feats: &[usize],
    ) -> CartModel {
        self.fit_with(&ScanCounts { src }, rows, feats)
    }

    /// Fits from an arbitrary statistics provider — the single growth
    /// path every frontend (materialized, sweep-cached, factorized)
    /// funnels through.
    pub(crate) fn fit_with<C: SplitCounts + Sync + ?Sized>(
        &self,
        counts: &C,
        rows: &[usize],
        feats: &[usize],
    ) -> CartModel {
        let threads = self
            .threads
            .unwrap_or_else(hamlet_obs::env::resolved_threads);
        let mut nodes = Vec::new();
        let root = grow(self, counts, rows, feats, 0, threads, &mut nodes);
        CartModel {
            feats: feats.to_vec(),
            n_classes: counts.n_classes(),
            nodes,
            root,
        }
    }
}

impl Classifier for CartTree {
    type Fitted = CartModel;

    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> CartModel {
        self.fit_source(data, rows, feats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_ml::dataset::Feature;

    fn xor_data() -> Dataset {
        // y = x0 OR x1: needs depth 2, and both root gains are positive
        // (greedy Gini is blind to pure XOR, by design of greedy CART).
        let x0: Vec<u32> = (0..40).map(|i| (i / 2) % 2).collect();
        let x1: Vec<u32> = (0..40).map(|i| i % 2).collect();
        let noise: Vec<u32> = (0..40).map(|i| (i * 13 + 5) % 3).collect();
        let y: Vec<u32> = x0.iter().zip(&x1).map(|(&a, &b)| a | b).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 2,
                    codes: x1,
                },
                Feature {
                    name: "noise".into(),
                    domain_size: 3,
                    codes: noise,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn learns_xor_exactly() {
        let data = xor_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let feats = vec![0, 1, 2];
        let model = CartTree::default().fit(&data, &rows, &feats);
        for &r in &rows {
            assert_eq!(model.predict_row(&data, r), data.labels()[r]);
        }
        assert!(model.depth() >= 2);
    }

    #[test]
    fn empty_feats_is_majority_predictor() {
        let data = xor_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let model = CartTree::default().fit(&data, &rows, &[]);
        assert_eq!(model.n_nodes(), 1);
        // 75% of the labels are 1 under the OR target.
        assert_eq!(model.predict_row(&data, 0), 1);
    }

    #[test]
    fn empty_rows_yield_a_single_leaf() {
        let data = xor_data();
        let model = CartTree::default().fit(&data, &[], &[0, 1, 2]);
        assert_eq!(model.n_nodes(), 1);
        assert_eq!(model.depth(), 0);
    }

    #[test]
    fn depth_zero_is_a_stump_free_majority_leaf() {
        let data = xor_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let cfg = CartTree {
            max_depth: 0,
            ..CartTree::default()
        };
        let model = cfg.fit(&data, &rows, &[0, 1, 2]);
        assert_eq!(model.n_nodes(), 1);
    }

    #[test]
    fn thread_count_does_not_change_the_tree() {
        let data = xor_data();
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let feats = vec![0, 1, 2];
        let base = CartTree {
            threads: Some(1),
            ..CartTree::default()
        }
        .fit(&data, &rows, &feats);
        for t in [2, 3, 8] {
            let m = CartTree {
                threads: Some(t),
                ..CartTree::default()
            }
            .fit(&data, &rows, &feats);
            assert_eq!(base, m, "tree changed at {t} threads");
        }
    }

    #[test]
    fn from_parts_rejects_malformed_arenas() {
        assert_eq!(
            CartModel::from_parts(vec![], 2, 1, vec![], 0),
            Err(TreeError::EmptyNodes)
        );
        let leaf = CartNode::Leaf { class: 0 };
        assert!(matches!(
            CartModel::from_parts(vec![], 2, 1, vec![leaf], 3),
            Err(TreeError::RootOutOfRange { .. })
        ));
        // A split whose child is itself: cycle, rejected by child order.
        let cyclic = CartNode::Split {
            feature: 0,
            value: 0,
            left: 0,
            right: 0,
        };
        assert!(matches!(
            CartModel::from_parts(vec![0], 2, 1, vec![cyclic], 0),
            Err(TreeError::ChildOrder { node: 0 })
        ));
        let bad_feat = vec![
            leaf,
            leaf,
            CartNode::Split {
                feature: 9,
                value: 0,
                left: 0,
                right: 1,
            },
        ];
        assert!(matches!(
            CartModel::from_parts(vec![0], 2, 1, bad_feat, 2),
            Err(TreeError::FeatureOutOfRange { node: 2, .. })
        ));
    }

    #[test]
    fn corrupt_walks_terminate_without_panicking() {
        // Bypass validation to simulate a hostile arena; the fuel bound
        // must still terminate the walk.
        let model = CartModel {
            feats: vec![0],
            n_classes: 2,
            nodes: vec![CartNode::Split {
                feature: 0,
                value: 0,
                left: 0,
                right: 0,
            }],
            root: 0,
        };
        let data = xor_data();
        assert_eq!(model.predict_row(&data, 0), 0);
    }
}
