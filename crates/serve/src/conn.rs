//! Buffered per-connection request framing for HTTP/1.1 keep-alive and
//! pipelining.
//!
//! A [`ConnReader`] lives for the whole life of one accepted socket and
//! owns every byte read from it. That is the property that makes
//! pipelining safe: a read that pulls in the tail of request *n* plus
//! the head of request *n+1* leaves the surplus in the buffer for the
//! next [`ConnReader::next_request`] call instead of dropping it on the
//! floor (the one-request-per-connection reader simply discarded
//! anything after `Content-Length` bytes).
//!
//! Timeout semantics distinguish two very different kinds of silence:
//!
//! * **Idle at a request boundary** — the client holds the connection
//!   open but has nothing to say. After `idle` with zero buffered
//!   bytes this is a *clean close* (`Ok(None)`), not an error: that is
//!   how keep-alive connections end.
//! * **Stalled mid-request** — the first byte arrived, so the client
//!   owes us a complete request within `deadline`. A stall here is the
//!   slow-loris case and stays a typed [`ReadError::TooSlow`] (408).
//!
//! The head-terminator scan tracks how far it has already looked
//! (`http::find_head_end_from`), so a head trickled in N reads costs
//! O(head), not the O(head²) rescan the old loop paid.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::http::{
    find_head_end_from, parse_head, read_some, ReadError, Request, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};

/// Default keep-alive idle deadline between requests on one connection.
pub const IDLE_DEADLINE: Duration = Duration::from_secs(5);

/// Read chunk size; also bounds how far one read can over-run into
/// pipelined follow-up requests (the surplus is kept, not dropped).
const CHUNK: usize = 4096;

/// Per-connection buffered reader. See the module docs for the framing
/// and timeout contract.
#[derive(Debug, Default)]
pub struct ConnReader {
    /// Bytes read but not yet consumed by a framed request. Starts with
    /// any pipelined surplus from the previous request.
    buf: Vec<u8>,
    /// How far `buf` has been scanned for the head terminator.
    scanned: usize,
}

impl ConnReader {
    /// A fresh reader for a newly accepted connection.
    pub fn new() -> Self {
        ConnReader::default()
    }

    /// Bytes buffered ahead of the next request (pipelined surplus).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Frames the next request off the connection.
    ///
    /// * `Ok(Some(req))` — one complete request; surplus bytes stay
    ///   buffered for the next call.
    /// * `Ok(None)` — clean end of the connection: EOF or `idle`
    ///   elapsed with no buffered bytes at a request boundary.
    /// * `Err(_)` — malformed framing, an over-limit head/body, a
    ///   mid-request stall (`TooSlow`), or a socket error. The
    ///   connection is unusable for further requests after any error.
    pub fn next_request(
        &mut self,
        stream: &mut TcpStream,
        deadline: Duration,
        idle: Duration,
    ) -> Result<Option<Request>, ReadError> {
        let mut chunk = [0u8; CHUNK];
        // Wait for the first byte of the request (or use pipelined
        // surplus). Only this wait runs under the idle deadline; once a
        // byte exists the request deadline governs.
        if self.buf.is_empty() {
            let idle_started = Instant::now();
            match read_some(stream, &mut chunk, idle_started, idle) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(ReadError::TooSlow) => return Ok(None),
                Err(e) => return Err(e),
            }
        }

        let started = Instant::now();
        let head_end = loop {
            if let Some(pos) = find_head_end_from(&self.buf, self.scanned) {
                break pos;
            }
            self.scanned = self.buf.len();
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::TooLarge("request head"));
            }
            let n = read_some(stream, &mut chunk, started, deadline)?;
            if n == 0 {
                return Err(ReadError::Malformed(
                    "connection closed before the end of headers".into(),
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };

        let head = parse_head(&self.buf[..head_end])?;
        if head.content_length > MAX_BODY_BYTES {
            return Err(ReadError::TooLarge("request body"));
        }

        let body_start = head_end + 4;
        let total = body_start + head.content_length;
        while self.buf.len() < total {
            let n = read_some(stream, &mut chunk, started, deadline)?;
            if n == 0 {
                return Err(ReadError::Malformed(
                    "connection closed before the end of the body".into(),
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }

        let body = self.buf[body_start..total].to_vec();
        // Keep any pipelined surplus; reset the head scan for it.
        self.buf.drain(..total);
        self.scanned = 0;
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            body,
            close: head.close,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, server_side)
    }

    const SECOND: Duration = Duration::from_secs(1);

    #[test]
    fn pipelined_requests_are_framed_without_bleeding() {
        let (mut client, mut server) = pair();
        // Three pipelined requests in one write; the middle body contains
        // bytes that look like a request head, which must stay body.
        client
            .write_all(
                b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                  POST /b HTTP/1.1\r\nContent-Length: 18\r\n\r\nGET /x HTTP/1.1\r\n\r\
                  GET /c HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();

        let mut r = ConnReader::new();
        let a = r
            .next_request(&mut server, SECOND, SECOND)
            .unwrap()
            .unwrap();
        assert_eq!((a.path.as_str(), a.body.as_slice()), ("/a", &b"abc"[..]));
        assert!(!a.close);
        let b = r
            .next_request(&mut server, SECOND, SECOND)
            .unwrap()
            .unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"GET /x HTTP/1.1\r\n\r");
        let c = r
            .next_request(&mut server, SECOND, SECOND)
            .unwrap()
            .unwrap();
        assert_eq!(c.path, "/c");
        assert!(c.close);
        // EOF at the boundary is a clean close.
        assert_eq!(r.next_request(&mut server, SECOND, SECOND).unwrap(), None);
    }

    #[test]
    fn idle_at_a_boundary_is_a_clean_close_but_a_stall_mid_request_is_408() {
        let (mut client, mut server) = pair();
        let mut r = ConnReader::new();
        // Nothing sent: idle deadline elapses -> clean close, fast.
        let t = Instant::now();
        assert_eq!(
            r.next_request(&mut server, SECOND, Duration::from_millis(80))
                .unwrap(),
            None
        );
        assert!(t.elapsed() < Duration::from_millis(500));

        // Half a head then silence: that is a stalled request, not idleness.
        client.write_all(b"GET /slow HTT").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let err = r
            .next_request(&mut server, Duration::from_millis(120), SECOND)
            .unwrap_err();
        assert_eq!(err, ReadError::TooSlow);
    }

    #[test]
    fn trickled_head_is_scanned_incrementally() {
        let (mut client, mut server) = pair();
        let raw = b"POST /t HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let h = std::thread::spawn(move || {
            for byte in raw.iter() {
                client.write_all(&[*byte]).unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            client
        });
        let mut r = ConnReader::new();
        let req = r
            .next_request(&mut server, Duration::from_secs(5), Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/t");
        assert_eq!(req.body, b"ok");
        drop(h.join().unwrap());
    }

    #[test]
    fn surplus_is_reported() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n")
            .unwrap();
        // Give the kernel a beat so one read sees both requests.
        std::thread::sleep(Duration::from_millis(30));
        let mut r = ConnReader::new();
        let first = r
            .next_request(&mut server, SECOND, SECOND)
            .unwrap()
            .unwrap();
        assert_eq!(first.path, "/1");
        assert!(r.buffered() > 0, "pipelined bytes must stay buffered");
    }
}
