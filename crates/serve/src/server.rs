//! The inference server: a bounded worker pool over `std::net` with
//! HTTP/1.1 keep-alive + pipelining, request micro-batching, a
//! multi-model registry with atomic hot-swap, backpressure, graceful
//! drain, and full observability.
//!
//! Design points:
//!
//! * **Bounded everything.** `threads` workers pull connections from a
//!   queue of at most `queue_capacity`; when the queue is full the
//!   accept loop answers `503 Service Unavailable` immediately instead
//!   of letting latency grow without bound (load-shedding
//!   backpressure).
//! * **Connection lifecycle.** A worker owns a connection for its whole
//!   life and answers requests off a per-connection
//!   [`crate::conn::ConnReader`]: keep-alive by default,
//!   pipelining-safe framing, `Connection: close` honored, an optional
//!   `max_requests_per_conn` cap, and an idle deadline after which a
//!   silent connection is closed cleanly (distinct from the 408 a
//!   mid-request stall earns).
//! * **Micro-batching.** Concurrent single-row `/predict` requests
//!   landing within the batch window are coalesced onto the batch
//!   scorer and fanned back out ([`crate::batch::MicroBatcher`]),
//!   bit-for-bit identical to unbatched scoring.
//! * **Multi-model.** Requests route through a
//!   [`crate::registry::Registry`]: `/models/<id>/predict`
//!   per model, legacy routes on the default model, `POST /reload` (or
//!   SIGHUP via `reload_signal`) for atomic hot-swap with zero dropped
//!   requests.
//! * **Graceful drain.** [`ServerHandle::stop`] (or an external stop
//!   flag, typically flipped by a SIGTERM/ctrl-c handler) stops the
//!   accept loop, lets workers finish in-flight connections, then joins
//!   them and reports final [`ServerStats`]. An accept-thread panic is
//!   journaled and surfaced as a typed error from
//!   [`ServerHandle::join`], never silently swallowed as zero stats.
//!
//! Routes: `GET /healthz`, `GET /metrics`, `GET /models`,
//! `POST /predict`, `POST /reload`, and per-model
//! `GET /models/<id>/healthz` + `POST /models/<id>/predict`.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hamlet_obs::json::{obj, Json};
use hamlet_obs::{counter_add, histogram_observe, span};

use crate::conn::{ConnReader, IDLE_DEADLINE};
use crate::http::{write_response, write_response_with, Request, READ_DEADLINE};
use crate::registry::{ModelEntry, Registry};
use crate::score::{Prediction, Scorer};

/// Failpoint armed in the accept loop
/// (`HAMLET_FAILPOINTS=serve.accept=panic` for the join-surfacing
/// regression test; `=io` drops the accepted connection with a
/// journaled warning).
pub const ACCEPT_FAILPOINT: &str = "serve.accept";

/// Failpoint hit at the top of full scoring
/// (`HAMLET_FAILPOINTS=serve.model_score=panic@3` in the chaos-degrade
/// scenario). With `--fallback` the fault is absorbed by the surrogate
/// chain; without it, an injected panic keeps the legacy
/// connection-drop semantics.
pub const MODEL_SCORE_FAILPOINT: &str = "serve.model_score";

/// Total wall-clock budget for draining request bytes before a 503
/// refusal is written (so the client can read it instead of an RST).
const SHED_DRAIN_DEADLINE: Duration = Duration::from_millis(250);

/// Byte budget for the same drain.
const SHED_DRAIN_BUDGET: usize = 256 * 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 asks the OS for a
    /// free port (the tests do this); [`ServerHandle::port`] reports the
    /// bound port.
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Maximum accepted-but-unhandled connections before the server
    /// starts shedding load with 503s.
    pub queue_capacity: usize,
    /// Optional external stop flag (the CLI points this at the static
    /// its SIGTERM handler flips). Checked alongside the handle's own
    /// stop flag.
    pub stop_signal: Option<&'static AtomicBool>,
    /// Optional external reload flag (the CLI points this at the static
    /// its SIGHUP handler flips). When observed set, the accept loop
    /// clears it and hot-swaps the registry from disk.
    pub reload_signal: Option<&'static AtomicBool>,
    /// Maximum requests served over one connection before the server
    /// answers `Connection: close` (0 = unlimited). A fleet-facing cap
    /// bounds per-connection resource skew and gives load balancers a
    /// natural rebalancing point.
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server closes it cleanly.
    pub idle_timeout: Duration,
    /// Micro-batch collection window for concurrent single-row predicts
    /// (zero disables coalescing). See [`resolve_batch_window`].
    pub batch_window: Duration,
    /// Enables the serving fallback chain (`serve --fallback`): rows
    /// naming degraded-build features are scored with those features
    /// ignored instead of refused, and a scoring fault answers from the
    /// prior-only surrogate (2xx with the degraded marker) instead of
    /// dropping the connection. Off by default: a non-degraded server
    /// answers bit-for-bit as before.
    pub fallback: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: resolve_threads(None),
            queue_capacity: 64,
            stop_signal: None,
            reload_signal: None,
            max_requests_per_conn: 0,
            idle_timeout: IDLE_DEADLINE,
            batch_window: Duration::ZERO,
            fallback: false,
        }
    }
}

/// Resolves the worker count: an explicit flag wins, then the
/// `HAMLET_THREADS` convention, then available parallelism. An invalid
/// `HAMLET_THREADS` falls back loudly (warning in the run journal), the
/// same policy as the experiment runner.
pub fn resolve_threads(flag: Option<usize>) -> usize {
    if let Some(t) = flag {
        return t.max(1);
    }
    let default_threads = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    hamlet_obs::env::var_where("HAMLET_THREADS", "a positive integer", |&t: &usize| t > 0)
        .unwrap_or_else(|e| {
            hamlet_obs::record_warning(format!("{e}; using available parallelism"));
            None
        })
        .unwrap_or_else(default_threads)
}

/// Resolves the micro-batch window: an explicit flag (microseconds)
/// wins, then `HAMLET_BATCH_WINDOW_US`, then zero (coalescing off). An
/// invalid value falls back loudly, the same policy as
/// [`resolve_threads`].
pub fn resolve_batch_window(flag: Option<u64>) -> Duration {
    let us = match flag {
        Some(us) => us,
        None => hamlet_obs::env::var_where(
            "HAMLET_BATCH_WINDOW_US",
            "a non-negative integer (microseconds)",
            |_: &u64| true,
        )
        .unwrap_or_else(|e| {
            hamlet_obs::record_warning(format!("{e}; micro-batching disabled"));
            None
        })
        .unwrap_or(0),
    };
    Duration::from_micros(us)
}

/// Final request accounting, returned when the server drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests handled to completion (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Connections shed with 503 because the queue was full.
    pub rejected: u64,
    /// Successful registry hot-swaps (POST /reload or SIGHUP).
    pub reloads: u64,
}

struct Inner {
    registry: Arc<Registry>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    draining: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    reloads: AtomicU64,
    max_requests_per_conn: usize,
    idle_timeout: Duration,
    fallback: bool,
}

/// Lock helper: a poisoned queue mutex only means another worker
/// panicked mid-push/pop; the queue itself is still structurally sound,
/// so serving beats aborting.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::stop`] then [`ServerHandle::join`] (or
/// [`ServerHandle::run_until_stopped`]) for a clean drain.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    port: u16,
    accept: Option<std::thread::JoinHandle<ServerStats>>,
}

/// Renders a panic payload for the journal (panics carry `&str` or
/// `String` in practice).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

impl ServerHandle {
    /// The bound port (useful with `addr: "127.0.0.1:0"`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests the server stop accepting and drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete and returns final stats.
    ///
    /// An accept-thread panic is journaled and returned as `Err` with
    /// the panic text — the old `unwrap_or_default()` here silently
    /// reported zero stats for a crashed server, which read exactly
    /// like a healthy idle one.
    pub fn join(mut self) -> Result<ServerStats, String> {
        match self.accept.take() {
            Some(h) => h.join().map_err(|payload| {
                let msg = format!(
                    "serve accept thread panicked: {}",
                    panic_text(payload.as_ref())
                );
                counter_add!("hamlet_serve_accept_panics_total", 1);
                hamlet_obs::record_warning(msg.clone());
                msg
            }),
            None => Ok(ServerStats::default()),
        }
    }

    /// Blocks until [`ServerHandle::stop`] is called (or the external
    /// stop signal fires), then drains and returns final stats.
    pub fn run_until_stopped(self) -> Result<ServerStats, String> {
        self.join()
    }
}

/// Starts a single-model server (the model becomes the registry's
/// `default` entry). See [`start_with_registry`] for multi-model
/// serving.
pub fn start(scorer: Scorer, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let registry = Arc::new(Registry::single(scorer, config.batch_window));
    start_with_registry(registry, config)
}

/// Starts the server over an existing registry: binds, spawns the
/// accept loop and `threads` workers, and returns immediately. The
/// caller may keep its own `Arc<Registry>` clone to drive hot-swaps
/// programmatically.
pub fn start_with_registry(
    registry: Arc<Registry>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let port = listener.local_addr()?.port();

    let inner = Arc::new(Inner {
        registry,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        draining: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        reloads: AtomicU64::new(0),
        max_requests_per_conn: config.max_requests_per_conn,
        idle_timeout: config.idle_timeout,
        fallback: config.fallback,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let threads = config.threads.max(1);
    let queue_capacity = config.queue_capacity.max(1);

    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let inner = Arc::clone(&inner);
        workers.push(std::thread::spawn(move || worker_loop(&inner)));
    }

    let accept_inner = Arc::clone(&inner);
    let accept_stop = Arc::clone(&stop);
    let stop_signal = config.stop_signal;
    let reload_signal = config.reload_signal;
    let accept = std::thread::spawn(move || {
        accept_loop(
            &listener,
            &accept_inner,
            &accept_stop,
            stop_signal,
            reload_signal,
            queue_capacity,
        );
        // Drain: stop handing out work, wake every worker, join them.
        accept_inner.draining.store(true, Ordering::SeqCst);
        accept_inner.available.notify_all();
        for w in workers {
            if w.join().is_err() {
                // The worker loop catches per-connection panics; one
                // escaping here means the worker died between
                // connections. The connection accounting is intact, so
                // report and keep draining the rest.
                counter_add!("hamlet_serve_worker_panics_total", 1);
                hamlet_obs::record_warning("serve worker thread panicked during drain".to_string());
            }
        }
        ServerStats {
            requests: accept_inner.requests.load(Ordering::SeqCst),
            errors: accept_inner.errors.load(Ordering::SeqCst),
            rejected: accept_inner.rejected.load(Ordering::SeqCst),
            reloads: accept_inner.reloads.load(Ordering::SeqCst),
        }
    });

    Ok(ServerHandle {
        stop,
        port,
        accept: Some(accept),
    })
}

fn should_stop(stop: &AtomicBool, external: Option<&'static AtomicBool>) -> bool {
    stop.load(Ordering::SeqCst) || external.is_some_and(|s| s.load(Ordering::SeqCst))
}

/// Resets an accepted socket to blocking mode. Accepted sockets inherit
/// the listener's `O_NONBLOCK` on some platforms (BSD/macOS semantics);
/// a nonblocking worker read would then misreport an instantly-empty
/// socket as `WouldBlock`, which the deadline reader interprets as a
/// stall — spurious 408s for perfectly healthy clients.
fn prepare_accepted(stream: &TcpStream) {
    if let Err(e) = stream.set_nonblocking(false) {
        hamlet_obs::record_warning(format!("could not reset accepted socket to blocking: {e}"));
    }
    // Responses are latency-sensitive and always written whole; Nagle
    // only adds delayed-ACK stalls on keep-alive connections.
    let _ = stream.set_nodelay(true);
}

/// Consumes whatever request bytes the client has in flight, up to a
/// byte budget and deadline, so closing right after the 503 refusal
/// does not RST the response away before the client reads it. The old
/// single 4096-byte read left a client mid-way through a large body
/// holding an RST instead of the refusal.
fn drain_request_bytes(stream: &mut TcpStream) {
    let deadline = Instant::now() + SHED_DRAIN_DEADLINE;
    let mut budget = SHED_DRAIN_BUDGET;
    let mut scratch = [0u8; 4096];
    while budget > 0 {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let _ = stream.set_read_timeout(Some(remaining.min(Duration::from_millis(50))));
        match std::io::Read::read(stream, &mut scratch) {
            Ok(0) => break, // client finished (EOF)
            Ok(n) => budget = budget.saturating_sub(n),
            // Nothing pending right now: the receive queue is empty, so
            // a close after the refusal is RST-safe for what arrived.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(_) => break,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Inner,
    stop: &AtomicBool,
    external: Option<&'static AtomicBool>,
    reload: Option<&'static AtomicBool>,
    queue_capacity: usize,
) {
    while !should_stop(stop, external) {
        // SIGHUP-style hot swap: observed once, cleared, applied.
        if let Some(flag) = reload {
            if flag.swap(false, Ordering::SeqCst) {
                // Outcome is journaled inside; a failed reload keeps the
                // old models serving.
                let _ = apply_reload(inner);
            }
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                if let Err(e) = hamlet_chaos::fail_at!(ACCEPT_FAILPOINT) {
                    hamlet_obs::record_warning(format!(
                        "serve.accept failpoint dropped a connection: {e}"
                    ));
                    continue;
                }
                prepare_accepted(&stream);
                let backlog = lock(&inner.queue).len();
                if backlog >= queue_capacity {
                    // Load shedding: answer 503 from the accept thread so
                    // a saturated pool never queues unbounded latency.
                    inner.rejected.fetch_add(1, Ordering::SeqCst);
                    counter_add!("hamlet_serve_rejected_total", 1);
                    drain_request_bytes(&mut stream);
                    let body = obj(vec![(
                        "error",
                        obj(vec![
                            ("kind", Json::Str("overloaded".into())),
                            (
                                "message",
                                Json::Str(format!(
                                    "request queue is full ({queue_capacity}); retry later"
                                )),
                            ),
                        ]),
                    )])
                    .to_string();
                    let _ = write_response(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        "application/json",
                        &body,
                        false,
                    );
                    continue;
                }
                lock(&inner.queue).push_back(stream);
                inner.available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Nonblocking accept: nap briefly so the stop flag is
                // observed within ~10ms of a signal.
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Runs a registry hot-swap and records the outcome (shared by the
/// SIGHUP path and `POST /reload`).
fn apply_reload(inner: &Inner) -> Result<crate::registry::ReloadReport, String> {
    match inner.registry.reload() {
        Ok(report) => {
            inner.reloads.fetch_add(1, Ordering::SeqCst);
            counter_add!("hamlet_serve_reloads_total", 1);
            hamlet_obs::record_warning(format!(
                "registry hot-swap: generation {} ({} reloaded, {} kept)",
                report.generation,
                report.reloaded.len(),
                report.kept.len()
            ));
            Ok(report)
        }
        Err(e) => {
            counter_add!("hamlet_serve_reload_failures_total", 1);
            let msg = e.to_string();
            hamlet_obs::record_warning(format!(
                "registry reload failed, keeping old models: {msg}"
            ));
            Err(msg)
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = lock(&inner.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = inner
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                queue = q;
            }
        };
        match stream {
            Some(mut s) => {
                // A scoring bug must cost one connection, not a worker:
                // a panicking handler is caught, counted, and journaled.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(inner, &mut s)
                }));
                if let Err(payload) = outcome {
                    counter_add!("hamlet_serve_worker_panics_total", 1);
                    hamlet_obs::record_warning(format!(
                        "serve worker panicked handling a connection (kept alive): {}",
                        panic_text(payload.as_ref())
                    ));
                }
            }
            None => return,
        }
    }
}

/// Serves one connection to completion: requests are framed off a
/// buffered [`ConnReader`] (pipelining-safe) and answered in order
/// until the client closes, asks `Connection: close`, goes idle past
/// the deadline, hits the per-connection request cap, or the server
/// starts draining.
fn handle_connection(inner: &Inner, stream: &mut TcpStream) {
    counter_add!("hamlet_serve_connections_total", 1);
    let mut reader = ConnReader::new();
    let mut served: usize = 0;
    loop {
        let request = reader.next_request(stream, READ_DEADLINE, inner.idle_timeout);
        let started = Instant::now();
        match request {
            // Clean end of the connection (EOF or idle past the
            // deadline at a request boundary) — not a request, not an
            // error.
            Ok(None) => return,
            Ok(Some(req)) => {
                served += 1;
                let cap_reached =
                    inner.max_requests_per_conn != 0 && served >= inner.max_requests_per_conn;
                let close = req.close || cap_reached || inner.draining.load(Ordering::SeqCst);
                let status = {
                    let _span = span!(
                        "serve.request",
                        path = req.path.clone(),
                        method = req.method.clone()
                    );
                    route(inner, stream, &req, !close)
                };
                finish_request(inner, status, started);
                if close {
                    return;
                }
            }
            Err(e) => {
                let _span = span!("serve.request", path = "<unreadable>", method = "-");
                let (status, reason) = e.status();
                let body = obj(vec![(
                    "error",
                    obj(vec![
                        ("kind", Json::Str("bad_request".into())),
                        ("message", Json::Str(e.to_string())),
                    ]),
                )])
                .to_string();
                let _ = write_response(stream, status, reason, "application/json", &body, false);
                finish_request(inner, status, started);
                return;
            }
        }
    }
}

fn finish_request(inner: &Inner, status: u16, started: Instant) {
    inner.requests.fetch_add(1, Ordering::SeqCst);
    counter_add!("hamlet_serve_requests_total", 1);
    if status >= 400 {
        inner.errors.fetch_add(1, Ordering::SeqCst);
        counter_add!("hamlet_serve_errors_total", 1);
    }
    histogram_observe!(
        "hamlet_serve_request_micros",
        started.elapsed().as_micros().min(u64::MAX as u128) as u64
    );
}

/// The `{"error": {...}}` body shared by routing refusals.
fn error_body(kind: &str, message: String) -> String {
    obj(vec![(
        "error",
        obj(vec![
            ("kind", Json::Str(kind.into())),
            ("message", Json::Str(message)),
        ]),
    )])
    .to_string()
}

/// Health document for one registry entry (legacy `/healthz` and
/// per-model `/models/<id>/healthz`).
fn health_body(entry: &ModelEntry) -> String {
    let a = entry.scorer.artifact();
    obj(vec![
        ("status", Json::Str("ok".into())),
        ("model_id", Json::Str(entry.id.clone())),
        ("generation", Json::Num(entry.generation as f64)),
        ("dataset", Json::Str(a.dataset.clone())),
        ("family", Json::Str(a.model.family().into())),
        ("n_classes", Json::Num(a.n_classes as f64)),
        (
            "features",
            Json::Arr(
                a.features
                    .iter()
                    .map(|f| Json::Str(f.name.clone()))
                    .collect(),
            ),
        ),
        (
            "avoided_joins",
            Json::Num(a.decisions.iter().filter(|d| d.avoid).count() as f64),
        ),
    ])
    .to_string()
}

/// Renders the `{"predictions": [...]}` body, appending the
/// `"degraded": true` member only on degraded answers so non-degraded
/// responses stay byte-identical to the pre-fallback format.
fn render_predictions_marked(preds: &[Prediction], degraded: bool) -> String {
    let mut rendered = Scorer::render_predictions(preds);
    if degraded {
        if let Json::Obj(members) = &mut rendered {
            members.push(("degraded".into(), Json::Bool(true)));
        }
    }
    rendered.to_string()
}

/// Why one full-scoring attempt did not produce predictions.
enum ScoreFault {
    /// The `serve.model_score` failpoint (or a future IO-backed scorer)
    /// failed before scoring ran.
    Io(String),
    /// Scoring itself panicked; the payload is kept so the no-fallback
    /// path can resume the unwind with legacy semantics.
    Panic(Box<dyn std::any::Any + Send>),
}

impl ScoreFault {
    fn text(&self) -> String {
        match self {
            ScoreFault::Io(m) => m.clone(),
            ScoreFault::Panic(payload) => format!("panic: {}", panic_text(payload.as_ref())),
        }
    }
}

/// One attempt at full scoring: the `serve.model_score` failpoint, then
/// the (possibly micro-batched) scorer under `catch_unwind` so a
/// scoring panic is a recordable fault, not a torn connection.
fn score_full(entry: &ModelEntry, mut rows: Vec<Vec<u32>>) -> Result<Vec<Prediction>, ScoreFault> {
    // The failpoint lives *inside* the unwind guard so its panic mode
    // exercises the same recovery path as a real scoring panic.
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<Vec<Prediction>, String> {
            hamlet_chaos::fail_at!(MODEL_SCORE_FAILPOINT).map_err(|e| e.to_string())?;
            Ok(if rows.len() == 1 && !entry.batcher.window().is_zero() {
                counter_add!("hamlet_serve_batched_rows_total", 1);
                let row = rows.pop().unwrap_or_default();
                vec![entry.batcher.predict_one(&entry.scorer, row)]
            } else {
                entry.scorer.predict_coded_rows(&rows)
            })
        },
    ));
    match attempt {
        Ok(Ok(preds)) => Ok(preds),
        Ok(Err(message)) => Err(ScoreFault::Io(message)),
        Err(payload) => Err(ScoreFault::Panic(payload)),
    }
}

/// The degraded terminal of the fallback chain: every row answered from
/// the prior-only surrogate, marked degraded.
fn surrogate_response(entry: &ModelEntry, n_rows: usize) -> (u16, &'static str, String, bool) {
    counter_add!("hamlet_serve_degraded_total", 1);
    let preds = vec![entry.scorer.surrogate_prediction(); n_rows];
    (200, "OK", render_predictions_marked(&preds, true), true)
}

/// Scores one `/predict` body against an entry, micro-batching lone
/// rows when a window is configured.
///
/// With `fallback` the answer walks the chain *full → surrogate*:
/// degraded-build features in named rows are ignored (not refused), an
/// open circuit breaker answers from the surrogate immediately, and a
/// scoring fault records into the breaker and falls back. Without
/// `fallback`, degraded features are refused with evidence (422) and a
/// scoring panic resumes its unwind — the pre-fallback behavior,
/// bit-for-bit.
///
/// The returned bool marks a degraded answer (`"degraded": true` body
/// member + `X-Hamlet-Degraded` header at the write site).
fn predict_body_for(
    entry: &ModelEntry,
    req: &Request,
    fallback: bool,
) -> (u16, &'static str, String, bool) {
    let doc = match Json::parse(&String::from_utf8_lossy(&req.body)) {
        Ok(doc) => doc,
        Err(e) => {
            return (
                400,
                "Bad Request",
                error_body("bad_json", format!("request body: {e}")),
                false,
            )
        }
    };
    match entry.scorer.decode_body_degraded(&doc, fallback) {
        Err(e) => {
            let status = e.http_status();
            let reason = if status == 400 {
                "Bad Request"
            } else {
                "Unprocessable Entity"
            };
            (status, reason, e.to_json().to_string(), false)
        }
        Ok((rows, rows_degraded)) => {
            let n_rows = rows.len();
            if !entry.breaker.admit_full() {
                // Open breaker, not a probe turn: straight to the
                // surrogate without touching the faulting score path.
                return surrogate_response(entry, n_rows);
            }
            match score_full(entry, rows) {
                Ok(preds) => {
                    entry.breaker.record_success();
                    if rows_degraded {
                        counter_add!("hamlet_serve_degraded_total", 1);
                    }
                    (
                        200,
                        "OK",
                        render_predictions_marked(&preds, rows_degraded),
                        rows_degraded,
                    )
                }
                Err(fault) => {
                    counter_add!("hamlet_serve_score_faults_total", 1);
                    if entry.breaker.record_fault() {
                        hamlet_obs::record_warning(format!(
                            "circuit breaker opened for model '{}': repeated scoring \
                             faults (latest: {})",
                            entry.id,
                            fault.text()
                        ));
                    }
                    if fallback {
                        hamlet_obs::record_warning(format!(
                            "scoring fault on model '{}' absorbed by the surrogate \
                             fallback: {}",
                            entry.id,
                            fault.text()
                        ));
                        return surrogate_response(entry, n_rows);
                    }
                    match fault {
                        // Legacy semantics without --fallback: the panic
                        // travels to the worker's connection guard.
                        ScoreFault::Panic(payload) => std::panic::resume_unwind(payload),
                        ScoreFault::Io(m) => (
                            500,
                            "Internal Server Error",
                            error_body("scoring_fault", m),
                            false,
                        ),
                    }
                }
            }
        }
    }
}

/// Splits `/models/<id>` and `/models/<id>/<tail>` paths.
fn model_route(path: &str) -> Option<(&str, &str)> {
    let rest = path.strip_prefix("/models/")?;
    match rest.split_once('/') {
        Some((id, tail)) if !id.is_empty() => Some((id, tail)),
        Some(_) => None,
        None if !rest.is_empty() => Some((rest, "")),
        None => None,
    }
}

/// Dispatches one request and returns the response status (for error
/// accounting). `keep_open` is the connection disposition the response
/// must advertise. Response-write failures are logged into the journal
/// and counted, never fatal to the worker.
fn route(inner: &Inner, stream: &mut TcpStream, req: &Request, keep_open: bool) -> u16 {
    let method = req.method.as_str();
    let path = req.path.as_str();
    let mut degraded = false;

    // Per-model routes: /models, /models/<id>, /models/<id>/<endpoint>.
    let resolved: Option<(u16, &'static str, &'static str, String)> = if path == "/models" {
        Some(if method == "GET" {
            let models = Json::Arr(
                inner
                    .registry
                    .ids()
                    .into_iter()
                    .map(|(id, generation)| {
                        obj(vec![
                            ("id", Json::Str(id)),
                            ("generation", Json::Num(generation as f64)),
                        ])
                    })
                    .collect(),
            );
            let default = inner
                .registry
                .default_entry()
                .map(|e| Json::Str(e.id.clone()))
                .unwrap_or(Json::Null);
            let body = obj(vec![
                ("default", default),
                (
                    "registry_generation",
                    Json::Num(inner.registry.generation() as f64),
                ),
                ("models", models),
            ])
            .to_string();
            (200, "OK", "application/json", body)
        } else {
            method_not_allowed(req)
        })
    } else if let Some((id, tail)) = model_route(path) {
        match inner.registry.get(id) {
            None => Some((
                404,
                "Not Found",
                "application/json",
                error_body(
                    "unknown_model",
                    format!("no model '{id}'; GET /models lists the registry"),
                ),
            )),
            Some(entry) => match (method, tail) {
                ("POST", "predict") => {
                    let (status, reason, body, deg) = predict_body_for(&entry, req, inner.fallback);
                    degraded = deg;
                    Some((status, reason, "application/json", body))
                }
                ("GET", "healthz") | ("GET", "") => {
                    Some((200, "OK", "application/json", health_body(&entry)))
                }
                (_, "predict") | (_, "healthz") | (_, "") => Some(method_not_allowed(req)),
                _ => Some((
                    404,
                    "Not Found",
                    "application/json",
                    error_body(
                        "not_found",
                        format!(
                            "no route for '{path}'; per-model endpoints are \
                             /models/{id}/predict and /models/{id}/healthz"
                        ),
                    ),
                )),
            },
        }
    } else {
        None
    };

    let (status, reason, content_type, body) = resolved.unwrap_or_else(|| match (method, path) {
        ("GET", "/healthz") => match inner.registry.default_entry() {
            Some(entry) => (200, "OK", "application/json", health_body(&entry)),
            None => (
                503,
                "Service Unavailable",
                "application/json",
                error_body("empty_registry", "no models are registered".into()),
            ),
        },
        ("GET", "/metrics") => (
            200,
            "OK",
            "text/plain; version=0.0.4",
            hamlet_obs::render_metrics(),
        ),
        ("POST", "/predict") => match inner.registry.default_entry() {
            Some(entry) => {
                let (status, reason, body, deg) = predict_body_for(&entry, req, inner.fallback);
                degraded = deg;
                (status, reason, "application/json", body)
            }
            None => (
                503,
                "Service Unavailable",
                "application/json",
                error_body("empty_registry", "no models are registered".into()),
            ),
        },
        ("POST", "/reload") => match apply_reload(inner) {
            Ok(report) => {
                let body = obj(vec![
                    ("status", Json::Str("reloaded".into())),
                    ("generation", Json::Num(report.generation as f64)),
                    (
                        "reloaded",
                        Json::Arr(report.reloaded.into_iter().map(Json::Str).collect()),
                    ),
                    (
                        "kept",
                        Json::Arr(report.kept.into_iter().map(Json::Str).collect()),
                    ),
                ])
                .to_string();
                (200, "OK", "application/json", body)
            }
            Err(msg) => (
                500,
                "Internal Server Error",
                "application/json",
                error_body("reload_failed", msg),
            ),
        },
        (_, "/predict") | (_, "/healthz") | (_, "/metrics") | (_, "/reload") => {
            method_not_allowed(req)
        }
        _ => (
            404,
            "Not Found",
            "application/json",
            error_body(
                "not_found",
                format!(
                    "no route for '{}'; try /healthz, /metrics, /models, POST /predict, \
                     or POST /reload",
                    req.path
                ),
            ),
        ),
    });
    let extra_headers: &[(&str, &str)] = if degraded {
        &[("X-Hamlet-Degraded", "true")]
    } else {
        &[]
    };
    if let Err(e) = write_response_with(
        stream,
        status,
        reason,
        content_type,
        &body,
        keep_open,
        extra_headers,
    ) {
        // The response could not be delivered (peer gone, or the
        // serve.response_write failpoint fired). The request itself was
        // handled; record the delivery failure without tearing down the
        // worker.
        counter_add!("hamlet_serve_write_failures_total", 1);
        hamlet_obs::record_warning(format!("response write on {} failed: {e}", req.path));
    }
    status
}

fn method_not_allowed(req: &Request) -> (u16, &'static str, &'static str, String) {
    (
        405,
        "Method Not Allowed",
        "application/json",
        error_body(
            "method_not_allowed",
            format!("{} is not supported on {}", req.method, req.path),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{FeatureSchema, FkColdStart, JoinDecision, ModelArtifact, ServableModel};
    use crate::http::read_request;
    use hamlet_core::ExecStrategy;
    use hamlet_ml::NaiveBayesModel;
    use std::io::{Read, Write};

    fn artifact_with_labels(yes: &str, no: &str) -> ModelArtifact {
        let model = NaiveBayesModel::from_parts(
            vec![0, 1],
            2,
            vec![(0.5f64).ln(), (0.5f64).ln()],
            vec![
                vec![0.9f64.ln(), 0.1f64.ln(), 0.1f64.ln(), 0.9f64.ln()],
                vec![
                    0.5f64.ln(),
                    0.3f64.ln(),
                    0.2f64.ln(),
                    0.2f64.ln(),
                    0.3f64.ln(),
                    0.5f64.ln(),
                ],
            ],
            vec![2, 3],
        );
        ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: Some(vec![no.into(), yes.into()]),
            features: vec![
                FeatureSchema {
                    name: "color".into(),
                    domain_size: 2,
                    labels: Some(vec!["red".into(), "blue".into()]),
                    fk: None,
                },
                FeatureSchema {
                    name: "fk".into(),
                    domain_size: 3,
                    labels: None,
                    fk: Some(FkColdStart {
                        table: "R".into(),
                        original_domain: 2,
                        others_code: 2,
                    }),
                },
            ],
            decisions: vec![JoinDecision {
                table: "R".into(),
                fk: "fk".into(),
                strategy: ExecStrategy::AvoidJoin,
                tuple_ratio: 40.0,
                ror: Some(1.1),
                avoid: true,
                foreign_features: vec!["country".into()],
                degraded: false,
            }],
            model: ServableModel::NaiveBayes(model),
        }
    }

    fn scorer() -> Scorer {
        Scorer::new(artifact_with_labels("yes", "no"))
    }

    fn test_config(threads: usize, queue: usize) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            queue_capacity: queue,
            ..ServerConfig::default()
        }
    }

    fn start_test_server(threads: usize, queue: usize) -> ServerHandle {
        start(scorer(), test_config(threads, queue)).unwrap()
    }

    /// One-shot HTTP client: sends raw bytes, reads the full response.
    /// Callers building requests by hand should include
    /// `Connection: close` (as [`post`] and [`get`] do) so the server
    /// does not hold the socket open for the keep-alive idle deadline.
    fn roundtrip(port: u16, raw: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        // Read until EOF, tolerating a late RST after the response bytes
        // (the 503 shed path closes without reading the whole request).
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn post(port: u16, path: &str, body: &str) -> String {
        roundtrip(
            port,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn get(port: u16, path: &str) -> String {
        roundtrip(
            port,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    /// Reads exactly one framed response off a keep-alive connection
    /// (head until `\r\n\r\n`, then `Content-Length` body).
    fn read_one_response(s: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let cl: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                if name.eq_ignore_ascii_case("content-length") {
                    value.trim().parse().ok()
                } else {
                    None
                }
            })
            .unwrap_or(0);
        let total = head_end + 4 + cl;
        while buf.len() < total {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        assert_eq!(buf.len(), total, "over-read into the next response");
        String::from_utf8_lossy(&buf).into_owned()
    }

    #[test]
    fn healthz_metrics_predict_and_drain() {
        let h = start_test_server(2, 16);
        let port = h.port();

        let health = get(port, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"family\":\"naive_bayes\""), "{health}");
        assert!(
            health.contains("\"features\":[\"color\",\"fk\"]"),
            "{health}"
        );
        assert!(health.contains("\"model_id\":\"default\""), "{health}");

        let pred = post(
            port,
            "/predict",
            r#"{"rows":[{"color":"blue","fk":1},[0,9]]}"#,
        );
        assert!(pred.starts_with("HTTP/1.1 200"), "{pred}");
        assert!(pred.contains("\"predictions\":["), "{pred}");
        assert!(pred.contains("\"label\":\"yes\""), "{pred}");

        // Typed 422 for an avoided foreign feature.
        let refused = post(
            port,
            "/predict",
            r#"[{"color":"red","fk":0,"country":"US"}]"#,
        );
        assert!(refused.starts_with("HTTP/1.1 422"), "{refused}");
        assert!(refused.contains("avoided_feature"), "{refused}");

        // Typed 400 for malformed JSON.
        let bad = post(port, "/predict", "{nope");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        assert!(bad.contains("bad_json"), "{bad}");

        // 404 and 405.
        assert!(get(port, "/nope").starts_with("HTTP/1.1 404"));
        assert!(get(port, "/predict").starts_with("HTTP/1.1 405"));

        // Metrics expose the request counters.
        let metrics = get(port, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("hamlet_serve_requests_total"), "{metrics}");

        h.stop();
        let stats = h.join().unwrap();
        assert!(stats.requests >= 7, "{stats:?}");
        assert!(stats.errors >= 3, "{stats:?}");
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let h = start_test_server(2, 16);
        let port = h.port();
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        for i in 0..5 {
            s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            let resp = read_one_response(&mut s);
            assert!(resp.starts_with("HTTP/1.1 200"), "request {i}: {resp}");
            assert!(resp.contains("Connection: keep-alive"), "{resp}");
        }
        // `Connection: close` ends the connection after the response.
        s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let last = read_one_response(&mut s);
        assert!(last.contains("Connection: close"), "{last}");
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "bytes after close: {rest:?}");

        h.stop();
        let stats = h.join().unwrap();
        assert_eq!(stats.requests, 6, "{stats:?}");
    }

    #[test]
    fn pipelined_requests_are_all_answered_in_order() {
        let h = start_test_server(1, 8);
        let port = h.port();
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        let body = "[[1,0]]";
        let raw = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}\
             GET /healthz HTTP/1.1\r\n\r\n\
             GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
            body.len()
        );
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert_eq!(out.matches("HTTP/1.1 200").count(), 3, "{out}");
        // In-order responses: predictions, then health, then metrics.
        let p = out.find("\"predictions\"").expect("predict response");
        let hz = out.find("\"model_id\"").expect("healthz response");
        let m = out
            .find("hamlet_serve_requests_total")
            .expect("metrics response");
        assert!(p < hz && hz < m, "responses out of order: {out}");

        h.stop();
        assert_eq!(h.join().unwrap().requests, 3);
    }

    #[test]
    fn request_cap_closes_the_connection_politely() {
        let h = start(
            scorer(),
            ServerConfig {
                max_requests_per_conn: 2,
                ..test_config(1, 8)
            },
        )
        .unwrap();
        let port = h.port();
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let first = read_one_response(&mut s);
        assert!(first.contains("Connection: keep-alive"), "{first}");
        s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let second = read_one_response(&mut s);
        assert!(second.contains("Connection: close"), "{second}");
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server must close at the cap");
        // Fresh connections are unaffected by another connection's cap.
        assert!(get(port, "/healthz").starts_with("HTTP/1.1 200"));
        h.stop();
        h.join().unwrap();
    }

    #[test]
    fn model_routes_resolve_and_unknown_ids_are_404() {
        let h = start_test_server(1, 8);
        let port = h.port();

        let list = get(port, "/models");
        assert!(list.starts_with("HTTP/1.1 200"), "{list}");
        assert!(list.contains("\"default\":\"default\""), "{list}");
        assert!(list.contains("\"models\":["), "{list}");

        let hz = get(port, "/models/default/healthz");
        assert!(hz.starts_with("HTTP/1.1 200"), "{hz}");
        assert!(hz.contains("\"model_id\":\"default\""), "{hz}");

        let pred = post(port, "/models/default/predict", "[[1,0]]");
        assert!(pred.starts_with("HTTP/1.1 200"), "{pred}");
        assert!(pred.contains("\"predictions\":["), "{pred}");

        let missing = get(port, "/models/nope/healthz");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        assert!(missing.contains("unknown_model"), "{missing}");

        let bogus = get(port, "/models/default/bogus");
        assert!(bogus.starts_with("HTTP/1.1 404"), "{bogus}");

        // In-memory registry: reload succeeds trivially, keeping the
        // entry and bumping the generation.
        let reload = post(port, "/reload", "");
        assert!(reload.starts_with("HTTP/1.1 200"), "{reload}");
        assert!(reload.contains("\"kept\":[\"default\"]"), "{reload}");

        h.stop();
        let stats = h.join().unwrap();
        assert_eq!(stats.reloads, 1, "{stats:?}");
    }

    #[test]
    fn micro_batched_single_rows_match_unbatched_bit_for_bit() {
        let batched = start(
            scorer(),
            ServerConfig {
                batch_window: Duration::from_millis(2),
                ..test_config(4, 32)
            },
        )
        .unwrap();
        let plain = start_test_server(2, 32);
        let (bp, pp) = (batched.port(), plain.port());

        let bodies: Vec<String> = (0..8).map(|i| format!("[[{},{}]]", i % 2, i % 3)).collect();
        // Fire the batched requests concurrently so the window coalesces
        // them, then compare each against the unbatched server.
        let handles: Vec<_> = bodies
            .iter()
            .map(|b| {
                let b = b.clone();
                std::thread::spawn(move || (b.clone(), post(bp, "/predict", &b)))
            })
            .collect();
        for h in handles {
            let (body, batched_resp) = h.join().unwrap();
            let plain_resp = post(pp, "/predict", &body);
            let tail = |r: &str| r.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
            assert_eq!(
                tail(&batched_resp),
                tail(&plain_resp),
                "bit-for-bit drift on {body}"
            );
        }
        batched.stop();
        plain.stop();
        batched.join().unwrap();
        plain.join().unwrap();
    }

    #[test]
    fn hot_swap_under_concurrent_load_drops_nothing() {
        let registry = Arc::new(Registry::single(
            Scorer::new(artifact_with_labels("yes", "no")),
            Duration::ZERO,
        ));
        let h = start_with_registry(Arc::clone(&registry), test_config(4, 64)).unwrap();
        let port = h.port();
        let weak = Arc::downgrade(&registry.get("default").unwrap());

        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut served = 0u32;
                    while !stop.load(Ordering::SeqCst) {
                        let resp = post(port, "/predict", "[[1,0]]");
                        // Zero drops: every request gets a full 200, and
                        // the label proves it was scored by a real entry
                        // (old or new), never a torn one.
                        assert!(resp.starts_with("HTTP/1.1 200"), "dropped: {resp}");
                        assert!(
                            resp.contains("\"label\":\"yes\"")
                                || resp.contains("\"label\":\"yep\""),
                            "mis-routed: {resp}"
                        );
                        served += 1;
                    }
                    served
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(100));
        registry.swap(
            "default",
            Scorer::new(artifact_with_labels("yep", "nope")),
            None,
        );
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::SeqCst);
        let total: u32 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(total > 0, "load generator produced no requests");

        h.stop();
        h.join().unwrap();
        // Old artifact: drained by in-flight requests, then released.
        assert!(
            weak.upgrade().is_none(),
            "old entry must be freed once the last request drops it"
        );
        // New model is what the registry now serves.
        let a = registry.get("default").unwrap();
        assert_eq!(a.scorer.artifact().class_labels.as_ref().unwrap()[1], "yep");
    }

    #[test]
    fn deeply_nested_predict_body_is_400_and_the_worker_survives() {
        // Without the parser depth cap this body would overflow the
        // worker's stack — a SIGSEGV/abort killing the whole process,
        // not a catchable panic. It must instead be a typed 400.
        let h = start_test_server(1, 8);
        let port = h.port();
        let bomb = "[".repeat(300_000);
        let resp = post(port, "/predict", &bomb);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("bad_json"), "{resp}");
        assert!(resp.contains("nesting exceeds"), "{resp}");
        // The single worker is still alive and serving.
        let ok = get(port, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        h.stop();
        let stats = h.join().unwrap();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn saturated_queue_sheds_load_with_503() {
        // No workers draining the queue fast: one worker wedged by slow
        // clients, capacity 1. A short idle deadline keeps the post-test
        // drain quick without racing the shed assertion below.
        let h = start(
            scorer(),
            ServerConfig {
                idle_timeout: Duration::from_millis(1500),
                ..test_config(1, 1)
            },
        )
        .unwrap();
        let port = h.port();

        // Wedge the worker with an idle connection (it waits out the
        // idle deadline), then park a second idle connection in the
        // queue so the backlog sits at capacity.
        let _busy = TcpStream::connect(("127.0.0.1", port)).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let _parked = TcpStream::connect(("127.0.0.1", port)).unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // The next request must be shed with 503 by the accept thread —
        // and the refusal must be readable even though the client sent a
        // sizable body (the drain-before-refuse fix).
        let resp = post(port, "/healthz", &"x".repeat(64 * 1024));
        assert!(resp.starts_with("HTTP/1.1 503"), "not shed: {resp}");
        assert!(resp.contains("overloaded"), "{resp}");

        h.stop();
        let stats = h.join().unwrap();
        assert!(stats.rejected >= 1, "{stats:?}");
    }

    #[test]
    fn accepted_sockets_are_reset_to_blocking() {
        // On BSD/macOS accepted sockets inherit the listener's
        // O_NONBLOCK; simulate that inheritance and verify the accept
        // path's reset makes a deadline read wait for data instead of
        // misreading an instantly-empty socket as a stall (the spurious
        // 408 bug).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut accepted = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                Err(e) => panic!("accept: {e}"),
            }
        };
        accepted.set_nonblocking(true).unwrap();
        prepare_accepted(&accepted);

        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            client
                .write_all(b"GET /late HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            client
        });
        let req = read_request(&mut accepted, Duration::from_secs(2)).unwrap();
        assert_eq!(req.path, "/late");
        drop(writer.join().unwrap());
    }

    #[test]
    fn accept_thread_panic_is_surfaced_by_join() {
        let _g = hamlet_chaos::failpoint::serial();
        let h = start_test_server(1, 8);
        let port = h.port();
        hamlet_chaos::failpoint::set_failpoints(&format!("{ACCEPT_FAILPOINT}=panic")).unwrap();
        // One accepted connection trips the failpoint and kills the
        // accept thread.
        let _ = TcpStream::connect(("127.0.0.1", port));
        std::thread::sleep(Duration::from_millis(150));
        hamlet_chaos::failpoint::clear_failpoints();
        let err = h.join().unwrap_err();
        assert!(err.contains("accept thread panicked"), "{err}");
    }

    #[test]
    fn external_stop_signal_drains() {
        static STOP: AtomicBool = AtomicBool::new(false);
        STOP.store(false, Ordering::SeqCst);
        let h = start(
            scorer(),
            ServerConfig {
                stop_signal: Some(&STOP),
                ..test_config(1, 4)
            },
        )
        .unwrap();
        let port = h.port();
        assert!(get(port, "/healthz").starts_with("HTTP/1.1 200"));
        STOP.store(true, Ordering::SeqCst);
        let stats = h.run_until_stopped().unwrap();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn external_reload_signal_triggers_a_hot_swap() {
        static STOP: AtomicBool = AtomicBool::new(false);
        static RELOAD: AtomicBool = AtomicBool::new(false);
        STOP.store(false, Ordering::SeqCst);
        RELOAD.store(false, Ordering::SeqCst);
        let h = start(
            scorer(),
            ServerConfig {
                stop_signal: Some(&STOP),
                reload_signal: Some(&RELOAD),
                ..test_config(1, 4)
            },
        )
        .unwrap();
        let port = h.port();
        RELOAD.store(true, Ordering::SeqCst);
        // The accept loop polls the flag between accepts (10ms naps).
        let deadline = Instant::now() + Duration::from_secs(2);
        while RELOAD.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!RELOAD.load(Ordering::SeqCst), "reload flag never consumed");
        let list = get(port, "/models");
        assert!(list.contains("\"registry_generation\":2"), "{list}");
        STOP.store(true, Ordering::SeqCst);
        let stats = h.run_until_stopped().unwrap();
        assert_eq!(stats.reloads, 1, "{stats:?}");
    }

    #[test]
    fn response_write_failpoint_does_not_kill_the_worker() {
        let _g = hamlet_chaos::failpoint::serial();
        let h = start_test_server(1, 8);
        let port = h.port();
        hamlet_chaos::failpoint::set_failpoints("serve.response_write=io").unwrap();
        // The response write fails server-side; the client sees a closed
        // connection with no bytes. The worker must survive.
        let resp = get(port, "/healthz");
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(resp.is_empty(), "unexpected bytes: {resp}");
        // Worker still alive and serving.
        let ok = get(port, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        h.stop();
        let stats = h.join().unwrap();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn scoring_fault_with_fallback_serves_the_surrogate_marked_degraded() {
        let _g = hamlet_chaos::failpoint::serial();
        let h = start(
            scorer(),
            ServerConfig {
                fallback: true,
                ..test_config(1, 8)
            },
        )
        .unwrap();
        let port = h.port();

        // Fault the first scoring attempt only: 2xx from the surrogate,
        // marked degraded in both the body and the response head.
        hamlet_chaos::failpoint::set_failpoints("serve.model_score=io@1").unwrap();
        let resp = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("X-Hamlet-Degraded: true"), "{resp}");
        assert!(resp.contains("\"degraded\":true"), "{resp}");
        // The surrogate is the class prior — uniform here, so class 0.
        assert!(resp.contains("\"class\":0"), "{resp}");

        // With the fault cleared, full scoring resumes unmarked.
        let ok = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(!ok.contains("X-Hamlet-Degraded"), "{ok}");
        assert!(!ok.contains("degraded"), "{ok}");
        assert!(ok.contains("\"label\":\"yes\""), "{ok}");

        h.stop();
        h.join().unwrap();
    }

    #[test]
    fn scoring_panic_with_fallback_answers_2xx_and_trips_the_breaker() {
        let _g = hamlet_chaos::failpoint::serial();
        std::env::set_var("HAMLET_BREAKER_THRESHOLD", "2");
        std::env::set_var("HAMLET_BREAKER_PROBE", "1");
        let h = start(
            scorer(),
            ServerConfig {
                fallback: true,
                ..test_config(1, 8)
            },
        )
        .unwrap();
        std::env::remove_var("HAMLET_BREAKER_THRESHOLD");
        std::env::remove_var("HAMLET_BREAKER_PROBE");
        let port = h.port();

        // Two consecutive panicking scores: both absorbed as 2xx
        // surrogate answers, and the second trips the breaker.
        hamlet_chaos::failpoint::set_failpoints("serve.model_score=panic").unwrap();
        for _ in 0..2 {
            let resp = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("\"degraded\":true"), "{resp}");
        }
        hamlet_chaos::failpoint::clear_failpoints();

        // Breaker open with probe cadence 1: the next request probes,
        // scores cleanly, and closes the breaker — full scoring is back.
        let probe = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        assert!(probe.starts_with("HTTP/1.1 200"), "{probe}");
        let after = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        assert!(after.starts_with("HTTP/1.1 200"), "{after}");
        assert!(!after.contains("degraded"), "{after}");
        assert!(after.contains("\"label\":\"yes\""), "{after}");

        h.stop();
        h.join().unwrap();
    }

    #[test]
    fn scoring_panic_without_fallback_keeps_legacy_connection_drop() {
        let _g = hamlet_chaos::failpoint::serial();
        let h = start_test_server(1, 8);
        let port = h.port();
        hamlet_chaos::failpoint::set_failpoints("serve.model_score=panic@1").unwrap();
        // Legacy semantics: the panic reaches the worker's connection
        // guard, so the client sees a dropped connection, not a 2xx.
        let dropped = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(dropped.is_empty(), "unexpected bytes: {dropped}");
        // The worker survives and serves the next request normally.
        let ok = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(!ok.contains("degraded"), "{ok}");
        h.stop();
        h.join().unwrap();
    }

    #[test]
    fn corrupt_artifact_reload_keeps_the_old_generation_serving() {
        let dir = std::env::temp_dir().join(format!("hamlet_srv_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.model");
        crate::artifact::save(&artifact_with_labels("yes", "no"), &path).unwrap();
        let registry = Arc::new(
            crate::registry::Registry::from_sources(
                &[("default".into(), path.clone())],
                Duration::ZERO,
            )
            .unwrap(),
        );
        let h = start_with_registry(Arc::clone(&registry), test_config(1, 8)).unwrap();
        let port = h.port();
        let before = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        assert!(before.starts_with("HTTP/1.1 200"), "{before}");

        // Bit-flip the artifact on disk, then hot-reload over HTTP: the
        // reload must fail typed and the old generation keep serving.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let reload = post(port, "/reload", "");
        assert!(reload.starts_with("HTTP/1.1 500"), "{reload}");
        assert!(reload.contains("reload_failed"), "{reload}");

        let list = get(port, "/models");
        assert!(list.contains("\"registry_generation\":1"), "{list}");
        let after = post(port, "/predict", r#"[{"color":"blue","fk":1}]"#);
        assert!(after.starts_with("HTTP/1.1 200"), "{after}");
        assert_eq!(
            before.lines().last(),
            after.lines().last(),
            "old generation must answer identically after the failed reload"
        );

        h.stop();
        h.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_threads_flag_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn resolve_batch_window_flag_wins() {
        assert_eq!(resolve_batch_window(Some(250)), Duration::from_micros(250));
        assert_eq!(resolve_batch_window(Some(0)), Duration::ZERO);
    }
}
