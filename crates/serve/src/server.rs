//! The inference server: a bounded worker pool over `std::net`, with
//! backpressure, graceful drain, and full observability.
//!
//! Design points:
//!
//! * **Bounded everything.** `threads` workers pull connections from a
//!   queue of at most `queue_capacity`; when the queue is full the
//!   accept loop answers `503 Service Unavailable` immediately instead
//!   of letting latency grow without bound (load-shedding
//!   backpressure).
//! * **Graceful drain.** [`ServerHandle::stop`] (or an external stop
//!   flag, typically flipped by a SIGTERM/ctrl-c handler) stops the
//!   accept loop, lets workers finish the queued requests, then joins
//!   them and reports final [`ServerStats`].
//! * **Observability.** Every request runs under a
//!   `serve.request` span and bumps
//!   `hamlet_serve_requests_total` / `hamlet_serve_errors_total` /
//!   `hamlet_serve_rejected_total` counters plus the
//!   `hamlet_serve_request_micros` histogram — all visible at
//!   `/metrics` in Prometheus text format.
//!
//! Routes: `GET /healthz`, `GET /metrics`, `POST /predict`.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use hamlet_obs::json::{obj, Json};
use hamlet_obs::{counter_add, histogram_observe, span};

use crate::http::{read_request, write_response, Request, READ_DEADLINE};
use crate::score::Scorer;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 asks the OS for a
    /// free port (the tests do this); [`ServerHandle::port`] reports the
    /// bound port.
    pub addr: String,
    /// Worker threads handling requests.
    pub threads: usize,
    /// Maximum accepted-but-unhandled connections before the server
    /// starts shedding load with 503s.
    pub queue_capacity: usize,
    /// Optional external stop flag (the CLI points this at the static
    /// its SIGTERM handler flips). Checked alongside the handle's own
    /// stop flag.
    pub stop_signal: Option<&'static AtomicBool>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: resolve_threads(None),
            queue_capacity: 64,
            stop_signal: None,
        }
    }
}

/// Resolves the worker count: an explicit flag wins, then the
/// `HAMLET_THREADS` convention, then available parallelism. An invalid
/// `HAMLET_THREADS` falls back loudly (warning in the run journal), the
/// same policy as the experiment runner.
pub fn resolve_threads(flag: Option<usize>) -> usize {
    if let Some(t) = flag {
        return t.max(1);
    }
    let default_threads = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    hamlet_obs::env::var_where("HAMLET_THREADS", "a positive integer", |&t: &usize| t > 0)
        .unwrap_or_else(|e| {
            hamlet_obs::record_warning(format!("{e}; using available parallelism"));
            None
        })
        .unwrap_or_else(default_threads)
}

/// Final request accounting, returned when the server drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests handled to completion (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Connections shed with 503 because the queue was full.
    pub rejected: u64,
}

struct Inner {
    scorer: Scorer,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    draining: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
}

/// Lock helper: a poisoned queue mutex only means another worker
/// panicked mid-push/pop; the queue itself is still structurally sound,
/// so serving beats aborting.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::stop`] then [`ServerHandle::join`] (or
/// [`ServerHandle::run_until_stopped`]) for a clean drain.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    port: u16,
    accept: Option<std::thread::JoinHandle<ServerStats>>,
}

impl ServerHandle {
    /// The bound port (useful with `addr: "127.0.0.1:0"`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Requests the server stop accepting and drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete and returns final stats.
    pub fn join(mut self) -> ServerStats {
        match self.accept.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => ServerStats::default(),
        }
    }

    /// Blocks until [`ServerHandle::stop`] is called (or the external
    /// stop signal fires), then drains and returns final stats.
    pub fn run_until_stopped(self) -> ServerStats {
        self.join()
    }
}

/// Starts the server: binds, spawns the accept loop and `threads`
/// workers, and returns immediately.
pub fn start(scorer: Scorer, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let port = listener.local_addr()?.port();

    let inner = Arc::new(Inner {
        scorer,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        draining: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let threads = config.threads.max(1);
    let queue_capacity = config.queue_capacity.max(1);

    let mut workers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let inner = Arc::clone(&inner);
        workers.push(std::thread::spawn(move || worker_loop(&inner)));
    }

    let accept_inner = Arc::clone(&inner);
    let accept_stop = Arc::clone(&stop);
    let stop_signal = config.stop_signal;
    let accept = std::thread::spawn(move || {
        accept_loop(
            &listener,
            &accept_inner,
            &accept_stop,
            stop_signal,
            queue_capacity,
        );
        // Drain: stop handing out work, wake every worker, join them.
        accept_inner.draining.store(true, Ordering::SeqCst);
        accept_inner.available.notify_all();
        for w in workers {
            let _ = w.join();
        }
        ServerStats {
            requests: accept_inner.requests.load(Ordering::SeqCst),
            errors: accept_inner.errors.load(Ordering::SeqCst),
            rejected: accept_inner.rejected.load(Ordering::SeqCst),
        }
    });

    Ok(ServerHandle {
        stop,
        port,
        accept: Some(accept),
    })
}

fn should_stop(stop: &AtomicBool, external: Option<&'static AtomicBool>) -> bool {
    stop.load(Ordering::SeqCst) || external.is_some_and(|s| s.load(Ordering::SeqCst))
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Inner,
    stop: &AtomicBool,
    external: Option<&'static AtomicBool>,
    queue_capacity: usize,
) {
    while !should_stop(stop, external) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let backlog = lock(&inner.queue).len();
                if backlog >= queue_capacity {
                    // Load shedding: answer 503 from the accept thread so
                    // a saturated pool never queues unbounded latency.
                    inner.rejected.fetch_add(1, Ordering::SeqCst);
                    counter_add!("hamlet_serve_rejected_total", 1);
                    // Consume whatever request bytes already arrived so
                    // closing the socket does not RST the response away
                    // before the client reads it.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    let mut scratch = [0u8; 4096];
                    let _ = std::io::Read::read(&mut stream, &mut scratch);
                    let body = obj(vec![(
                        "error",
                        obj(vec![
                            ("kind", Json::Str("overloaded".into())),
                            (
                                "message",
                                Json::Str(format!(
                                    "request queue is full ({queue_capacity}); retry later"
                                )),
                            ),
                        ]),
                    )])
                    .to_string();
                    let _ = write_response(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        "application/json",
                        &body,
                    );
                    continue;
                }
                lock(&inner.queue).push_back(stream);
                inner.available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Nonblocking accept: nap briefly so the stop flag is
                // observed within ~10ms of a signal.
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = lock(&inner.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = inner
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                queue = q;
            }
        };
        match stream {
            Some(mut s) => handle_connection(inner, &mut s),
            None => return,
        }
    }
}

fn handle_connection(inner: &Inner, stream: &mut TcpStream) {
    // A client that stops sending (or trickles bytes) mid-request must
    // not pin a worker: read_request enforces a total deadline.
    let started = Instant::now();
    let request = read_request(stream, READ_DEADLINE);
    let (path, method) = match &request {
        Ok(r) => (r.path.clone(), r.method.clone()),
        Err(_) => ("<unreadable>".to_string(), "-".to_string()),
    };
    let _span = span!("serve.request", path = path, method = method);

    let status = match request {
        Ok(req) => route(inner, stream, &req),
        Err(e) => {
            let (status, reason) = e.status();
            let body = obj(vec![(
                "error",
                obj(vec![
                    ("kind", Json::Str("bad_request".into())),
                    ("message", Json::Str(e.to_string())),
                ]),
            )])
            .to_string();
            let _ = write_response(stream, status, reason, "application/json", &body);
            status
        }
    };

    inner.requests.fetch_add(1, Ordering::SeqCst);
    counter_add!("hamlet_serve_requests_total", 1);
    if status >= 400 {
        inner.errors.fetch_add(1, Ordering::SeqCst);
        counter_add!("hamlet_serve_errors_total", 1);
    }
    histogram_observe!(
        "hamlet_serve_request_micros",
        started.elapsed().as_micros().min(u64::MAX as u128) as u64
    );
}

/// Dispatches one request and returns the response status (for error
/// accounting). Response-write failures are counted as errors by the
/// caller via the returned status only when the route itself failed;
/// a severed socket mid-write is logged into the journal.
fn route(inner: &Inner, stream: &mut TcpStream, req: &Request) -> u16 {
    let (status, reason, content_type, body) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let a = inner.scorer.artifact();
            let body = obj(vec![
                ("status", Json::Str("ok".into())),
                ("dataset", Json::Str(a.dataset.clone())),
                ("family", Json::Str(a.model.family().into())),
                ("n_classes", Json::Num(a.n_classes as f64)),
                (
                    "features",
                    Json::Arr(
                        a.features
                            .iter()
                            .map(|f| Json::Str(f.name.clone()))
                            .collect(),
                    ),
                ),
                (
                    "avoided_joins",
                    Json::Num(a.decisions.iter().filter(|d| d.avoid).count() as f64),
                ),
            ])
            .to_string();
            (200, "OK", "application/json", body)
        }
        ("GET", "/metrics") => (
            200,
            "OK",
            "text/plain; version=0.0.4",
            hamlet_obs::render_metrics(),
        ),
        ("POST", "/predict") => match Json::parse(&String::from_utf8_lossy(&req.body)) {
            Err(e) => {
                let body = obj(vec![(
                    "error",
                    obj(vec![
                        ("kind", Json::Str("bad_json".into())),
                        ("message", Json::Str(format!("request body: {e}"))),
                    ]),
                )])
                .to_string();
                (400, "Bad Request", "application/json", body)
            }
            Ok(doc) => match inner.scorer.predict_body(&doc) {
                Ok(preds) => (
                    200,
                    "OK",
                    "application/json",
                    Scorer::render_predictions(&preds).to_string(),
                ),
                Err(e) => {
                    let status = e.http_status();
                    let reason = if status == 400 {
                        "Bad Request"
                    } else {
                        "Unprocessable Entity"
                    };
                    (status, reason, "application/json", e.to_json().to_string())
                }
            },
        },
        (_, "/predict") | (_, "/healthz") | (_, "/metrics") => {
            let body = obj(vec![(
                "error",
                obj(vec![
                    ("kind", Json::Str("method_not_allowed".into())),
                    (
                        "message",
                        Json::Str(format!("{} is not supported on {}", req.method, req.path)),
                    ),
                ]),
            )])
            .to_string();
            (405, "Method Not Allowed", "application/json", body)
        }
        _ => {
            let body = obj(vec![(
                "error",
                obj(vec![
                    ("kind", Json::Str("not_found".into())),
                    (
                        "message",
                        Json::Str(format!(
                            "no route for '{}'; try /healthz, /metrics, or POST /predict",
                            req.path
                        )),
                    ),
                ]),
            )])
            .to_string();
            (404, "Not Found", "application/json", body)
        }
    };
    if let Err(e) = write_response(stream, status, reason, content_type, &body) {
        // The response could not be delivered (peer gone, or the
        // serve.response_write failpoint fired). The request itself was
        // handled; record the delivery failure without tearing down the
        // worker.
        counter_add!("hamlet_serve_write_failures_total", 1);
        hamlet_obs::record_warning(format!("response write on {} failed: {e}", req.path));
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{FeatureSchema, FkColdStart, JoinDecision, ModelArtifact, ServableModel};
    use hamlet_core::ExecStrategy;
    use hamlet_ml::NaiveBayesModel;
    use std::io::{Read, Write};

    fn scorer() -> Scorer {
        let model = NaiveBayesModel::from_parts(
            vec![0, 1],
            2,
            vec![(0.5f64).ln(), (0.5f64).ln()],
            vec![
                vec![0.9f64.ln(), 0.1f64.ln(), 0.1f64.ln(), 0.9f64.ln()],
                vec![
                    0.5f64.ln(),
                    0.3f64.ln(),
                    0.2f64.ln(),
                    0.2f64.ln(),
                    0.3f64.ln(),
                    0.5f64.ln(),
                ],
            ],
            vec![2, 3],
        );
        Scorer::new(ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: Some(vec!["no".into(), "yes".into()]),
            features: vec![
                FeatureSchema {
                    name: "color".into(),
                    domain_size: 2,
                    labels: Some(vec!["red".into(), "blue".into()]),
                    fk: None,
                },
                FeatureSchema {
                    name: "fk".into(),
                    domain_size: 3,
                    labels: None,
                    fk: Some(FkColdStart {
                        table: "R".into(),
                        original_domain: 2,
                        others_code: 2,
                    }),
                },
            ],
            decisions: vec![JoinDecision {
                table: "R".into(),
                fk: "fk".into(),
                strategy: ExecStrategy::AvoidJoin,
                tuple_ratio: 40.0,
                ror: Some(1.1),
                avoid: true,
                foreign_features: vec!["country".into()],
            }],
            model: ServableModel::NaiveBayes(model),
        })
    }

    fn start_test_server(threads: usize, queue: usize) -> ServerHandle {
        start(
            scorer(),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads,
                queue_capacity: queue,
                stop_signal: None,
            },
        )
        .unwrap()
    }

    /// One-shot HTTP client: sends raw bytes, reads the full response.
    fn roundtrip(port: u16, raw: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        // Read until EOF, tolerating a late RST after the response bytes
        // (the 503 shed path closes without reading the whole request).
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    fn post(port: u16, path: &str, body: &str) -> String {
        roundtrip(
            port,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn get(port: u16, path: &str) -> String {
        roundtrip(port, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
    }

    #[test]
    fn healthz_metrics_predict_and_drain() {
        let h = start_test_server(2, 16);
        let port = h.port();

        let health = get(port, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"family\":\"naive_bayes\""), "{health}");
        assert!(
            health.contains("\"features\":[\"color\",\"fk\"]"),
            "{health}"
        );

        let pred = post(
            port,
            "/predict",
            r#"{"rows":[{"color":"blue","fk":1},[0,9]]}"#,
        );
        assert!(pred.starts_with("HTTP/1.1 200"), "{pred}");
        assert!(pred.contains("\"predictions\":["), "{pred}");
        assert!(pred.contains("\"label\":\"yes\""), "{pred}");

        // Typed 422 for an avoided foreign feature.
        let refused = post(
            port,
            "/predict",
            r#"[{"color":"red","fk":0,"country":"US"}]"#,
        );
        assert!(refused.starts_with("HTTP/1.1 422"), "{refused}");
        assert!(refused.contains("avoided_feature"), "{refused}");

        // Typed 400 for malformed JSON.
        let bad = post(port, "/predict", "{nope");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        assert!(bad.contains("bad_json"), "{bad}");

        // 404 and 405.
        assert!(get(port, "/nope").starts_with("HTTP/1.1 404"));
        assert!(get(port, "/predict").starts_with("HTTP/1.1 405"));

        // Metrics expose the request counters.
        let metrics = get(port, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(metrics.contains("hamlet_serve_requests_total"), "{metrics}");

        h.stop();
        let stats = h.join();
        assert!(stats.requests >= 7, "{stats:?}");
        assert!(stats.errors >= 3, "{stats:?}");
    }

    #[test]
    fn deeply_nested_predict_body_is_400_and_the_worker_survives() {
        // Without the parser depth cap this body would overflow the
        // worker's stack — a SIGSEGV/abort killing the whole process,
        // not a catchable panic. It must instead be a typed 400.
        let h = start_test_server(1, 8);
        let port = h.port();
        let bomb = "[".repeat(300_000);
        let resp = post(port, "/predict", &bomb);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("bad_json"), "{resp}");
        assert!(resp.contains("nesting exceeds"), "{resp}");
        // The single worker is still alive and serving.
        let ok = get(port, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        h.stop();
        let stats = h.join();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn saturated_queue_sheds_load_with_503() {
        // No workers draining the queue fast: one worker wedged by slow
        // clients, capacity 1.
        let h = start_test_server(1, 1);
        let port = h.port();

        // Wedge the worker with an idle connection (it blocks in read
        // until the 5s timeout), then park a second idle connection in
        // the queue so the backlog sits at capacity.
        let _busy = TcpStream::connect(("127.0.0.1", port)).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let _parked = TcpStream::connect(("127.0.0.1", port)).unwrap();
        std::thread::sleep(Duration::from_millis(200));

        // The next request must be shed with 503 by the accept thread.
        let resp = get(port, "/healthz");
        assert!(resp.starts_with("HTTP/1.1 503"), "not shed: {resp}");
        assert!(resp.contains("overloaded"), "{resp}");

        h.stop();
        let stats = h.join();
        assert!(stats.rejected >= 1, "{stats:?}");
    }

    #[test]
    fn external_stop_signal_drains() {
        static STOP: AtomicBool = AtomicBool::new(false);
        STOP.store(false, Ordering::SeqCst);
        let h = start(
            scorer(),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                queue_capacity: 4,
                stop_signal: Some(&STOP),
            },
        )
        .unwrap();
        let port = h.port();
        assert!(get(port, "/healthz").starts_with("HTTP/1.1 200"));
        STOP.store(true, Ordering::SeqCst);
        let stats = h.run_until_stopped();
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn response_write_failpoint_does_not_kill_the_worker() {
        let _g = hamlet_chaos::failpoint::serial();
        let h = start_test_server(1, 8);
        let port = h.port();
        hamlet_chaos::failpoint::set_failpoints("serve.response_write=io").unwrap();
        // The response write fails server-side; the client sees a closed
        // connection with no bytes. The worker must survive.
        let resp = get(port, "/healthz");
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(resp.is_empty(), "unexpected bytes: {resp}");
        // Worker still alive and serving.
        let ok = get(port, "/healthz");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        h.stop();
        let stats = h.join();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn resolve_threads_flag_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
