//! Request micro-batching: coalesce concurrent single-row `/predict`
//! calls onto the batch-scorer path.
//!
//! At fleet traffic the server sees many *tiny* requests at once, and
//! the batch path (`Scorer::predict_coded_rows`) amortizes model and
//! schema accesses across rows. The [`MicroBatcher`] exploits that
//! without changing a single answer: single-row requests landing within
//! one collection window are scored as one batch and the predictions
//! fanned back out to their callers.
//!
//! **Bit-for-bit identity.** Rows are validated and decoded on their
//! own worker *before* entering the batcher, and every model scores a
//! row from that row's codes alone (`CodeSource::code(f, row)`), so a
//! coalesced batch produces exactly the floats the same rows would
//! produce scored one by one — property-tested in
//! `tests/proptests_serve.rs`.
//!
//! **Protocol.** The first row to arrive while no batch is collecting
//! becomes the *leader*: it sleeps the window (lock released), then
//! takes everything that queued behind it, scores the combined batch,
//! and delivers each prediction into its submitter's slot. Followers
//! block on their slot. A follower whose leader died (worker panic)
//! falls back to scoring its own row directly after a bounded wait —
//! batching is an optimization, never a liveness hazard.
//!
//! The window comes from `--batch-window-us` / `HAMLET_BATCH_WINDOW_US`;
//! zero (the default) disables coalescing entirely and scores inline.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::score::{Prediction, Scorer};

/// How long past the window a follower waits for its leader before
/// concluding the leader died and scoring its own row directly.
const ORPHAN_GRACE: Duration = Duration::from_secs(2);

/// Lock helper: a poisoned mutex only means a peer panicked mid-update;
/// the protected state is still structurally sound, and a scoring
/// server must keep serving.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One submitter's result mailbox.
struct Slot {
    result: Mutex<Option<Prediction>>,
    ready: Condvar,
}

/// A queued row waiting for the current leader.
struct Pending {
    row: Vec<u32>,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct State {
    /// A leader is currently sleeping its collection window.
    collecting: bool,
    /// Rows queued for that leader (including the leader's own).
    pending: Vec<Pending>,
}

/// Windowed coalescer for single-row predictions against one scorer.
/// One batcher per registry entry, so batches never mix models.
pub struct MicroBatcher {
    window: Duration,
    state: Mutex<State>,
}

impl MicroBatcher {
    /// A batcher with the given collection window; zero disables
    /// coalescing ([`MicroBatcher::predict_one`] scores inline).
    pub fn new(window: Duration) -> Self {
        MicroBatcher {
            window,
            state: Mutex::new(State::default()),
        }
    }

    /// The configured collection window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Scores one validated row, coalescing it with concurrent peers
    /// when a window is configured. `row` must come from
    /// `Scorer::decode_body` against the same `scorer`.
    pub fn predict_one(&self, scorer: &Scorer, row: Vec<u32>) -> Prediction {
        if self.window.is_zero() {
            return score_single(scorer, &row);
        }
        // Kept for the orphaned-follower fallback; a few u32s.
        let own_row = row.clone();
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let is_leader = {
            let mut st = lock(&self.state);
            st.pending.push(Pending {
                row,
                slot: Arc::clone(&slot),
            });
            if st.collecting {
                false
            } else {
                st.collecting = true;
                true
            }
        };

        if is_leader {
            // Collection window: lock released, peers queue up behind us.
            std::thread::sleep(self.window);
            let batch = {
                let mut st = lock(&self.state);
                st.collecting = false;
                std::mem::take(&mut st.pending)
            };
            let rows: Vec<Vec<u32>> = batch.iter().map(|p| p.row.clone()).collect();
            let preds = scorer.predict_coded_rows(&rows);
            for (pending, pred) in batch.into_iter().zip(preds) {
                *lock(&pending.slot.result) = Some(pred);
                pending.slot.ready.notify_all();
            }
        }

        // Wait for the mailbox (the leader filled its own synchronously
        // above, so this returns immediately for leaders).
        let mut result = lock(&slot.result);
        loop {
            if let Some(pred) = result.take() {
                return pred;
            }
            let (guard, timed_out) = slot
                .ready
                .wait_timeout(result, self.window + ORPHAN_GRACE)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            result = guard;
            if timed_out.timed_out() {
                // Leader died before delivering. Check once more, then
                // score our own row — identical result by construction.
                if let Some(pred) = result.take() {
                    return pred;
                }
                drop(result);
                return score_single(scorer, &own_row);
            }
        }
    }
}

fn score_single(scorer: &Scorer, row: &[u32]) -> Prediction {
    let rows = [row.to_vec()];
    // predict_coded_rows returns exactly one prediction per input row.
    scorer.predict_coded_rows(&rows).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{FeatureSchema, ModelArtifact, ServableModel};
    use hamlet_ml::NaiveBayesModel;

    fn scorer() -> Scorer {
        let model = NaiveBayesModel::from_parts(
            vec![0],
            2,
            vec![(0.4f64).ln(), (0.6f64).ln()],
            vec![vec![0.9f64.ln(), 0.1f64.ln(), 0.2f64.ln(), 0.8f64.ln()]],
            vec![2],
        );
        Scorer::new(ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: None,
            features: vec![FeatureSchema {
                name: "x".into(),
                domain_size: 2,
                labels: None,
                fk: None,
            }],
            decisions: vec![],
            model: ServableModel::NaiveBayes(model),
        })
    }

    #[test]
    fn zero_window_scores_inline() {
        let s = scorer();
        let b = MicroBatcher::new(Duration::ZERO);
        let direct = s.predict_coded_rows(&[vec![1]]);
        assert_eq!(b.predict_one(&s, vec![1]), direct[0]);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_agree_with_unbatched() {
        let s = std::sync::Arc::new(scorer());
        let b = std::sync::Arc::new(MicroBatcher::new(Duration::from_millis(5)));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let s = Arc::clone(&s);
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let row = vec![(i % 2) as u32];
                    (row.clone(), b.predict_one(&s, row))
                })
            })
            .collect();
        for h in handles {
            let (row, pred) = h.join().unwrap();
            let direct = s.predict_coded_rows(&[row]);
            assert_eq!(pred, direct[0], "batched prediction drifted");
        }
    }

    #[test]
    fn a_lone_request_still_completes() {
        let s = scorer();
        let b = MicroBatcher::new(Duration::from_millis(2));
        let direct = s.predict_coded_rows(&[vec![0]]);
        assert_eq!(b.predict_one(&s, vec![0]), direct[0]);
    }
}
