//! # hamlet-serve
//!
//! Model serving for the join-avoidance pipeline: once the advisor has
//! decided which joins to avoid and a classifier has been fitted, this
//! crate packages the result as a **versioned, checksummed artifact**
//! ([`artifact`]), scores new rows against it with train-time cold-start
//! semantics ([`score`]), and exposes prediction over a
//! **zero-dependency HTTP/1.1 server** built on `std::net`
//! ([`server`]).
//!
//! The subsystem exists to keep the paper's central promise intact at
//! inference time: an `AvoidJoin` decision means the deployed model
//! *never* needs the attribute table — requests carrying foreign
//! features are rejected, and unseen foreign-key values route through
//! the `Others` bucket exactly as `hamlet_relational::coldstart` routed
//! them during training.
//!
//! Layers:
//!
//! * [`artifact`] — the on-disk format: magic + schema version +
//!   FNV-1a 64 checksum over the canonical payload rendering; corrupt
//!   or truncated files yield typed [`ArtifactError`]s, never panics.
//! * [`export`] — builds an artifact from a [`hamlet_relational::StarSchema`]:
//!   runs the advisor, applies cold-start domain revisions, fits the
//!   requested family, and records decisions with TR/ROR evidence.
//! * [`score`] — the scoring engine: named- or positional-row requests,
//!   label vocabulary lookup, `Others` routing, and typed
//!   [`ScoreError`]s with HTTP status mapping.
//! * [`http`] / [`conn`] / [`server`] — a bounded-worker, bounded-queue
//!   HTTP/1.1 server with keep-alive + pipelining-safe framing, 503
//!   backpressure, graceful drain on SIGTERM/ctrl-c, and `hamlet_obs`
//!   spans + metrics on every request.
//! * [`batch`] — request micro-batching: concurrent single-row predicts
//!   within `HAMLET_BATCH_WINDOW_US` are coalesced onto the batch
//!   scorer, bit-for-bit identical to unbatched scoring.
//! * [`degrade`] — the serving fallback chain: a per-model circuit
//!   breaker that answers from the prior-only surrogate after repeated
//!   scoring faults, plus the `degraded` response contract
//!   (`X-Hamlet-Degraded` header, `"degraded"` JSON field).
//! * [`registry`] — the multi-model table behind `/models/<id>/…`
//!   routing, with atomic hot-swap reload (`POST /reload` or SIGHUP)
//!   that never drops an in-flight request.

pub mod artifact;
pub mod batch;
pub mod conn;
pub mod degrade;
pub mod export;
pub mod http;
pub mod registry;
pub mod score;
pub mod server;

pub use artifact::{
    ArtifactError, FeatureSchema, FkColdStart, JoinDecision, ModelArtifact, ServableModel, MAGIC,
    SCHEMA_VERSION,
};
pub use batch::MicroBatcher;
pub use conn::ConnReader;
pub use degrade::{BreakerPolicy, CircuitBreaker};
pub use export::{
    build_artifact, build_artifact_with_availability, BuildError, BuiltModel, ModelKind,
};
pub use registry::{ModelEntry, Registry, RegistryError, ReloadReport};
pub use score::{Prediction, ScoreError, Scorer};
pub use server::{
    resolve_batch_window, resolve_threads, start, start_with_registry, ServerConfig, ServerHandle,
    ServerStats,
};
