//! Per-model circuit breaker for the serving fallback chain.
//!
//! A model whose scoring path keeps faulting (panicking kernels, poison
//! rows, injected chaos) should not take every request down with it.
//! The breaker watches consecutive scoring faults; after
//! [`BreakerPolicy::threshold`] of them it *opens* and the server stops
//! attempting full scoring, answering from the prior-only surrogate
//! (`Scorer::surrogate_prediction`) instead. While open, every
//! [`BreakerPolicy::probe_every`]-th request is let through as a probe;
//! one probe success closes the breaker and full scoring resumes.
//!
//! States are the classic three, collapsed to two bits of atomics:
//! closed (faults below threshold), open (surrogate + probes), and
//! half-open exists only as the instant a probe is in flight. All
//! transitions are lock-free; the breaker sits on the hot path and
//! costs one relaxed load when closed.
//!
//! Knobs (resolved loudly, like `HAMLET_THREADS`):
//!
//! * `HAMLET_BREAKER_THRESHOLD` — consecutive faults that open the
//!   breaker (default 5, >= 1);
//! * `HAMLET_BREAKER_PROBE` — while open, attempt full scoring on every
//!   Nth request (default 8, >= 1; 1 probes on every request).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Breaker thresholds, resolved once per server from the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive scoring faults that open the breaker.
    pub threshold: u32,
    /// While open, probe full scoring on every Nth request.
    pub probe_every: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            threshold: 5,
            probe_every: 8,
        }
    }
}

impl BreakerPolicy {
    /// Resolves the policy from `HAMLET_BREAKER_*`, defaulting loudly on
    /// invalid values (a bad knob must not take down the server).
    pub fn resolve() -> Self {
        let mut policy = Self::default();
        match hamlet_obs::env::var_where(
            "HAMLET_BREAKER_THRESHOLD",
            "an integer >= 1",
            |&n: &u32| n >= 1,
        ) {
            Ok(Some(n)) => policy.threshold = n,
            Ok(None) => {}
            Err(e) => hamlet_obs::record_warning(format!("{e}; using default breaker threshold")),
        }
        match hamlet_obs::env::var_where("HAMLET_BREAKER_PROBE", "an integer >= 1", |&n: &u64| {
            n >= 1
        }) {
            Ok(Some(n)) => policy.probe_every = n,
            Ok(None) => {}
            Err(e) => {
                hamlet_obs::record_warning(format!("{e}; using default breaker probe cadence"))
            }
        }
        policy
    }
}

/// Lock-free consecutive-fault circuit breaker (one per served model).
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    /// Consecutive faults since the last success.
    consecutive: AtomicU32,
    /// Whether the breaker is open (serving the surrogate).
    open: AtomicBool,
    /// Requests seen while open, for the probe cadence.
    open_seen: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            consecutive: AtomicU32::new(0),
            open: AtomicBool::new(false),
            open_seen: AtomicU64::new(0),
        }
    }

    /// Whether the breaker is open (full scoring suspended).
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    /// Decides whether this request should attempt full scoring: always
    /// when closed; while open, only on every `probe_every`-th request
    /// (the probe whose success re-closes the breaker).
    pub fn admit_full(&self) -> bool {
        if !self.is_open() {
            return true;
        }
        let seen = self.open_seen.fetch_add(1, Ordering::AcqRel) + 1;
        seen.is_multiple_of(self.policy.probe_every)
    }

    /// Records a successful full scoring pass; closes the breaker.
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::Release);
        if self.open.swap(false, Ordering::AcqRel) {
            hamlet_obs::record_warning(
                "circuit breaker closed: a probe scored successfully, resuming full scoring",
            );
        }
    }

    /// Records a scoring fault; returns `true` if this fault opened the
    /// breaker (the trip edge, for logging).
    pub fn record_fault(&self) -> bool {
        let faults = self.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
        if faults >= self.policy.threshold && !self.open.swap(true, Ordering::AcqRel) {
            self.open_seen.store(0, Ordering::Release);
            hamlet_obs::counter_add!("hamlet_breaker_trips_total", 1);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, probe_every: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            threshold,
            probe_every,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_faults() {
        let b = breaker(3, 4);
        assert!(!b.record_fault());
        assert!(!b.record_fault());
        assert!(!b.is_open());
        assert!(b.record_fault(), "third consecutive fault trips");
        assert!(b.is_open());
        // Further faults keep it open without re-reporting the trip.
        assert!(!b.record_fault());
    }

    #[test]
    fn success_resets_the_fault_run() {
        let b = breaker(3, 4);
        b.record_fault();
        b.record_fault();
        b.record_success();
        b.record_fault();
        b.record_fault();
        assert!(!b.is_open(), "non-consecutive faults must not trip");
    }

    #[test]
    fn open_breaker_admits_only_probes() {
        let b = breaker(1, 4);
        assert!(b.admit_full(), "closed breaker admits everything");
        b.record_fault();
        assert!(b.is_open());
        let admitted: Vec<bool> = (0..8).map(|_| b.admit_full()).collect();
        assert_eq!(
            admitted,
            vec![false, false, false, true, false, false, false, true],
            "every 4th request while open is a probe"
        );
    }

    #[test]
    fn probe_success_closes_and_restores_full_scoring() {
        let b = breaker(1, 2);
        b.record_fault();
        assert!(b.is_open());
        // The probe turn arrives, scores fine, breaker closes.
        while !b.admit_full() {}
        b.record_success();
        assert!(!b.is_open());
        assert!(b.admit_full());
        // It takes a full threshold run to trip again.
        assert!(b.record_fault());
    }

    #[test]
    fn policy_resolves_from_env_and_survives_garbage() {
        std::env::set_var("HAMLET_BREAKER_THRESHOLD", "2");
        std::env::set_var("HAMLET_BREAKER_PROBE", "16");
        let p = BreakerPolicy::resolve();
        assert_eq!((p.threshold, p.probe_every), (2, 16));
        std::env::set_var("HAMLET_BREAKER_THRESHOLD", "0");
        let p = BreakerPolicy::resolve();
        assert_eq!(p.threshold, BreakerPolicy::default().threshold);
        std::env::remove_var("HAMLET_BREAKER_THRESHOLD");
        std::env::remove_var("HAMLET_BREAKER_PROBE");
    }
}
