//! Building a [`ModelArtifact`] from a star schema.
//!
//! This is the bridge between training and serving: it runs the join
//! advisor over the star, applies the cold-start `Others` revision to
//! every foreign key (so the deployed model has a trained bucket for
//! unseen entities), materializes only the joins the advisor kept, fits
//! the requested classifier family under the paper's 50/25/25 protocol,
//! and packages the result — model parameters, feature vocabulary,
//! cold-start mapping, and the advisor's decisions with their TR/ROR
//! evidence — into one artifact.

use hamlet_core::advisor::{advise, AdvisorConfig, AdvisorError};
use hamlet_core::rules::Decision;
use hamlet_ml::{zero_one_error, Classifier, Dataset, LogisticRegression, NaiveBayes, Tan};
use hamlet_relational::{DomainRevision, Role, StarSchema, Table, TableSubstitution};

use crate::artifact::{FeatureSchema, FkColdStart, JoinDecision, ModelArtifact, ServableModel};

/// The classifier family to fit, named as on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Naive Bayes (`nb`).
    NaiveBayes,
    /// Multinomial logistic regression (`logreg`).
    LogisticRegression,
    /// Tree-augmented Naive Bayes (`tan`).
    Tan,
    /// CART decision tree (`tree`).
    Tree,
    /// Gradient-boosted trees (`gbt`).
    Gbt,
}

impl ModelKind {
    /// CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::NaiveBayes => "nb",
            ModelKind::LogisticRegression => "logreg",
            ModelKind::Tan => "tan",
            ModelKind::Tree => "tree",
            ModelKind::Gbt => "gbt",
        }
    }

    /// Inverse of [`ModelKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "nb" => Some(ModelKind::NaiveBayes),
            "logreg" => Some(ModelKind::LogisticRegression),
            "tan" => Some(ModelKind::Tan),
            "tree" => Some(ModelKind::Tree),
            "gbt" => Some(ModelKind::Gbt),
            _ => None,
        }
    }

    /// The advisor family whose `(rho, tau)` thresholds apply to this
    /// classifier.
    pub fn family(&self) -> hamlet_core::ModelFamily {
        match self {
            ModelKind::NaiveBayes => hamlet_core::ModelFamily::NaiveBayes,
            ModelKind::LogisticRegression => hamlet_core::ModelFamily::LogisticRegression,
            ModelKind::Tan => hamlet_core::ModelFamily::Tan,
            ModelKind::Tree => hamlet_core::ModelFamily::DecisionTree,
            ModelKind::Gbt => hamlet_core::ModelFamily::Gbt,
        }
    }
}

/// A typed export failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The advisor rejected the star schema.
    Advisor(AdvisorError),
    /// A relational step (revision, join, dataset extraction) failed.
    Relational(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Advisor(e) => write!(f, "advisor: {e}"),
            BuildError::Relational(e) => write!(f, "building the serving view: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<AdvisorError> for BuildError {
    fn from(e: AdvisorError) -> Self {
        BuildError::Advisor(e)
    }
}

/// An artifact plus the training facts worth reporting.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The packaged model.
    pub artifact: ModelArtifact,
    /// Training rows used (50% of the entity table).
    pub n_train: usize,
    /// Zero-one error on the 25% holdout test split.
    pub holdout_error: f64,
}

fn rel(e: impl std::fmt::Display) -> BuildError {
    BuildError::Relational(e.to_string())
}

/// Extracts the ROR/TR evidence value a [`Decision`] carries, if any.
fn evidence(d: &Decision) -> Option<f64> {
    match d {
        Decision::Avoid { value } => Some(*value),
        Decision::Join(hamlet_core::rules::JoinReason::Threshold { value, .. }) => Some(*value),
        Decision::Join(_) => None,
    }
}

/// Runs the advisor, widens every FK domain with the `Others` record,
/// fits `kind` on the advisor-approved view, and packages everything a
/// server needs into a [`ModelArtifact`].
///
/// Deterministic: same star + config + kind gives a bit-identical
/// artifact (fits use the families' fixed seeds, and the split is the
/// identity permutation — generator output is already shuffled).
pub fn build_artifact(
    star: &StarSchema,
    kind: ModelKind,
    config: &AdvisorConfig,
    dataset_name: &str,
) -> Result<BuiltModel, BuildError> {
    build_artifact_with_availability(star, kind, config, dataset_name, &[])
}

/// [`build_artifact`] over a star that may contain FK-only surrogate
/// tables from a degraded load (see `hamlet_relational::availability`).
///
/// Each substituted table's decision is marked `degraded` and carries
/// the manifest-declared foreign features (the surrogate itself has
/// none), so the scorer can refuse — or, under `--fallback`, ignore —
/// requests that supply columns the model never saw. The worst-case ROR
/// bound the advisor computed for the substitution (`q_R* = 1`, since a
/// key-only table has no feature domains) is journaled as evidence.
/// With no substitutions this is exactly [`build_artifact`].
pub fn build_artifact_with_availability(
    star: &StarSchema,
    kind: ModelKind,
    config: &AdvisorConfig,
    dataset_name: &str,
    substitutions: &[TableSubstitution],
) -> Result<BuiltModel, BuildError> {
    let _span = hamlet_obs::span!("serve.build_artifact", kind = kind.name());
    let n_train = star.n_s() / 2;
    let report = advise(star, n_train, config)?;
    for j in &report.joins {
        if let Some(sub) = substitutions.iter().find(|s| s.table == j.table) {
            hamlet_obs::record_warning(format!(
                "degraded build: {} — worst-case ROR bound {} for the FK-only substitution",
                sub.evidence(),
                evidence(&j.ror_decision)
                    .map(|v| format!("{v:.6}"))
                    .unwrap_or_else(|| "n/a".to_string())
            ));
        }
    }

    // Cold-start revision of every FK: append the Others record to each
    // attribute table and remap entity FKs into the widened domain. The
    // Others row uses code-0 feature defaults, matching the coldstart
    // module's convention for synthetic stars.
    let mut revisions = Vec::with_capacity(star.attributes().len());
    for at in star.attributes() {
        revisions.push(DomainRevision::new(at, &vec![0u32; at.n_features()]).map_err(rel)?);
    }
    let entity = star.entity();
    let mut cols = entity.columns().to_vec();
    for rev in &revisions {
        let pos = entity
            .schema()
            .index_of(&rev.attribute.fk)
            .ok_or_else(|| rel(format!("entity has no FK column '{}'", rev.attribute.fk)))?;
        cols[pos] = rev.remap_fk(entity.column(pos).codes());
    }
    let entity =
        Table::new(entity.name().to_string(), entity.schema().clone(), cols).map_err(rel)?;
    let star = StarSchema::new(
        entity,
        revisions.iter().map(|r| r.attribute.clone()).collect(),
    )
    .map_err(rel)?;

    // Materialize only the joins the advisor kept; avoided FKs stay as
    // representatives (the paper's central move).
    let joined: Vec<usize> = report
        .joins
        .iter()
        .enumerate()
        .filter(|(_, j)| !j.avoid)
        .map(|(i, _)| i)
        .collect();
    let wide = star.materialize(&joined).map_err(rel)?;
    let data = Dataset::try_from_table(&wide).map_err(rel)?;

    // 50/25/25 holdout over the (already shuffled) generator order.
    let perm: Vec<usize> = (0..star.n_s()).collect();
    let split = star.split_rows(&perm, 0.5, 0.25);
    let all_feats: Vec<usize> = (0..data.n_features()).collect();
    let model = match kind {
        ModelKind::NaiveBayes => {
            ServableModel::NaiveBayes(NaiveBayes::default().fit(&data, &split.train, &all_feats))
        }
        ModelKind::LogisticRegression => ServableModel::LogisticRegression(
            LogisticRegression::default().fit(&data, &split.train, &all_feats),
        ),
        ModelKind::Tan => ServableModel::Tan(Tan::default().fit(&data, &split.train, &all_feats)),
        ModelKind::Tree => ServableModel::Tree(hamlet_trees::CartTree::default().fit(
            &data,
            &split.train,
            &all_feats,
        )),
        ModelKind::Gbt => {
            ServableModel::Gbt(hamlet_trees::Gbt::from_env().fit(&data, &split.train, &all_feats))
        }
    };
    let holdout_error = zero_one_error(&model, &data, &split.test);

    // Feature schema in Dataset order (Feature | ForeignKey columns of
    // the wide table, in schema order — exactly how try_from_table
    // numbers them).
    let mut features = Vec::new();
    for (def, col) in wide.schema().attributes().iter().zip(wide.columns()) {
        if !matches!(def.role, Role::Feature | Role::ForeignKey { .. }) {
            continue;
        }
        let dom = col.domain();
        let labels = dom.is_labelled().then(|| {
            (0..dom.size() as u32)
                .map(|c| dom.label(c).into_owned())
                .collect()
        });
        let fk = revisions
            .iter()
            .find(|r| r.attribute.fk == def.name)
            .map(|r| FkColdStart {
                table: r.attribute.table.name().to_string(),
                original_domain: r.original_domain,
                others_code: r.others_code,
            });
        features.push(FeatureSchema {
            name: def.name.clone(),
            domain_size: dom.size(),
            labels,
            fk,
        });
    }

    let class_labels = wide.target_column().and_then(|y| {
        let dom = y.domain();
        dom.is_labelled().then(|| {
            (0..dom.size() as u32)
                .map(|c| dom.label(c).into_owned())
                .collect()
        })
    });

    let decisions = report
        .joins
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let sub = substitutions.iter().find(|s| s.table == j.table);
            JoinDecision {
                table: j.table.clone(),
                fk: j.fk.clone(),
                strategy: j.strategy,
                tuple_ratio: if j.stats.n_r == 0 {
                    0.0
                } else {
                    j.stats.n_train as f64 / j.stats.n_r as f64
                },
                ror: evidence(&j.ror_decision),
                avoid: j.avoid,
                // A surrogate table has no features; ship the declared
                // ones so serving can name what is missing.
                foreign_features: match sub {
                    Some(s) => s.declared_features.clone(),
                    None => star.attributes()[i]
                        .feature_names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                },
                degraded: sub.is_some(),
            }
        })
        .collect();

    Ok(BuiltModel {
        artifact: ModelArtifact {
            dataset: dataset_name.to_string(),
            n_classes: data.n_classes(),
            class_labels,
            features,
            decisions,
            model,
        },
        n_train: split.train.len(),
        holdout_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact;
    use crate::score::Scorer;
    use hamlet_ml::Model;
    use hamlet_obs::json::Json;
    use hamlet_relational::{AttributeTable, Domain, TableBuilder};

    /// A small star rigged so the lone join is safe to avoid: large
    /// entity, tiny closed-domain attribute table.
    fn avoidable_star() -> StarSchema {
        let n_r = 4usize;
        let n_s = 400usize;
        let attr = AttributeTable {
            fk: "store".into(),
            table: TableBuilder::new("stores")
                .primary_key(
                    "store",
                    Domain::indexed("store", n_r).shared(),
                    (0..n_r as u32).collect(),
                )
                .feature(
                    "region",
                    Domain::labelled("region", vec!["n".into(), "s".into()]).shared(),
                    (0..n_r as u32).map(|i| i % 2).collect(),
                )
                .build()
                .unwrap(),
        };
        let fk_codes: Vec<u32> = (0..n_s as u32).map(|i| (i * 7 + 3) % n_r as u32).collect();
        let x_codes: Vec<u32> = (0..n_s as u32).map(|i| (i * 5 + 1) % 3).collect();
        let y_codes: Vec<u32> = fk_codes
            .iter()
            .zip(&x_codes)
            .map(|(&fkc, &x)| (fkc + x) % 2)
            .collect();
        let entity = TableBuilder::new("sales")
            .foreign_key(
                "store",
                "stores",
                Domain::indexed("store", n_r).shared(),
                fk_codes,
            )
            .feature("x", Domain::indexed("x", 3).shared(), x_codes)
            .target("y", Domain::boolean("y").shared(), y_codes)
            .build()
            .unwrap();
        StarSchema::new(entity, vec![attr]).unwrap()
    }

    #[test]
    fn avoidable_star_exports_an_avoid_artifact() {
        let star = avoidable_star();
        let built = build_artifact(
            &star,
            ModelKind::NaiveBayes,
            &AdvisorConfig::default(),
            "toy",
        )
        .unwrap();
        let a = &built.artifact;
        assert_eq!(a.decisions.len(), 1);
        assert!(a.decisions[0].avoid, "{:?}", a.decisions[0]);
        assert_eq!(a.decisions[0].foreign_features, vec!["region".to_string()]);
        // The FK feature carries the cold-start mapping: original domain
        // 4, Others at 4, widened domain 5.
        let fk = a.features.iter().find(|f| f.name == "store").unwrap();
        let cs = fk.fk.as_ref().unwrap();
        assert_eq!((cs.original_domain, cs.others_code), (4, 4));
        assert_eq!(fk.domain_size, 5);
        // The avoided join's foreign feature is NOT in the input schema.
        assert!(a.features.iter().all(|f| f.name != "region"));
        assert!(built.holdout_error <= 0.5);
    }

    #[test]
    fn all_families_round_trip_and_score_like_the_in_memory_model() {
        let star = avoidable_star();
        for kind in [
            ModelKind::NaiveBayes,
            ModelKind::LogisticRegression,
            ModelKind::Tan,
            ModelKind::Tree,
            ModelKind::Gbt,
        ] {
            let built = build_artifact(&star, kind, &AdvisorConfig::default(), "toy").unwrap();
            let text = artifact::to_json_string(&built.artifact);
            let reloaded = artifact::from_json_str(&text).unwrap();
            assert_eq!(built.artifact, reloaded, "{}", kind.name());

            // Serving the reloaded artifact must reproduce in-memory
            // prediction bit for bit on every entity row.
            let scorer = Scorer::new(reloaded);
            let wide = star.materialize(&[]).unwrap();
            let data = Dataset::try_from_table(&wide).unwrap();
            let rows: Vec<Vec<u32>> = (0..40)
                .map(|r| {
                    (0..data.n_features())
                        .map(|f| data.feature(f).codes[r])
                        .collect()
                })
                .collect();
            let preds = scorer.predict_codes(&rows).unwrap();
            for (r, p) in preds.iter().enumerate() {
                assert_eq!(
                    p.class,
                    built.artifact.model.predict_row(&data, r),
                    "{} row {r}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            ModelKind::NaiveBayes,
            ModelKind::LogisticRegression,
            ModelKind::Tan,
            ModelKind::Tree,
            ModelKind::Gbt,
        ] {
            assert_eq!(ModelKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ModelKind::from_name("svm"), None);
        assert!(ModelKind::Tree.family().is_tree_based());
        assert!(!ModelKind::Tan.family().is_tree_based());
    }

    #[test]
    fn artifact_json_carries_the_decision_evidence() {
        let star = avoidable_star();
        let built = build_artifact(
            &star,
            ModelKind::NaiveBayes,
            &AdvisorConfig::default(),
            "toy",
        )
        .unwrap();
        let doc = Json::parse(&artifact::to_json_string(&built.artifact)).unwrap();
        let d = &doc
            .get("payload")
            .unwrap()
            .get("decisions")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert_eq!(d.get("strategy").and_then(Json::as_str), Some("avoid"));
        assert!(d.get("tuple_ratio").and_then(Json::as_f64).unwrap() > 1.0);
    }
}
