//! Multi-model registry with atomic hot-swap.
//!
//! The per-family artifacts from the tree-learning PR mean a serving
//! host routinely has N models worth routing between (`nb` vs `gbt`
//! per dataset, canary vs stable, per-tenant families). The registry
//! serves all of them from one process:
//!
//! * **Routing.** `/models/<id>/predict` (and `/healthz`) resolve
//!   through [`Registry::get`]; the legacy unprefixed routes hit the
//!   *default* model — the first one registered — so existing clients
//!   keep working unchanged.
//! * **Atomic hot-swap.** [`Registry::reload`] re-reads every
//!   disk-backed entry, builds the new scorers *off to the side*, and
//!   only then swaps the `Arc`s under the lock — all-or-nothing: if any
//!   artifact fails to load, the registry is untouched and the old
//!   models keep serving. A request that resolved its entry before the
//!   swap finishes against the old model (its `Arc` keeps the artifact
//!   alive); the old artifact is released only when the last in-flight
//!   request drops its clone. Zero requests are dropped or mis-routed
//!   across a swap.
//! * **Generations.** Every swap bumps a monotone generation, visible
//!   in `/models` and `/healthz`, so operators can verify a reload
//!   actually took.
//!
//! Reloads are triggered by `POST /reload` (any worker) or SIGHUP (the
//! CLI flips a flag the accept loop polls). Each entry owns its own
//! [`MicroBatcher`], so coalesced batches never mix models *or*
//! generations.
//!
//! Artifact reads go through [`RetryPolicy`]: transient IO failures get
//! a bounded, jittered exponential backoff before the load is declared
//! dead, while corrupt artifacts (bad magic, checksum mismatch, schema
//! errors) fail fast — no retry can fix bad bytes, and the old
//! generation must resume serving immediately. The [`RELOAD_FAILPOINT`]
//! at the top of [`Registry::reload`] lets chaos runs prove a faulted
//! reload leaves every old generation serving.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use hamlet_obs::RetryPolicy;

use crate::artifact::{self, ArtifactError, ModelArtifact};
use crate::batch::MicroBatcher;
use crate::degrade::{BreakerPolicy, CircuitBreaker};
use crate::score::Scorer;

/// Failpoint hit at the top of [`Registry::reload`], before any
/// artifact is read — a faulted reload must leave the registry (and
/// every old generation) untouched.
pub const RELOAD_FAILPOINT: &str = "registry.reload";

/// Why the registry could not be built or reloaded. Carries the model
/// id and path so a fleet operator knows *which* artifact is bad.
#[derive(Debug)]
pub enum RegistryError {
    /// An artifact failed to load or validate.
    Load {
        /// The model id being (re)loaded.
        id: String,
        /// The artifact path.
        path: PathBuf,
        /// The underlying artifact error.
        source: ArtifactError,
    },
    /// Two `--model` entries share an id.
    DuplicateId(String),
    /// The registry would be empty.
    Empty,
    /// The reload was aborted before any artifact was read (injected
    /// fault or other environmental failure); the registry is untouched.
    Aborted(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Load { id, path, source } => {
                write!(f, "model '{id}' ({}): {source}", path.display())
            }
            RegistryError::DuplicateId(id) => write!(f, "model id '{id}' given more than once"),
            RegistryError::Empty => write!(f, "no models to serve"),
            RegistryError::Aborted(reason) => write!(f, "reload aborted: {reason}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One served model: scorer, its coalescing batcher, and provenance.
pub struct ModelEntry {
    /// Routing id (`/models/<id>/…`).
    pub id: String,
    /// Bumped on every successful swap of this entry.
    pub generation: u64,
    /// The artifact path, when disk-backed (reloadable). In-memory
    /// entries (tests, embedded use) have `None` and survive reloads
    /// unchanged.
    pub source: Option<PathBuf>,
    /// The scoring engine over the loaded artifact.
    pub scorer: Scorer,
    /// Coalesces this model's single-row requests.
    pub batcher: MicroBatcher,
    /// This model's scoring circuit breaker. Entries are rebuilt on
    /// every swap/reload, so a hot-swap always starts with a fresh
    /// (closed) breaker — reloading is the operator's reset lever.
    pub breaker: CircuitBreaker,
}

/// Outcome of a successful [`Registry::reload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadReport {
    /// Ids re-read from disk and swapped.
    pub reloaded: Vec<String>,
    /// Ids kept as-is (no source path).
    pub kept: Vec<String>,
    /// The registry generation after the swap.
    pub generation: u64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Loads one artifact with bounded retry + backoff on *transient* IO
/// failures only. Corrupt artifacts (parse/checksum/schema errors)
/// fail fast: retrying cannot fix bad bytes, and a failed load must
/// hand control back — with the old generation still serving — as
/// quickly as possible.
fn load_with_retry(
    retry: &RetryPolicy,
    id: &str,
    path: &Path,
) -> Result<ModelArtifact, RegistryError> {
    retry
        .run_if(
            "serve.artifact_load",
            || artifact::load(path),
            |e| matches!(e, ArtifactError::Io { .. }),
        )
        .map_err(|source| RegistryError::Load {
            id: id.to_string(),
            path: path.to_path_buf(),
            source,
        })
}

/// The model table. Insertion order is preserved; the first entry is
/// the default model for the legacy unprefixed routes.
pub struct Registry {
    models: Mutex<Vec<Arc<ModelEntry>>>,
    generation: AtomicU64,
    batch_window: Duration,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("models", &self.ids())
            .field("generation", &self.generation())
            .finish()
    }
}

impl Registry {
    /// A registry holding one in-memory model under the id `default`.
    pub fn single(scorer: Scorer, batch_window: Duration) -> Registry {
        let entry = Arc::new(ModelEntry {
            id: "default".into(),
            generation: 1,
            source: None,
            scorer,
            batcher: MicroBatcher::new(batch_window),
            breaker: CircuitBreaker::new(BreakerPolicy::resolve()),
        });
        Registry {
            models: Mutex::new(vec![entry]),
            generation: AtomicU64::new(1),
            batch_window,
        }
    }

    /// Loads every `(id, path)` artifact; the first entry is the
    /// default model. All-or-nothing: one bad artifact fails the whole
    /// construction with a typed error naming it.
    pub fn from_sources(
        sources: &[(String, PathBuf)],
        batch_window: Duration,
    ) -> Result<Registry, RegistryError> {
        if sources.is_empty() {
            return Err(RegistryError::Empty);
        }
        let retry = RetryPolicy::resolve();
        let mut models: Vec<Arc<ModelEntry>> = Vec::with_capacity(sources.len());
        for (id, path) in sources {
            if models.iter().any(|e| &e.id == id) {
                return Err(RegistryError::DuplicateId(id.clone()));
            }
            let loaded = load_with_retry(&retry, id, path)?;
            models.push(Arc::new(ModelEntry {
                id: id.clone(),
                generation: 1,
                source: Some(path.clone()),
                scorer: Scorer::new(loaded),
                batcher: MicroBatcher::new(batch_window),
                breaker: CircuitBreaker::new(BreakerPolicy::resolve()),
            }));
        }
        Ok(Registry {
            models: Mutex::new(models),
            generation: AtomicU64::new(1),
            batch_window,
        })
    }

    /// Resolves a model id to its current entry. The returned `Arc`
    /// pins that artifact for the caller's whole request, across any
    /// concurrent swap.
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        lock(&self.models).iter().find(|e| e.id == id).cloned()
    }

    /// The default model (first registered). The registry is never
    /// empty by construction, but a defensive `None` beats a panic in a
    /// serving path.
    pub fn default_entry(&self) -> Option<Arc<ModelEntry>> {
        lock(&self.models).first().cloned()
    }

    /// `(id, generation)` pairs in registration order.
    pub fn ids(&self) -> Vec<(String, u64)> {
        lock(&self.models)
            .iter()
            .map(|e| (e.id.clone(), e.generation))
            .collect()
    }

    /// The current registry generation (bumped once per successful
    /// reload or swap).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Replaces (or registers) one model in place, atomically. In-flight
    /// requests holding the old entry finish against it.
    pub fn swap(&self, id: &str, scorer: Scorer, source: Option<&Path>) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let mut models = lock(&self.models);
        let entry = Arc::new(ModelEntry {
            id: id.to_string(),
            generation,
            source: source.map(Path::to_path_buf),
            scorer,
            batcher: MicroBatcher::new(self.batch_window),
            breaker: CircuitBreaker::new(BreakerPolicy::resolve()),
        });
        match models.iter_mut().find(|e| e.id == id) {
            Some(slot) => *slot = entry,
            None => models.push(entry),
        }
        generation
    }

    /// Re-reads every disk-backed entry and swaps them in atomically.
    ///
    /// All new scorers are built before anything is published: a load
    /// failure leaves the registry exactly as it was (the typed error
    /// names the bad artifact). In-flight requests keep their pinned
    /// entries; the old artifacts are freed when the last request
    /// drops its `Arc` — never mid-request.
    pub fn reload(&self) -> Result<ReloadReport, RegistryError> {
        hamlet_chaos::fail_at!(RELOAD_FAILPOINT)
            .map_err(|e| RegistryError::Aborted(e.to_string()))?;
        let retry = RetryPolicy::resolve();
        let snapshot: Vec<Arc<ModelEntry>> = lock(&self.models).clone();
        let generation = self.generation.load(Ordering::SeqCst) + 1;
        let mut replacements: Vec<(String, Arc<ModelEntry>)> = Vec::new();
        let mut reloaded = Vec::new();
        let mut kept = Vec::new();
        for entry in &snapshot {
            match &entry.source {
                None => kept.push(entry.id.clone()),
                Some(path) => {
                    let loaded = load_with_retry(&retry, &entry.id, path)?;
                    replacements.push((
                        entry.id.clone(),
                        Arc::new(ModelEntry {
                            id: entry.id.clone(),
                            generation,
                            source: Some(path.clone()),
                            scorer: Scorer::new(loaded),
                            batcher: MicroBatcher::new(self.batch_window),
                            breaker: CircuitBreaker::new(BreakerPolicy::resolve()),
                        }),
                    ));
                    reloaded.push(entry.id.clone());
                }
            }
        }
        // Publish: every new entry lands under one lock acquisition, so
        // no request ever observes a half-swapped registry.
        {
            let mut models = lock(&self.models);
            for (id, replacement) in replacements {
                match models.iter_mut().find(|e| e.id == id) {
                    Some(slot) => *slot = replacement,
                    // The entry was removed concurrently; re-add it
                    // rather than dropping a model the operator asked for.
                    None => models.push(replacement),
                }
            }
        }
        self.generation.store(generation, Ordering::SeqCst);
        Ok(ReloadReport {
            reloaded,
            kept,
            generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{FeatureSchema, ModelArtifact, ServableModel};
    use hamlet_ml::NaiveBayesModel;

    fn artifact_with_prior(p: f64) -> ModelArtifact {
        let model = NaiveBayesModel::from_parts(
            vec![0],
            2,
            vec![p.ln(), (1.0 - p).ln()],
            vec![vec![0.9f64.ln(), 0.1f64.ln(), 0.2f64.ln(), 0.8f64.ln()]],
            vec![2],
        );
        ModelArtifact {
            dataset: format!("prior{p}"),
            n_classes: 2,
            class_labels: None,
            features: vec![FeatureSchema {
                name: "x".into(),
                domain_size: 2,
                labels: None,
                fk: None,
            }],
            decisions: vec![],
            model: ServableModel::NaiveBayes(model),
        }
    }

    #[test]
    fn routing_and_default() {
        let r = Registry::single(Scorer::new(artifact_with_prior(0.5)), Duration::ZERO);
        assert!(r.get("default").is_some());
        assert!(r.get("nope").is_none());
        assert_eq!(
            r.default_entry().map(|e| e.id.clone()),
            Some("default".into())
        );
        assert_eq!(r.ids(), vec![("default".into(), 1)]);
    }

    #[test]
    fn swap_is_atomic_and_old_entry_drains_before_release() {
        let r = Registry::single(Scorer::new(artifact_with_prior(0.5)), Duration::ZERO);
        let in_flight = r.get("default").unwrap();
        let weak = Arc::downgrade(&in_flight);

        let gen = r.swap("default", Scorer::new(artifact_with_prior(0.9)), None);
        assert_eq!(gen, 2);
        assert_eq!(r.generation(), 2);
        // The in-flight request still scores against the old artifact…
        assert_eq!(in_flight.scorer.artifact().dataset, "prior0.5");
        // …and the new resolution sees the swapped one.
        assert_eq!(
            r.get("default").unwrap().scorer.artifact().dataset,
            "prior0.9"
        );
        // The old artifact is only released when the last request ends.
        assert!(weak.upgrade().is_some());
        drop(in_flight);
        assert!(
            weak.upgrade().is_none(),
            "old artifact must drain, then free"
        );
    }

    #[test]
    fn reload_from_disk_is_all_or_nothing() {
        let dir = std::env::temp_dir().join(format!("hamlet_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.model");
        let b = dir.join("b.model");
        artifact::save(&artifact_with_prior(0.5), &a).unwrap();
        artifact::save(&artifact_with_prior(0.6), &b).unwrap();

        let r = Registry::from_sources(
            &[("a".into(), a.clone()), ("b".into(), b.clone())],
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(r.ids().len(), 2);

        // Swap b's artifact on disk; reload picks it up, bumps generations.
        artifact::save(&artifact_with_prior(0.8), &b).unwrap();
        let report = r.reload().unwrap();
        assert_eq!(report.reloaded, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(report.generation, 2);
        assert_eq!(r.get("b").unwrap().scorer.artifact().dataset, "prior0.8");

        // Corrupt b: reload fails typed and changes nothing.
        std::fs::write(&b, b"{not an artifact").unwrap();
        let before = r.ids();
        let err = r.reload().unwrap_err();
        assert!(
            matches!(err, RegistryError::Load { ref id, .. } if id == "b"),
            "{err}"
        );
        assert_eq!(
            r.ids(),
            before,
            "failed reload must leave the registry untouched"
        );
        assert_eq!(r.get("b").unwrap().scorer.artifact().dataset, "prior0.8");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_artifact_io_is_retried_on_reload() {
        let _g = hamlet_chaos::failpoint::serial();
        let dir =
            std::env::temp_dir().join(format!("hamlet_registry_retry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.model");
        artifact::save(&artifact_with_prior(0.5), &a).unwrap();
        let r = Registry::from_sources(&[("a".into(), a.clone())], Duration::ZERO).unwrap();

        // The first load attempt faults; the retry (attempt 2) succeeds,
        // so the reload as a whole must too.
        hamlet_chaos::failpoint::set_failpoints("serve.artifact_load=io@1").unwrap();
        let report = r.reload();
        hamlet_chaos::failpoint::clear_failpoints();
        let report = report.unwrap();
        assert_eq!(report.reloaded, vec!["a".to_string()]);
        assert_eq!(r.generation(), 2);

        // A *persistent* IO fault exhausts the retry budget and fails
        // typed, leaving the registry untouched.
        hamlet_chaos::failpoint::set_failpoints("serve.artifact_load=io").unwrap();
        let err = r.reload();
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(
            matches!(err.unwrap_err(), RegistryError::Load { ref id, .. } if id == "a"),
            "persistent IO must fail typed after the retry budget"
        );
        assert_eq!(
            r.generation(),
            2,
            "failed reload must not bump the generation"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_failpoint_aborts_with_the_registry_untouched() {
        let _g = hamlet_chaos::failpoint::serial();
        let r = Registry::single(Scorer::new(artifact_with_prior(0.5)), Duration::ZERO);
        let before = r.ids();
        hamlet_chaos::failpoint::set_failpoints("registry.reload=io").unwrap();
        let err = r.reload();
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(matches!(err.unwrap_err(), RegistryError::Aborted(_)));
        assert_eq!(r.ids(), before);
        assert_eq!(r.generation(), 1);
    }

    #[test]
    fn duplicate_ids_and_empty_sources_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("hamlet_registry_dup_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.model");
        artifact::save(&artifact_with_prior(0.5), &a).unwrap();
        let dup = Registry::from_sources(
            &[("m".into(), a.clone()), ("m".into(), a.clone())],
            Duration::ZERO,
        );
        assert!(matches!(dup.unwrap_err(), RegistryError::DuplicateId(_)));
        assert!(matches!(
            Registry::from_sources(&[], Duration::ZERO).unwrap_err(),
            RegistryError::Empty
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
