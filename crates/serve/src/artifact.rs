//! The versioned, checksummed model artifact.
//!
//! An artifact is a single hand-rolled-JSON document (rendered and parsed
//! by `hamlet_obs::json`, written with `hamlet_obs::atomic_write`) that
//! bundles everything prediction needs to honor the training-time
//! decisions:
//!
//! * the fitted model parameters for one of the five classifier
//!   families (Naive Bayes, logistic regression, TAN, CART decision
//!   tree, gradient-boosted trees);
//! * the feature schema — per-feature name, trained domain size, and the
//!   label vocabulary for labelled domains;
//! * the advisor's per-join [`ExecStrategy`] verdicts with their TR/ROR
//!   evidence, so an `AvoidJoin` decision travels with the deployed
//!   model;
//! * the cold-start `Others` mapping per foreign key, so unseen FK
//!   values route exactly as `hamlet_relational::coldstart` routed them
//!   at train time.
//!
//! ## Versioning and integrity rules
//!
//! The envelope is `{magic, schema_version, checksum, payload}`. `magic`
//! must equal [`MAGIC`]; `schema_version` must lie in
//! [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`] — v2 added the tree
//! families as a pure extension, so every v1 artifact is also a valid v2
//! payload and loads unchanged; versions *newer* than this build are
//! rejected (no forward reading); `checksum` is an FNV-1a 64 hash of the
//! *canonical re-rendering* of the parsed payload, so whitespace
//! added by hand-editing does not invalidate an artifact but any content
//! change does. Every load failure is a typed [`ArtifactError`];
//! corrupt, truncated, or bit-flipped artifacts must never panic (the
//! workspace no-panic contract, enforced by `tests/no_panic_paths.rs`).

use std::path::Path;

use hamlet_core::ExecStrategy;
use hamlet_ml::{CodeSource, LogisticRegressionModel, Model, NaiveBayesModel, TanModel};
use hamlet_obs::json::{obj, Json};
use hamlet_trees::{CartModel, CartNode, GbtModel, RegNode};

/// First bytes of every artifact: identifies the file type.
pub const MAGIC: &str = "hamlet-model";

/// Artifact schema version this build writes (v2 added the `tree` and
/// `gbt` model families).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version this build still reads. v1 artifacts are a
/// strict subset of v2 (same envelope and payload shape, fewer model
/// families), so they load without migration.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Failpoint armed at artifact load (`HAMLET_FAILPOINTS=serve.artifact_load=io`).
pub const LOAD_FAILPOINT: &str = "serve.artifact_load";

/// A typed artifact failure. Every corrupt-input path lands here; none
/// of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Reading or writing the artifact file failed.
    Io {
        /// Path of the artifact.
        path: String,
        /// The underlying IO error message.
        message: String,
    },
    /// The document is not valid JSON (often a truncated write).
    Parse(String),
    /// The document is JSON but not a hamlet model artifact.
    BadMagic {
        /// What the `magic` field held (or a placeholder if missing).
        found: String,
    },
    /// The artifact was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the artifact.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The payload hash does not match the recorded checksum.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        expected: String,
        /// Checksum computed over the payload.
        actual: String,
    },
    /// The payload is structurally malformed (missing/ill-typed fields,
    /// inconsistent shapes, out-of-range indices).
    Schema(String),
    /// A parameter is NaN or infinite. JSON cannot represent non-finite
    /// numbers (they would render as `null` and fail `finite_of` on
    /// load), so saving such a model would silently produce an artifact
    /// that can never be loaded; the save is refused instead.
    NonFinite {
        /// JSON path of the offending value within the payload.
        path: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { path, message } => {
                write!(f, "model artifact '{path}': {message}")
            }
            ArtifactError::Parse(e) => {
                write!(f, "model artifact is not valid JSON (truncated?): {e}")
            }
            ArtifactError::BadMagic { found } => write!(
                f,
                "not a hamlet model artifact: magic is '{found}', expected '{MAGIC}'"
            ),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact schema_version {found} is not supported \
                 (this build reads {MIN_SCHEMA_VERSION}..={supported})"
            ),
            ArtifactError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact checksum mismatch: envelope records {expected}, \
                 payload hashes to {actual} — the file is corrupt or was edited"
            ),
            ArtifactError::Schema(e) => write!(f, "malformed artifact payload: {e}"),
            ArtifactError::NonFinite { path } => write!(
                f,
                "model parameter {path} is not finite (NaN or infinity); \
                 the artifact would be unloadable, refusing to save it"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Cold-start routing for one foreign-key feature: the `Others` bucket
/// recorded when the training star was widened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkColdStart {
    /// The attribute table this FK references.
    pub table: String,
    /// FK domain size *before* widening; codes `>= original_domain` are
    /// unseen entities.
    pub original_domain: usize,
    /// The trained code unseen FK values map to (`== original_domain`).
    pub others_code: u32,
}

/// One feature of the trained model's input schema, in [`CodeSource`]
/// position order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSchema {
    /// Column name.
    pub name: String,
    /// Trained domain size (includes the `Others` code for FKs).
    pub domain_size: usize,
    /// Category labels for labelled domains (the encoder vocabulary);
    /// `None` for integer-coded domains.
    pub labels: Option<Vec<String>>,
    /// Present iff this feature is a foreign key.
    pub fk: Option<FkColdStart>,
}

/// The advisor's verdict for one candidate join, as shipped with the
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinDecision {
    /// Attribute-table name.
    pub table: String,
    /// Foreign key in the entity table.
    pub fk: String,
    /// How the join executed at training time.
    pub strategy: ExecStrategy,
    /// Tuple-ratio evidence (`n_train / n_R`).
    pub tuple_ratio: f64,
    /// ROR-rule statistic, when the rule produced one.
    pub ror: Option<f64>,
    /// Whether the join was avoided (the FK represents `X_R`).
    pub avoid: bool,
    /// The foreign features this table would have contributed. For an
    /// avoided join these are exactly the columns a prediction request
    /// must *not* carry.
    pub foreign_features: Vec<String>,
    /// Whether the table was unavailable at train time and replaced by
    /// its FK-only surrogate (degraded-mode training). Rendered in the
    /// payload only when `true`, so artifacts from non-degraded builds
    /// are byte-identical to the pre-degraded format.
    pub degraded: bool,
}

/// The fitted model, one of the five servable families.
#[derive(Debug, Clone, PartialEq)]
pub enum ServableModel {
    /// Naive Bayes (Sec 2.1).
    NaiveBayes(NaiveBayesModel),
    /// Multinomial logistic regression (Sec 2.2).
    LogisticRegression(LogisticRegressionModel),
    /// Tree-augmented Naive Bayes (appendix E).
    Tan(TanModel),
    /// CART decision tree (schema v2).
    Tree(CartModel),
    /// Gradient-boosted trees (schema v2).
    Gbt(GbtModel),
}

impl ServableModel {
    /// Family tag used in the artifact (`naive_bayes`,
    /// `logistic_regression`, `tan`, `tree`, `gbt`).
    pub fn family(&self) -> &'static str {
        match self {
            ServableModel::NaiveBayes(_) => "naive_bayes",
            ServableModel::LogisticRegression(_) => "logistic_regression",
            ServableModel::Tan(_) => "tan",
            ServableModel::Tree(_) => "tree",
            ServableModel::Gbt(_) => "gbt",
        }
    }

    /// Number of classes the model separates.
    pub fn n_classes(&self) -> usize {
        match self {
            ServableModel::NaiveBayes(m) => m.n_classes(),
            ServableModel::LogisticRegression(m) => m.n_classes(),
            ServableModel::Tan(m) => m.n_classes(),
            ServableModel::Tree(m) => m.n_classes(),
            ServableModel::Gbt(m) => m.n_classes(),
        }
    }

    /// Per-class scores on one row: the unnormalized log-posterior for
    /// NB/TAN, the pre-softmax decision scores for logistic regression,
    /// a one-hot indicator of the predicted leaf class for the tree,
    /// and `-(F - y)^2` per class for GBT (whose argmax — strict
    /// greater, ties to the lower class — is exactly its prediction).
    pub fn scores<S: CodeSource>(&self, data: &S, row: usize) -> Vec<f64> {
        match self {
            ServableModel::NaiveBayes(m) => m.log_posterior(data, row),
            ServableModel::LogisticRegression(m) => m.decision_scores(data, row),
            ServableModel::Tan(m) => m.log_posterior(data, row),
            ServableModel::Tree(m) => {
                let class = m.predict_row(data, row) as usize;
                (0..m.n_classes())
                    .map(|y| if y == class { 1.0 } else { 0.0 })
                    .collect()
            }
            ServableModel::Gbt(m) => {
                let f_val = m.raw_score(data, row);
                (0..m.n_classes())
                    .map(|y| {
                        let d = f_val - y as f64;
                        -(d * d)
                    })
                    .collect()
            }
        }
    }
}

impl Model for ServableModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        match self {
            ServableModel::NaiveBayes(m) => m.predict_row(data, row),
            ServableModel::LogisticRegression(m) => m.predict_row(data, row),
            ServableModel::Tan(m) => m.predict_row(data, row),
            ServableModel::Tree(m) => m.predict_row(data, row),
            ServableModel::Gbt(m) => m.predict_row(data, row),
        }
    }

    fn features(&self) -> &[usize] {
        match self {
            ServableModel::NaiveBayes(m) => m.features(),
            ServableModel::LogisticRegression(m) => m.features(),
            ServableModel::Tan(m) => m.features(),
            ServableModel::Tree(m) => m.features(),
            ServableModel::Gbt(m) => m.features(),
        }
    }
}

/// A complete, self-describing model artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Provenance tag (dataset name the model was trained on).
    pub dataset: String,
    /// Number of target classes.
    pub n_classes: usize,
    /// Target-class labels for labelled targets.
    pub class_labels: Option<Vec<String>>,
    /// Input schema, in [`CodeSource`] feature-position order.
    pub features: Vec<FeatureSchema>,
    /// The advisor's per-join decisions with evidence.
    pub decisions: Vec<JoinDecision>,
    /// The fitted model.
    pub model: ServableModel,
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn f64_arr(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
}

fn usize_arr(xs: &[usize]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect())
}

fn str_arr(xs: &[String]) -> Json {
    Json::Arr(xs.iter().map(|x| Json::Str(x.clone())).collect())
}

fn opt_str_arr(xs: &Option<Vec<String>>) -> Json {
    match xs {
        Some(v) => str_arr(v),
        None => Json::Null,
    }
}

/// Renders one CART node. Leaves are `{"leaf": class}`; splits carry
/// their routed feature/value and child arena indices.
fn cart_node_json(n: &CartNode) -> Json {
    match n {
        CartNode::Leaf { class } => obj(vec![("leaf", Json::Num(*class as f64))]),
        CartNode::Split {
            feature,
            value,
            left,
            right,
        } => obj(vec![
            ("feature", Json::Num(*feature as f64)),
            ("value", Json::Num(*value as f64)),
            ("left", Json::Num(*left as f64)),
            ("right", Json::Num(*right as f64)),
        ]),
    }
}

/// Renders one regression-tree node; leaves hold a float value.
fn reg_node_json(n: &RegNode) -> Json {
    match n {
        RegNode::Leaf { value } => obj(vec![("leaf", Json::Num(*value))]),
        RegNode::Split {
            feature,
            value,
            left,
            right,
        } => obj(vec![
            ("feature", Json::Num(*feature as f64)),
            ("value", Json::Num(*value as f64)),
            ("left", Json::Num(*left as f64)),
            ("right", Json::Num(*right as f64)),
        ]),
    }
}

fn model_json(model: &ServableModel) -> Json {
    match model {
        ServableModel::NaiveBayes(m) => obj(vec![
            ("family", Json::Str("naive_bayes".into())),
            ("feats", usize_arr(m.features())),
            ("n_classes", Json::Num(m.n_classes() as f64)),
            ("log_prior", f64_arr(m.log_prior())),
            (
                "log_cond",
                Json::Arr(
                    (0..m.features().len())
                        .map(|i| f64_arr(m.log_cond(i)))
                        .collect(),
                ),
            ),
            ("domain_sizes", usize_arr(m.domain_sizes())),
        ]),
        ServableModel::LogisticRegression(m) => obj(vec![
            ("family", Json::Str("logistic_regression".into())),
            ("feats", usize_arr(m.features())),
            ("offsets", usize_arr(m.offsets())),
            ("n_classes", Json::Num(m.n_classes() as f64)),
            ("dim", Json::Num(m.dim() as f64)),
            ("weights", f64_arr(m.weights())),
            ("bias", f64_arr(m.bias())),
        ]),
        ServableModel::Tan(m) => obj(vec![
            ("family", Json::Str("tan".into())),
            ("feats", usize_arr(m.features())),
            ("n_classes", Json::Num(m.n_classes() as f64)),
            ("log_prior", f64_arr(m.log_prior())),
            (
                "parents",
                Json::Arr(
                    m.parents()
                        .iter()
                        .map(|p| match p {
                            Some(i) => Json::Num(*i as f64),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
            (
                "log_cond",
                Json::Arr(
                    (0..m.features().len())
                        .map(|i| f64_arr(m.log_cond(i)))
                        .collect(),
                ),
            ),
            ("domain_sizes", usize_arr(m.domain_sizes())),
        ]),
        ServableModel::Tree(m) => obj(vec![
            ("family", Json::Str("tree".into())),
            ("feats", usize_arr(m.features())),
            ("n_classes", Json::Num(m.n_classes() as f64)),
            ("root", Json::Num(m.root() as f64)),
            (
                "nodes",
                Json::Arr(m.nodes().iter().map(cart_node_json).collect()),
            ),
        ]),
        ServableModel::Gbt(m) => obj(vec![
            ("family", Json::Str("gbt".into())),
            ("feats", usize_arr(m.features())),
            ("n_classes", Json::Num(m.n_classes() as f64)),
            ("base", Json::Num(m.base())),
            ("learning_rate", Json::Num(m.learning_rate())),
            (
                "trees",
                Json::Arr(
                    m.trees()
                        .iter()
                        .map(|t| {
                            obj(vec![
                                ("root", Json::Num(t.root() as f64)),
                                (
                                    "nodes",
                                    Json::Arr(t.nodes().iter().map(reg_node_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn payload_json(a: &ModelArtifact) -> Json {
    obj(vec![
        ("dataset", Json::Str(a.dataset.clone())),
        ("n_classes", Json::Num(a.n_classes as f64)),
        ("class_labels", opt_str_arr(&a.class_labels)),
        (
            "features",
            Json::Arr(
                a.features
                    .iter()
                    .map(|fs| {
                        obj(vec![
                            ("name", Json::Str(fs.name.clone())),
                            ("domain_size", Json::Num(fs.domain_size as f64)),
                            ("labels", opt_str_arr(&fs.labels)),
                            (
                                "fk",
                                match &fs.fk {
                                    None => Json::Null,
                                    Some(fk) => obj(vec![
                                        ("table", Json::Str(fk.table.clone())),
                                        ("original_domain", Json::Num(fk.original_domain as f64)),
                                        ("others_code", Json::Num(fk.others_code as f64)),
                                    ]),
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "decisions",
            Json::Arr(
                a.decisions
                    .iter()
                    .map(|d| {
                        let mut fields = vec![
                            ("table", Json::Str(d.table.clone())),
                            ("fk", Json::Str(d.fk.clone())),
                            ("strategy", Json::Str(d.strategy.name().into())),
                            ("tuple_ratio", Json::Num(d.tuple_ratio)),
                            (
                                "ror",
                                match d.ror {
                                    Some(v) => Json::Num(v),
                                    None => Json::Null,
                                },
                            ),
                            ("avoid", Json::Bool(d.avoid)),
                            ("foreign_features", str_arr(&d.foreign_features)),
                        ];
                        if d.degraded {
                            fields.push(("degraded", Json::Bool(true)));
                        }
                        obj(fields)
                    })
                    .collect(),
            ),
        ),
        ("model", model_json(&a.model)),
    ])
}

/// FNV-1a 64-bit over a byte string.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn checksum_of(payload: &Json) -> String {
    format!("fnv1a64:{:016x}", fnv1a64(payload.to_string().as_bytes()))
}

/// Renders an artifact to its canonical JSON document.
pub fn to_json_string(a: &ModelArtifact) -> String {
    let payload = payload_json(a);
    let checksum = checksum_of(&payload);
    obj(vec![
        ("magic", Json::Str(MAGIC.into())),
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("checksum", Json::Str(checksum)),
        ("payload", payload),
    ])
    .to_string()
}

/// Walks a rendered payload and reports the first non-finite number as
/// a typed error with its JSON path. `Json::Num` renders NaN/Infinity
/// as `null`, which `finite_of` rejects on load — so a non-finite
/// parameter (e.g. a diverged logreg weight or a `-inf` log-prob from
/// degenerate smoothing) must be caught at write time, not deploy time.
fn check_finite(j: &Json, path: &str) -> Result<(), ArtifactError> {
    match j {
        Json::Num(n) if !n.is_finite() => Err(ArtifactError::NonFinite { path: path.into() }),
        Json::Arr(items) => items
            .iter()
            .enumerate()
            .try_for_each(|(i, v)| check_finite(v, &format!("{path}[{i}]"))),
        Json::Obj(members) => members
            .iter()
            .try_for_each(|(k, v)| check_finite(v, &format!("{path}.{k}"))),
        _ => Ok(()),
    }
}

/// Validates that every numeric parameter in the artifact is finite —
/// the precondition for the artifact being loadable after rendering.
pub fn validate_finite(a: &ModelArtifact) -> Result<(), ArtifactError> {
    check_finite(&payload_json(a), "payload")
}

/// Writes an artifact atomically (tmp + fsync + rename via
/// `hamlet_obs::atomic_write`), refusing models with non-finite
/// parameters (see [`validate_finite`]).
pub fn save(a: &ModelArtifact, path: &Path) -> Result<(), ArtifactError> {
    validate_finite(a)?;
    hamlet_obs::atomic_write(path, to_json_string(a).as_bytes()).map_err(|e| ArtifactError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Minimal `mmap(2)` wrapper for read-only artifact loading: reload
/// latency on big artifacts is dominated by copying the file into a
/// `String` before a single validation pass, so the fast path checksums
/// and parses directly over the kernel mapping instead. Raw
/// `extern "C"` (no libc crate), matching the CLI's `signal(2)` shim.
#[cfg(unix)]
mod mapped {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A read-only private mapping of a whole file, unmapped on drop.
    pub struct Mapped {
        ptr: *mut u8,
        len: usize,
    }

    impl Mapped {
        /// Maps the first `len` bytes of `file`. `None` on any failure
        /// (including `len == 0`, which `mmap` rejects) — the caller
        /// falls back to buffered reads.
        pub fn of(file: &File, len: usize) -> Option<Mapped> {
            if len == 0 {
                return None;
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1; treat null defensively too.
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(Mapped { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapped {
        fn drop(&mut self) {
            unsafe { munmap(self.ptr, self.len) };
        }
    }
}

/// The mmap fast path. `Ok(None)` means "mapping unavailable — use the
/// buffered path" (open/stat/map/UTF-8 trouble; the buffered read then
/// reports its own typed error for the real faults). A file that maps
/// cleanly but fails checksum or schema validation is a genuine error,
/// never a fallback trigger — the two paths must agree on verdicts.
#[cfg(unix)]
fn load_mapped(path: &Path) -> Result<Option<ModelArtifact>, ArtifactError> {
    let Ok(file) = std::fs::File::open(path) else {
        return Ok(None);
    };
    let Ok(meta) = file.metadata() else {
        return Ok(None);
    };
    let len = meta.len() as usize;
    let Some(map) = mapped::Mapped::of(&file, len) else {
        return Ok(None);
    };
    let Ok(text) = std::str::from_utf8(map.bytes()) else {
        return Ok(None);
    };
    hamlet_obs::counter_add!("hamlet_artifact_mmap_loads_total", 1);
    from_json_str(text).map(Some)
}

/// Reads and validates an artifact. Carries the `serve.artifact_load`
/// failpoint so the chaos harness can exercise the degraded path.
///
/// On unix the file is `mmap`ed and the checksum verified over the
/// mapped bytes (no heap copy of the envelope); any mapping failure
/// falls back to the buffered read below, bit-for-bit equivalent.
/// `hamlet_artifact_mmap_loads_total` / `_fallbacks_total` count which
/// path served each load.
pub fn load(path: &Path) -> Result<ModelArtifact, ArtifactError> {
    let io_err = |e: std::io::Error| ArtifactError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    hamlet_chaos::fail_at!(LOAD_FAILPOINT).map_err(io_err)?;
    #[cfg(unix)]
    if let Some(a) = load_mapped(path)? {
        return Ok(a);
    }
    hamlet_obs::counter_add!("hamlet_artifact_mmap_fallbacks_total", 1);
    let text = std::fs::read_to_string(path).map_err(io_err)?;
    from_json_str(&text)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type R<T> = Result<T, ArtifactError>;

fn schema_err(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema(msg.into())
}

fn field<'a>(j: &'a Json, key: &str, ctx: &str) -> R<&'a Json> {
    j.get(key)
        .ok_or_else(|| schema_err(format!("{ctx}: missing field '{key}'")))
}

fn str_of(j: &Json, ctx: &str) -> R<String> {
    j.as_str()
        .map(str::to_string)
        .ok_or_else(|| schema_err(format!("{ctx}: expected a string")))
}

fn finite_of(j: &Json, ctx: &str) -> R<f64> {
    match j.as_f64() {
        Some(n) if n.is_finite() => Ok(n),
        _ => Err(schema_err(format!("{ctx}: expected a finite number"))),
    }
}

fn usize_of(j: &Json, ctx: &str) -> R<usize> {
    let n = finite_of(j, ctx)?;
    if n < 0.0 || n.fract() != 0.0 || n > 9.0e15 {
        return Err(schema_err(format!(
            "{ctx}: expected a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

fn u32_of(j: &Json, ctx: &str) -> R<u32> {
    let n = usize_of(j, ctx)?;
    u32::try_from(n).map_err(|_| schema_err(format!("{ctx}: {n} does not fit in u32")))
}

fn arr_of<'a>(j: &'a Json, ctx: &str) -> R<&'a [Json]> {
    j.as_arr()
        .ok_or_else(|| schema_err(format!("{ctx}: expected an array")))
}

fn f64s_of(j: &Json, ctx: &str) -> R<Vec<f64>> {
    arr_of(j, ctx)?
        .iter()
        .enumerate()
        .map(|(i, v)| finite_of(v, &format!("{ctx}[{i}]")))
        .collect()
}

fn usizes_of(j: &Json, ctx: &str) -> R<Vec<usize>> {
    arr_of(j, ctx)?
        .iter()
        .enumerate()
        .map(|(i, v)| usize_of(v, &format!("{ctx}[{i}]")))
        .collect()
}

fn opt_strs_of(j: &Json, ctx: &str) -> R<Option<Vec<String>>> {
    match j {
        Json::Null => Ok(None),
        _ => arr_of(j, ctx)?
            .iter()
            .enumerate()
            .map(|(i, v)| str_of(v, &format!("{ctx}[{i}]")))
            .collect::<R<Vec<String>>>()
            .map(Some),
    }
}

/// `a * b` with overflow reported as a schema error (a hostile artifact
/// could otherwise trip a debug overflow panic).
fn mul(a: usize, b: usize, ctx: &str) -> R<usize> {
    a.checked_mul(b)
        .ok_or_else(|| schema_err(format!("{ctx}: table shape overflows")))
}

fn parse_feature(j: &Json, ctx: &str) -> R<FeatureSchema> {
    let name = str_of(field(j, "name", ctx)?, &format!("{ctx}.name"))?;
    let domain_size = usize_of(field(j, "domain_size", ctx)?, &format!("{ctx}.domain_size"))?;
    if domain_size == 0 {
        return Err(schema_err(format!("{ctx}: domain_size must be positive")));
    }
    let labels = opt_strs_of(field(j, "labels", ctx)?, &format!("{ctx}.labels"))?;
    if let Some(ls) = &labels {
        if ls.len() != domain_size {
            return Err(schema_err(format!(
                "{ctx}: {} labels for domain_size {domain_size}",
                ls.len()
            )));
        }
    }
    let fk = match field(j, "fk", ctx)? {
        Json::Null => None,
        fkj => {
            let fctx = format!("{ctx}.fk");
            let table = str_of(field(fkj, "table", &fctx)?, &format!("{fctx}.table"))?;
            let original_domain = usize_of(
                field(fkj, "original_domain", &fctx)?,
                &format!("{fctx}.original_domain"),
            )?;
            let others_code = u32_of(
                field(fkj, "others_code", &fctx)?,
                &format!("{fctx}.others_code"),
            )?;
            if others_code as usize >= domain_size || original_domain > domain_size {
                return Err(schema_err(format!(
                    "{fctx}: cold-start mapping exceeds the trained domain \
                     (others_code {others_code}, original_domain {original_domain}, \
                     domain_size {domain_size})"
                )));
            }
            Some(FkColdStart {
                table,
                original_domain,
                others_code,
            })
        }
    };
    Ok(FeatureSchema {
        name,
        domain_size,
        labels,
        fk,
    })
}

fn parse_decision(j: &Json, ctx: &str) -> R<JoinDecision> {
    let strategy_name = str_of(field(j, "strategy", ctx)?, &format!("{ctx}.strategy"))?;
    let strategy = ExecStrategy::from_name(&strategy_name).ok_or_else(|| {
        schema_err(format!(
            "{ctx}.strategy: unknown strategy '{strategy_name}' \
             (expected materialize|factorize|avoid)"
        ))
    })?;
    let ror = match field(j, "ror", ctx)? {
        Json::Null => None,
        v => Some(finite_of(v, &format!("{ctx}.ror"))?),
    };
    let avoid = match field(j, "avoid", ctx)? {
        Json::Bool(b) => *b,
        _ => return Err(schema_err(format!("{ctx}.avoid: expected a boolean"))),
    };
    let foreign_features = opt_strs_of(
        field(j, "foreign_features", ctx)?,
        &format!("{ctx}.foreign_features"),
    )?
    .ok_or_else(|| schema_err(format!("{ctx}.foreign_features: expected an array")))?;
    // Optional: absent in artifacts from non-degraded builds (and in
    // every pre-degraded artifact).
    let degraded = match j.get("degraded") {
        None | Some(Json::Null) => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err(schema_err(format!("{ctx}.degraded: expected a boolean"))),
    };
    Ok(JoinDecision {
        table: str_of(field(j, "table", ctx)?, &format!("{ctx}.table"))?,
        fk: str_of(field(j, "fk", ctx)?, &format!("{ctx}.fk"))?,
        strategy,
        tuple_ratio: finite_of(field(j, "tuple_ratio", ctx)?, &format!("{ctx}.tuple_ratio"))?,
        ror,
        avoid,
        foreign_features,
        degraded,
    })
}

/// Decodes `feats`/`domain_sizes` and cross-checks them against the
/// feature schema, returning `(feats, domain_sizes)`.
fn parse_feats(j: &Json, features: &[FeatureSchema], ctx: &str) -> R<(Vec<usize>, Vec<usize>)> {
    let feats = usizes_of(field(j, "feats", ctx)?, &format!("{ctx}.feats"))?;
    let domain_sizes = usizes_of(
        field(j, "domain_sizes", ctx)?,
        &format!("{ctx}.domain_sizes"),
    )?;
    if domain_sizes.len() != feats.len() {
        return Err(schema_err(format!(
            "{ctx}: {} domain_sizes for {} feats",
            domain_sizes.len(),
            feats.len()
        )));
    }
    for (i, &f) in feats.iter().enumerate() {
        let fs = features.get(f).ok_or_else(|| {
            schema_err(format!(
                "{ctx}.feats[{i}]: feature position {f} is outside the schema \
                 ({} features)",
                features.len()
            ))
        })?;
        if domain_sizes[i] != fs.domain_size {
            return Err(schema_err(format!(
                "{ctx}.domain_sizes[{i}]: {} disagrees with schema domain {} \
                 of feature '{}'",
                domain_sizes[i], fs.domain_size, fs.name
            )));
        }
    }
    Ok((feats, domain_sizes))
}

fn parse_model(j: &Json, features: &[FeatureSchema], n_classes: usize) -> R<ServableModel> {
    let ctx = "model";
    let family = str_of(field(j, "family", ctx)?, "model.family")?;
    let mc = usize_of(field(j, "n_classes", ctx)?, "model.n_classes")?;
    if mc != n_classes || n_classes == 0 {
        return Err(schema_err(format!(
            "model.n_classes {mc} disagrees with artifact n_classes {n_classes}"
        )));
    }
    match family.as_str() {
        "naive_bayes" => {
            let (feats, domain_sizes) = parse_feats(j, features, ctx)?;
            let log_prior = f64s_of(field(j, "log_prior", ctx)?, "model.log_prior")?;
            if log_prior.len() != n_classes {
                return Err(schema_err(format!(
                    "model.log_prior: {} entries for {n_classes} classes",
                    log_prior.len()
                )));
            }
            let cond = arr_of(field(j, "log_cond", ctx)?, "model.log_cond")?;
            if cond.len() != feats.len() {
                return Err(schema_err(format!(
                    "model.log_cond: {} tables for {} feats",
                    cond.len(),
                    feats.len()
                )));
            }
            let mut log_cond = Vec::with_capacity(cond.len());
            for (i, t) in cond.iter().enumerate() {
                let ctx_i = format!("model.log_cond[{i}]");
                let table = f64s_of(t, &ctx_i)?;
                let want = mul(n_classes, domain_sizes[i], &ctx_i)?;
                if table.len() != want {
                    return Err(schema_err(format!(
                        "{ctx_i}: {} cells, expected {want}",
                        table.len()
                    )));
                }
                log_cond.push(table);
            }
            Ok(ServableModel::NaiveBayes(NaiveBayesModel::from_parts(
                feats,
                n_classes,
                log_prior,
                log_cond,
                domain_sizes,
            )))
        }
        "logistic_regression" => {
            let feats = usizes_of(field(j, "feats", ctx)?, "model.feats")?;
            let offsets = usizes_of(field(j, "offsets", ctx)?, "model.offsets")?;
            let dim = usize_of(field(j, "dim", ctx)?, "model.dim")?;
            if offsets.len() != feats.len() {
                return Err(schema_err(format!(
                    "model.offsets: {} entries for {} feats",
                    offsets.len(),
                    feats.len()
                )));
            }
            for (i, (&f, &off)) in feats.iter().zip(&offsets).enumerate() {
                let fs = features.get(f).ok_or_else(|| {
                    schema_err(format!(
                        "model.feats[{i}]: feature position {f} is outside the schema"
                    ))
                })?;
                let end = off
                    .checked_add(fs.domain_size)
                    .ok_or_else(|| schema_err(format!("model.offsets[{i}]: overflows")))?;
                if end > dim {
                    return Err(schema_err(format!(
                        "model.offsets[{i}]: block [{off}, {end}) of feature '{}' \
                         exceeds dim {dim}",
                        fs.name
                    )));
                }
            }
            let weights = f64s_of(field(j, "weights", ctx)?, "model.weights")?;
            let bias = f64s_of(field(j, "bias", ctx)?, "model.bias")?;
            if weights.len() != mul(n_classes, dim, "model.weights")? {
                return Err(schema_err(format!(
                    "model.weights: {} cells, expected n_classes {n_classes} x dim {dim}",
                    weights.len()
                )));
            }
            if bias.len() != n_classes {
                return Err(schema_err(format!(
                    "model.bias: {} entries for {n_classes} classes",
                    bias.len()
                )));
            }
            Ok(ServableModel::LogisticRegression(
                LogisticRegressionModel::from_parts(feats, offsets, n_classes, dim, weights, bias),
            ))
        }
        "tan" => {
            let (feats, domain_sizes) = parse_feats(j, features, ctx)?;
            let log_prior = f64s_of(field(j, "log_prior", ctx)?, "model.log_prior")?;
            if log_prior.len() != n_classes {
                return Err(schema_err(format!(
                    "model.log_prior: {} entries for {n_classes} classes",
                    log_prior.len()
                )));
            }
            let parents_j = arr_of(field(j, "parents", ctx)?, "model.parents")?;
            if parents_j.len() != feats.len() {
                return Err(schema_err(format!(
                    "model.parents: {} entries for {} feats",
                    parents_j.len(),
                    feats.len()
                )));
            }
            let mut parents = Vec::with_capacity(parents_j.len());
            for (i, p) in parents_j.iter().enumerate() {
                match p {
                    Json::Null => parents.push(None),
                    v => {
                        let idx = usize_of(v, &format!("model.parents[{i}]"))?;
                        if idx >= feats.len() {
                            return Err(schema_err(format!(
                                "model.parents[{i}]: parent {idx} is outside the \
                                 {}-feature model",
                                feats.len()
                            )));
                        }
                        parents.push(Some(idx));
                    }
                }
            }
            let cond = arr_of(field(j, "log_cond", ctx)?, "model.log_cond")?;
            if cond.len() != feats.len() {
                return Err(schema_err(format!(
                    "model.log_cond: {} tables for {} feats",
                    cond.len(),
                    feats.len()
                )));
            }
            let mut log_cond = Vec::with_capacity(cond.len());
            for (i, t) in cond.iter().enumerate() {
                let ctx_i = format!("model.log_cond[{i}]");
                let table = f64s_of(t, &ctx_i)?;
                let want = match parents[i] {
                    None => mul(n_classes, domain_sizes[i], &ctx_i)?,
                    Some(p) => mul(
                        mul(n_classes, domain_sizes[p], &ctx_i)?,
                        domain_sizes[i],
                        &ctx_i,
                    )?,
                };
                if table.len() != want {
                    return Err(schema_err(format!(
                        "{ctx_i}: {} cells, expected {want}",
                        table.len()
                    )));
                }
                log_cond.push(table);
            }
            Ok(ServableModel::Tan(TanModel::from_parts(
                feats,
                n_classes,
                log_prior,
                parents,
                log_cond,
                domain_sizes,
            )))
        }
        "tree" => {
            let feats = usizes_of(field(j, "feats", ctx)?, "model.feats")?;
            check_model_feats(&feats, features, ctx)?;
            let root = u32_of(field(j, "root", ctx)?, "model.root")?;
            let nodes = arr_of(field(j, "nodes", ctx)?, "model.nodes")?
                .iter()
                .enumerate()
                .map(|(i, n)| parse_cart_node(n, &format!("model.nodes[{i}]")))
                .collect::<R<Vec<CartNode>>>()?;
            CartModel::from_parts(feats, n_classes, features.len(), nodes, root)
                .map(ServableModel::Tree)
                .map_err(|e| schema_err(format!("model: {e}")))
        }
        "gbt" => {
            let feats = usizes_of(field(j, "feats", ctx)?, "model.feats")?;
            check_model_feats(&feats, features, ctx)?;
            let base = finite_of(field(j, "base", ctx)?, "model.base")?;
            let learning_rate = finite_of(field(j, "learning_rate", ctx)?, "model.learning_rate")?;
            let trees = arr_of(field(j, "trees", ctx)?, "model.trees")?
                .iter()
                .enumerate()
                .map(|(ti, t)| {
                    let tctx = format!("model.trees[{ti}]");
                    let root = u32_of(field(t, "root", &tctx)?, &format!("{tctx}.root"))?;
                    let nodes = arr_of(field(t, "nodes", &tctx)?, &format!("{tctx}.nodes"))?
                        .iter()
                        .enumerate()
                        .map(|(i, n)| parse_reg_node(n, &format!("{tctx}.nodes[{i}]")))
                        .collect::<R<Vec<RegNode>>>()?;
                    Ok((nodes, root))
                })
                .collect::<R<Vec<(Vec<RegNode>, u32)>>>()?;
            GbtModel::from_parts(feats, n_classes, features.len(), base, learning_rate, trees)
                .map(ServableModel::Gbt)
                .map_err(|e| schema_err(format!("model: {e}")))
        }
        other => Err(schema_err(format!(
            "model.family: unknown family '{other}' \
             (expected naive_bayes|logistic_regression|tan|tree|gbt)"
        ))),
    }
}

/// Bounds-checks a tree model's `feats` against the feature schema
/// (tree arenas have no `domain_sizes` vector to cross-check).
fn check_model_feats(feats: &[usize], features: &[FeatureSchema], ctx: &str) -> R<()> {
    for (i, &f) in feats.iter().enumerate() {
        if f >= features.len() {
            return Err(schema_err(format!(
                "{ctx}.feats[{i}]: feature position {f} is outside the schema \
                 ({} features)",
                features.len()
            )));
        }
    }
    Ok(())
}

fn parse_cart_node(j: &Json, ctx: &str) -> R<CartNode> {
    match j.get("leaf") {
        Some(v) => Ok(CartNode::Leaf {
            class: u32_of(v, &format!("{ctx}.leaf"))?,
        }),
        None => Ok(CartNode::Split {
            feature: usize_of(field(j, "feature", ctx)?, &format!("{ctx}.feature"))?,
            value: u32_of(field(j, "value", ctx)?, &format!("{ctx}.value"))?,
            left: u32_of(field(j, "left", ctx)?, &format!("{ctx}.left"))?,
            right: u32_of(field(j, "right", ctx)?, &format!("{ctx}.right"))?,
        }),
    }
}

fn parse_reg_node(j: &Json, ctx: &str) -> R<RegNode> {
    match j.get("leaf") {
        Some(v) => Ok(RegNode::Leaf {
            value: finite_of(v, &format!("{ctx}.leaf"))?,
        }),
        None => Ok(RegNode::Split {
            feature: usize_of(field(j, "feature", ctx)?, &format!("{ctx}.feature"))?,
            value: u32_of(field(j, "value", ctx)?, &format!("{ctx}.value"))?,
            left: u32_of(field(j, "left", ctx)?, &format!("{ctx}.left"))?,
            right: u32_of(field(j, "right", ctx)?, &format!("{ctx}.right"))?,
        }),
    }
}

fn parse_payload(j: &Json) -> R<ModelArtifact> {
    let ctx = "payload";
    let dataset = str_of(field(j, "dataset", ctx)?, "payload.dataset")?;
    let n_classes = usize_of(field(j, "n_classes", ctx)?, "payload.n_classes")?;
    let class_labels = opt_strs_of(field(j, "class_labels", ctx)?, "payload.class_labels")?;
    if let Some(ls) = &class_labels {
        if ls.len() != n_classes {
            return Err(schema_err(format!(
                "payload.class_labels: {} labels for {n_classes} classes",
                ls.len()
            )));
        }
    }
    let features = arr_of(field(j, "features", ctx)?, "payload.features")?
        .iter()
        .enumerate()
        .map(|(i, f)| parse_feature(f, &format!("payload.features[{i}]")))
        .collect::<R<Vec<FeatureSchema>>>()?;
    let decisions = arr_of(field(j, "decisions", ctx)?, "payload.decisions")?
        .iter()
        .enumerate()
        .map(|(i, d)| parse_decision(d, &format!("payload.decisions[{i}]")))
        .collect::<R<Vec<JoinDecision>>>()?;
    let model = parse_model(field(j, "model", ctx)?, &features, n_classes)?;
    Ok(ModelArtifact {
        dataset,
        n_classes,
        class_labels,
        features,
        decisions,
        model,
    })
}

/// Parses and fully validates an artifact document. Inverse of
/// [`to_json_string`].
pub fn from_json_str(text: &str) -> R<ModelArtifact> {
    let doc = Json::parse(text).map_err(ArtifactError::Parse)?;
    let magic = doc
        .get("magic")
        .and_then(Json::as_str)
        .unwrap_or("<missing>");
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic {
            found: magic.to_string(),
        });
    }
    let version = usize_of(
        field(&doc, "schema_version", "envelope")?,
        "envelope.schema_version",
    )? as u64;
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    let expected = str_of(field(&doc, "checksum", "envelope")?, "envelope.checksum")?;
    let payload = field(&doc, "payload", "envelope")?;
    let actual = checksum_of(payload);
    if expected != actual {
        return Err(ArtifactError::ChecksumMismatch { expected, actual });
    }
    parse_payload(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb_artifact() -> ModelArtifact {
        // A tiny hand-built NB model: 2 features (one FK), 2 classes.
        let model = NaiveBayesModel::from_parts(
            vec![0, 1],
            2,
            vec![(0.5f64).ln(), (0.5f64).ln()],
            vec![
                vec![0.1f64.ln(), 0.9f64.ln(), 0.8f64.ln(), 0.2f64.ln()],
                vec![
                    0.3f64.ln(),
                    0.3f64.ln(),
                    0.4f64.ln(),
                    0.2f64.ln(),
                    0.5f64.ln(),
                    0.3f64.ln(),
                ],
            ],
            vec![2, 3],
        );
        ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: Some(vec!["no".into(), "yes".into()]),
            features: vec![
                FeatureSchema {
                    name: "x".into(),
                    domain_size: 2,
                    labels: Some(vec!["a".into(), "b".into()]),
                    fk: None,
                },
                FeatureSchema {
                    name: "fk".into(),
                    domain_size: 3,
                    labels: None,
                    fk: Some(FkColdStart {
                        table: "R".into(),
                        original_domain: 2,
                        others_code: 2,
                    }),
                },
            ],
            decisions: vec![JoinDecision {
                table: "R".into(),
                fk: "fk".into(),
                strategy: ExecStrategy::AvoidJoin,
                tuple_ratio: 31.5,
                ror: Some(1.02),
                avoid: true,
                foreign_features: vec!["country".into()],
                degraded: false,
            }],
            model: ServableModel::NaiveBayes(model),
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let a = nb_artifact();
        let text = to_json_string(&a);
        let b = from_json_str(&text).unwrap();
        assert_eq!(a, b);
        // Idempotent: re-rendering the reloaded artifact is byte-identical.
        assert_eq!(text, to_json_string(&b));
    }

    #[test]
    fn mmap_and_buffered_loads_agree() {
        let a = nb_artifact();
        let path = std::env::temp_dir().join("hamlet_artifact_mmap_test.json");
        save(&a, &path).unwrap();
        // `load` takes the mmap fast path on unix; the buffered parse of
        // the same bytes must yield the identical artifact.
        let via_load = load(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(via_load, from_json_str(&text).unwrap());
        assert_eq!(via_load, a);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_path_verifies_checksum_over_mapped_bytes() {
        let a = nb_artifact();
        let path = std::env::temp_dir().join("hamlet_artifact_mmap_tamper_test.json");
        save(&a, &path).unwrap();
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("31.5", "99.9");
        std::fs::write(&path, tampered).unwrap();
        // The mapping succeeds, so the fault must surface as the same
        // typed checksum error the buffered path raises — not a fallback.
        assert!(matches!(
            load_mapped(&path),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_byte_artifact_is_typed_error() {
        let path = std::env::temp_dir().join("hamlet_artifact_mmap_empty_test.json");
        std::fs::write(&path, b"").unwrap();
        // mmap rejects len 0; the buffered fallback reports the typed
        // parse error instead of panicking.
        assert!(matches!(load(&path), Err(ArtifactError::Parse(_))));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_artifact_falls_back_without_panicking() {
        let path = std::env::temp_dir().join("hamlet_artifact_mmap_utf8_test.json");
        std::fs::write(&path, [0xff, 0xfe, 0x00]).unwrap();
        // Mapped bytes are not UTF-8: the fast path declines, and the
        // buffered read surfaces its own typed IO error.
        assert!(matches!(load_mapped(&path), Ok(None)));
        assert!(matches!(load(&path), Err(ArtifactError::Io { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_typed() {
        let text = to_json_string(&nb_artifact()).replace("hamlet-model", "random-json");
        match from_json_str(&text) {
            Err(ArtifactError::BadMagic { found }) => assert_eq!(found, "random-json"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        assert!(matches!(
            from_json_str("{\"a\":1}"),
            Err(ArtifactError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_gate_accepts_v1_rejects_newer() {
        // A v1 artifact (written by an older build) still loads: the
        // version lives in the envelope, outside the checksummed payload.
        let v1 =
            to_json_string(&nb_artifact()).replace("\"schema_version\":2", "\"schema_version\":1");
        assert_eq!(from_json_str(&v1).unwrap(), nb_artifact());
        // A version newer than this build is refused with a typed error.
        let v3 =
            to_json_string(&nb_artifact()).replace("\"schema_version\":2", "\"schema_version\":3");
        match from_json_str(&v3) {
            Err(ArtifactError::UnsupportedVersion { found, supported }) => {
                assert_eq!((found, supported), (3, SCHEMA_VERSION));
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // v0 predates the format entirely.
        let v0 =
            to_json_string(&nb_artifact()).replace("\"schema_version\":2", "\"schema_version\":0");
        assert!(matches!(
            from_json_str(&v0),
            Err(ArtifactError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn payload_tampering_fails_checksum() {
        let text =
            to_json_string(&nb_artifact()).replace("\"dataset\":\"unit\"", "\"dataset\":\"evil\"");
        assert!(matches!(
            from_json_str(&text),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn whitespace_editing_keeps_checksum_valid() {
        // The checksum hashes the canonical re-render, so pretty-printing
        // whitespace between tokens does not invalidate the artifact.
        let text = to_json_string(&nb_artifact()).replace("\"payload\":{", "\"payload\":   {");
        assert!(from_json_str(&text).is_ok());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let text = to_json_string(&nb_artifact());
        for cut in 0..text.len() {
            assert!(
                from_json_str(&text[..cut]).is_err(),
                "prefix of length {cut} unexpectedly parsed"
            );
        }
    }

    #[test]
    fn oversized_shape_is_schema_error_not_panic() {
        // domain_sizes disagreeing with the schema must not reach
        // from_parts' assertions.
        let text = to_json_string(&nb_artifact());
        let tampered = text.replace("\"domain_sizes\":[2,3]", "\"domain_sizes\":[2,4]");
        // Checksum catches it first; bypass by recomputing? No — any
        // tampering should produce *some* typed error, which is the
        // contract under test.
        assert!(from_json_str(&tampered).is_err());
        // Now a consistent-looking but self-contradictory payload built
        // from scratch: model references feature 7 of a 2-feature schema.
        let mut a = nb_artifact();
        a.model = ServableModel::NaiveBayes(NaiveBayesModel::from_parts(
            vec![7],
            2,
            vec![0.0, 0.0],
            vec![vec![0.0; 4]],
            vec![2],
        ));
        let err = from_json_str(&to_json_string(&a)).unwrap_err();
        assert!(matches!(err, ArtifactError::Schema(_)), "{err}");
        assert!(err.to_string().contains("outside the schema"), "{err}");
    }

    #[test]
    fn logreg_and_tan_round_trip() {
        let features = vec![FeatureSchema {
            name: "x".into(),
            domain_size: 3,
            labels: None,
            fk: None,
        }];
        let lr = ServableModel::LogisticRegression(LogisticRegressionModel::from_parts(
            vec![0],
            vec![0],
            2,
            3,
            vec![0.25, -1.5, 3.0e-7, 0.0, 1.0, -2.0],
            vec![0.125, -0.5],
        ));
        let tan = ServableModel::Tan(TanModel::from_parts(
            vec![0],
            2,
            vec![(0.5f64).ln(), (0.5f64).ln()],
            vec![None],
            vec![vec![
                0.2f64.ln(),
                0.3f64.ln(),
                0.5f64.ln(),
                0.4f64.ln(),
                0.3f64.ln(),
                0.3f64.ln(),
            ]],
            vec![3],
        ));
        for model in [lr, tan] {
            let a = ModelArtifact {
                dataset: "unit".into(),
                n_classes: 2,
                class_labels: None,
                features: features.clone(),
                decisions: vec![],
                model,
            };
            let b = from_json_str(&to_json_string(&a)).unwrap();
            assert_eq!(a, b);
        }
    }

    fn tree_artifact() -> ModelArtifact {
        // x == 1 predicts class 1, else class 0.
        let model = CartModel::from_parts(
            vec![0],
            2,
            1,
            vec![
                CartNode::Leaf { class: 1 },
                CartNode::Leaf { class: 0 },
                CartNode::Split {
                    feature: 0,
                    value: 1,
                    left: 0,
                    right: 1,
                },
            ],
            2,
        )
        .unwrap();
        ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: None,
            features: vec![FeatureSchema {
                name: "x".into(),
                domain_size: 3,
                labels: None,
                fk: None,
            }],
            decisions: vec![],
            model: ServableModel::Tree(model),
        }
    }

    #[test]
    fn tree_and_gbt_round_trip() {
        let gbt = ServableModel::Gbt(
            GbtModel::from_parts(
                vec![0],
                2,
                1,
                0.5,
                0.3,
                vec![(
                    vec![
                        RegNode::Leaf { value: 0.25 },
                        RegNode::Leaf { value: -0.75 },
                        RegNode::Split {
                            feature: 0,
                            value: 2,
                            left: 0,
                            right: 1,
                        },
                    ],
                    2,
                )],
            )
            .unwrap(),
        );
        let tree = tree_artifact();
        let mut gbt_artifact = tree_artifact();
        gbt_artifact.model = gbt;
        for a in [tree, gbt_artifact] {
            let text = to_json_string(&a);
            let b = from_json_str(&text).unwrap();
            assert_eq!(a, b, "{}", a.model.family());
            assert_eq!(text, to_json_string(&b));
        }
    }

    #[test]
    fn corrupt_tree_arena_is_schema_error_not_panic() {
        // A self-cycling split (left == self) violates the
        // children-precede-parent invariant; from_parts must reject it
        // on load instead of serving an infinite walk.
        let text = to_json_string(&tree_artifact());
        let looped = text.replace("\"left\":0,\"right\":1", "\"left\":2,\"right\":1");
        // Checksum protects against accidental corruption...
        assert!(from_json_str(&looped).is_err());
        // ...and a consistently re-rendered hostile arena is caught by
        // the arena validation itself.
        let mut a = tree_artifact();
        if let ServableModel::Tree(m) = &a.model {
            // Rebuild with an out-of-range feature — from_parts refuses.
            let err = CartModel::from_parts(
                m.features().to_vec(),
                m.n_classes(),
                1,
                vec![
                    CartNode::Leaf { class: 0 },
                    CartNode::Split {
                        feature: 9,
                        value: 0,
                        left: 0,
                        right: 0,
                    },
                ],
                1,
            )
            .unwrap_err();
            assert!(err.to_string().contains("feature"), "{err}");
        }
        a.decisions.clear();
        assert!(from_json_str(&to_json_string(&a)).is_ok());
    }

    #[test]
    fn gbt_scores_argmax_matches_prediction() {
        let m = GbtModel::from_parts(vec![0], 3, 1, 1.4, 1.0, vec![]).unwrap();
        let model = ServableModel::Gbt(m);
        let a = {
            let mut a = tree_artifact();
            a.n_classes = 3;
            a.model = model;
            a
        };
        // A constant F = 1.4 is nearest class 1; the per-class scores'
        // argmax must agree with predict_row.
        struct One;
        impl CodeSource for One {
            fn n_examples(&self) -> usize {
                1
            }
            fn n_classes(&self) -> usize {
                3
            }
            fn n_features(&self) -> usize {
                1
            }
            fn feature_domain_size(&self, _f: usize) -> usize {
                3
            }
            fn feature_name(&self, _f: usize) -> &str {
                "x"
            }
            fn code(&self, _f: usize, _row: usize) -> u32 {
                0
            }
            fn label(&self, _row: usize) -> u32 {
                0
            }
        }
        let scores = a.model.scores(&One, 0);
        let argmax = scores
            .iter()
            .enumerate()
            .fold(0usize, |b, (i, &s)| if s > scores[b] { i } else { b });
        assert_eq!(argmax as u32, a.model.predict_row(&One, 0));
        assert_eq!(argmax, 1);
    }

    #[test]
    fn non_finite_parameters_refuse_to_save() {
        // A NaN log-prior: renders as `null`, which would fail
        // finite_of on load — save must refuse up front.
        let mut a = nb_artifact();
        if let ServableModel::NaiveBayes(m) = &a.model {
            let mut prior = m.log_prior().to_vec();
            prior[1] = f64::NAN;
            a.model = ServableModel::NaiveBayes(NaiveBayesModel::from_parts(
                m.features().to_vec(),
                m.n_classes(),
                prior,
                (0..m.features().len())
                    .map(|i| m.log_cond(i).to_vec())
                    .collect(),
                m.domain_sizes().to_vec(),
            ));
        }
        let dir = std::env::temp_dir().join("hamlet_nonfinite_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        match save(&a, &path) {
            Err(ArtifactError::NonFinite { path }) => {
                assert_eq!(path, "payload.model.log_prior[1]");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(!path.exists(), "refused save must not leave a file");

        // Non-finite decision evidence is caught too.
        let mut b = nb_artifact();
        b.decisions[0].tuple_ratio = f64::INFINITY;
        match validate_finite(&b) {
            Err(ArtifactError::NonFinite { path }) => {
                assert_eq!(path, "payload.decisions[0].tuple_ratio");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }

        // A healthy artifact still saves and round-trips through disk.
        let good = nb_artifact();
        save(&good, &path).unwrap();
        assert_eq!(load(&path).unwrap(), good);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_error_is_typed() {
        let err = load(Path::new("/nonexistent/artifact.json")).unwrap_err();
        assert!(matches!(err, ArtifactError::Io { .. }), "{err}");
    }

    #[test]
    fn load_failpoint_degrades_typed() {
        let _g = hamlet_chaos::failpoint::serial();
        hamlet_chaos::failpoint::set_failpoints("serve.artifact_load=io").unwrap();
        let err = load(Path::new("/tmp/whatever.json")).unwrap_err();
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(
            err.to_string().contains("injected IO failure"),
            "unexpected error: {err}"
        );
    }
}
