//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the inference server, with hard caps so a hostile client cannot make
//! the server allocate unboundedly.
//!
//! One request per connection (`Connection: close`): the server is a
//! scoring endpoint, not a general web server, and single-shot
//! connections keep the worker-pool accounting trivial.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum bytes of request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum request body bytes (a ~1k-row batch is well under this).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Total wall-clock budget for reading one request. The per-read
/// timeout alone does not bound the whole request: a slow-loris client
/// trickling one byte every few seconds resets it on every read and
/// could pin a worker for hours. The deadline caps the sum.
pub const READ_DEADLINE: Duration = Duration::from_secs(10);

/// Longest a single `read()` may block (sharpened near the deadline so
/// the loop observes it promptly).
const PER_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Failpoint armed while writing responses
/// (`HAMLET_FAILPOINTS=serve.response_write=io`).
pub const WRITE_FAILPOINT: &str = "serve.response_write";

/// A parsed request: method, path, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, uppercase as received.
    pub method: String,
    /// Request path (query strings are not used by this server).
    pub path: String,
    /// Raw body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
}

/// Why a request could not be read. The connection handler maps these
/// onto 400/413 responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The socket failed or closed mid-request.
    Io(String),
    /// The request line or headers are malformed.
    Malformed(String),
    /// Head or body exceeded its cap.
    TooLarge(&'static str),
    /// The client did not deliver the full request within the deadline
    /// (slow-loris defense).
    TooSlow,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "socket error: {e}"),
            ReadError::Malformed(e) => write!(f, "malformed request: {e}"),
            ReadError::TooLarge(what) => write!(f, "{what} exceeds the server limit"),
            ReadError::TooSlow => write!(f, "request was not fully received within the deadline"),
        }
    }
}

impl ReadError {
    /// The HTTP status the handler should answer with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ReadError::Io(_) => (400, "Bad Request"),
            ReadError::Malformed(_) => (400, "Bad Request"),
            ReadError::TooLarge(_) => (413, "Payload Too Large"),
            ReadError::TooSlow => (408, "Request Timeout"),
        }
    }
}

/// One deadline-aware read: blocks at most until the overall deadline
/// (or [`PER_READ_TIMEOUT`], whichever is sooner). A stall past either
/// bound is [`ReadError::TooSlow`].
fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    started: Instant,
    deadline: Duration,
) -> Result<usize, ReadError> {
    let remaining = deadline
        .checked_sub(started.elapsed())
        .filter(|r| !r.is_zero())
        .ok_or(ReadError::TooSlow)?;
    let _ = stream.set_read_timeout(Some(remaining.min(PER_READ_TIMEOUT)));
    match stream.read(chunk) {
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(ReadError::TooSlow)
        }
        Err(e) => Err(ReadError::Io(e.to_string())),
    }
}

/// Reads one request from the stream: head until `\r\n\r\n`, then a
/// `Content-Length` body. The whole request must arrive within
/// `deadline` (the server passes [`READ_DEADLINE`]); the cap is total
/// wall clock, not per read, so a byte-at-a-time client cannot pin a
/// worker.
pub fn read_request(stream: &mut TcpStream, deadline: Duration) -> Result<Request, ReadError> {
    let started = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("request head"));
        }
        let n = read_some(stream, &mut chunk, started, deadline)?;
        if n == 0 {
            return Err(ReadError::Malformed(
                "connection closed before the end of headers".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no path".into()))?
        .to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad Content-Length '{value}'")))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge("request body"));
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut chunk, started, deadline)?;
        if n == 0 {
            return Err(ReadError::Malformed(
                "connection closed before the end of the body".into(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response and flushes. Carries the `serve.response_write`
/// failpoint so the chaos harness can sever the write path.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    hamlet_chaos::fail_at!(WRITE_FAILPOINT)?;
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes pushed over a loopback
    /// socket pair.
    fn read_from_bytes(bytes: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(bytes).unwrap();
        // Shut down the write half so a truncated request reads EOF
        // instead of blocking.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, Duration::from_secs(5))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read_from_bytes(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n[[0,1]]",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"[[0,1]]");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = read_from_bytes(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_name_case_is_ignored() {
        let req = read_from_bytes(b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi").unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn truncated_requests_are_typed_errors() {
        assert!(matches!(
            read_from_bytes(b"POST /predict HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read_from_bytes(b"GET /healthz HTTP"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match read_from_bytes(head.as_bytes()) {
            Err(e @ ReadError::TooLarge(_)) => assert_eq!(e.status().0, 413),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn slow_loris_hits_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A client trickling one byte at a time, each read well inside
        // any per-read timeout, never finishing the head.
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            for b in b"POST /predict HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
                .iter()
                .cycle()
            {
                if c.write_all(&[*b]).is_err() {
                    return; // server gave up — expected
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let started = std::time::Instant::now();
        let err = read_request(&mut server_side, Duration::from_millis(250)).unwrap_err();
        assert_eq!(err, ReadError::TooSlow);
        assert_eq!(err.status().0, 408);
        // The worker was released promptly, not after hours.
        assert!(started.elapsed() < Duration::from_secs(5));
        drop(server_side);
        client.join().unwrap();
    }

    #[test]
    fn bad_content_length_is_malformed() {
        assert!(matches!(
            read_from_bytes(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }
}
