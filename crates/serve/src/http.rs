//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for
//! the inference server, with hard caps so a hostile client cannot make
//! the server allocate unboundedly.
//!
//! Since the keep-alive rework the server frames **multiple requests
//! per connection** (see [`crate::conn::ConnReader`]); this module owns
//! the request/response wire format itself: head parsing with strict
//! duplicate-header rules, typed read errors with their HTTP statuses,
//! and response rendering with an explicit connection disposition.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum bytes of request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum request body bytes (a ~1k-row batch is well under this).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Total wall-clock budget for reading one request, measured from its
/// first byte. The per-read timeout alone does not bound the whole
/// request: a slow-loris client trickling one byte every few seconds
/// resets it on every read and could pin a worker for hours. The
/// deadline caps the sum.
pub const READ_DEADLINE: Duration = Duration::from_secs(10);

/// Longest a single `read()` may block (sharpened near the deadline so
/// the loop observes it promptly).
const PER_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Failpoint armed while writing responses
/// (`HAMLET_FAILPOINTS=serve.response_write=io`).
pub const WRITE_FAILPOINT: &str = "serve.response_write";

/// A parsed request: method, path, body, and the client's connection
/// disposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method, uppercase as received.
    pub method: String,
    /// Request path (query strings are not used by this server).
    pub path: String,
    /// Raw body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
    /// The client asked this to be the connection's last request
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

/// Why a request could not be read. The connection handler maps these
/// onto 400/413/408 responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The socket failed or closed mid-request.
    Io(String),
    /// The request line or headers are malformed.
    Malformed(String),
    /// Head or body exceeded its cap.
    TooLarge(&'static str),
    /// The client did not deliver the full request within the deadline
    /// (slow-loris defense).
    TooSlow,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "socket error: {e}"),
            ReadError::Malformed(e) => write!(f, "malformed request: {e}"),
            ReadError::TooLarge(what) => write!(f, "{what} exceeds the server limit"),
            ReadError::TooSlow => write!(f, "request was not fully received within the deadline"),
        }
    }
}

impl ReadError {
    /// The HTTP status the handler should answer with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ReadError::Io(_) => (400, "Bad Request"),
            ReadError::Malformed(_) => (400, "Bad Request"),
            ReadError::TooLarge(_) => (413, "Payload Too Large"),
            ReadError::TooSlow => (408, "Request Timeout"),
        }
    }
}

/// One deadline-aware read: blocks at most until the overall deadline
/// (or [`PER_READ_TIMEOUT`], whichever is sooner). A stall past either
/// bound is [`ReadError::TooSlow`].
pub(crate) fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    started: Instant,
    deadline: Duration,
) -> Result<usize, ReadError> {
    let remaining = deadline
        .checked_sub(started.elapsed())
        .filter(|r| !r.is_zero())
        .ok_or(ReadError::TooSlow)?;
    let _ = stream.set_read_timeout(Some(remaining.min(PER_READ_TIMEOUT)));
    match stream.read(chunk) {
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err(ReadError::TooSlow)
        }
        Err(e) => Err(ReadError::Io(e.to_string())),
    }
}

/// A parsed request head: everything framing needs before the body.
pub(crate) struct Head {
    pub method: String,
    pub path: String,
    pub content_length: usize,
    pub close: bool,
}

/// Parses the head bytes (request line + headers, *excluding* the
/// terminating blank line).
///
/// Strictness rules that matter once pipelining exists:
///
/// * **Duplicate `Content-Length` headers with conflicting values are
///   rejected** ([`ReadError::Malformed`]). Letting the last one win —
///   what the pre-keep-alive parser did — is a request-smuggling-class
///   bug: an intermediary that honours the first value and a server
///   that honours the last disagree on where the next request starts.
///   Identical duplicates are tolerated per RFC 7230 §3.3.2.
/// * **`Transfer-Encoding` is refused outright.** This server never
///   advertised chunked support, and a body whose length is governed by
///   anything other than `Content-Length` would desynchronize the
///   pipeline framing.
pub(crate) fn parse_head(bytes: &[u8]) -> Result<Head, ReadError> {
    let head = String::from_utf8_lossy(bytes);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no path".into()))?
        .to_string();
    // HTTP/1.0 defaults to one request per connection; 1.1 to keep-alive.
    let version = parts.next().unwrap_or("HTTP/1.1");
    let mut close = version.eq_ignore_ascii_case("HTTP/1.0");

    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let v: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad Content-Length '{value}'")))?;
                match content_length {
                    Some(prev) if prev != v => {
                        return Err(ReadError::Malformed(format!(
                            "conflicting duplicate Content-Length headers ({prev} vs {v})"
                        )))
                    }
                    _ => content_length = Some(v),
                }
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                return Err(ReadError::Malformed(
                    "Transfer-Encoding is not supported; send a Content-Length body".into(),
                ));
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            }
        }
    }
    Ok(Head {
        method,
        path,
        content_length: content_length.unwrap_or(0),
        close,
    })
}

/// Finds the `\r\n\r\n` head terminator, scanning only from `from`
/// onward (minus the 3 bytes a split terminator could straddle). The
/// caller advances `from` as bytes arrive, so a trickled head is scanned
/// in O(head) total instead of O(head²).
pub(crate) fn find_head_end_from(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.saturating_sub(3);
    buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| start + p)
}

/// Reads one request from the stream: head until `\r\n\r\n`, then a
/// `Content-Length` body, all within `deadline`.
///
/// This is the single-shot convenience wrapper over
/// [`crate::conn::ConnReader`]; the server itself holds a `ConnReader`
/// per connection so pipelined bytes past the first request are not
/// swallowed. An EOF or idle timeout before the first byte maps to
/// [`ReadError::Malformed`] here (the caller asked for exactly one
/// request).
pub fn read_request(stream: &mut TcpStream, deadline: Duration) -> Result<Request, ReadError> {
    match crate::conn::ConnReader::new().next_request(stream, deadline, deadline)? {
        Some(req) => Ok(req),
        None => Err(ReadError::Malformed(
            "connection closed before the end of headers".into(),
        )),
    }
}

/// Writes one response and flushes. `keep_open` selects the
/// `Connection:` disposition — the server keeps the socket for more
/// requests only when it answered `keep-alive`. Carries the
/// `serve.response_write` failpoint so the chaos harness can sever the
/// write path.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_open: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, content_type, body, keep_open, &[])
}

/// [`write_response`] plus caller-supplied response headers (e.g.
/// `X-Hamlet-Degraded: true` on surrogate answers). Header names and
/// values are emitted verbatim; callers pass static, known-safe pairs.
#[allow(clippy::too_many_arguments)]
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_open: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    hamlet_chaos::fail_at!(WRITE_FAILPOINT)?;
    let connection = if keep_open { "keep-alive" } else { "close" };
    // Head and body go out in ONE write: a separate small body write
    // after the head trips Nagle + delayed-ACK on keep-alive
    // connections, turning a microsecond response into a ~40ms stall.
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes pushed over a loopback
    /// socket pair.
    fn read_from_bytes(bytes: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(bytes).unwrap();
        // Shut down the write half so a truncated request reads EOF
        // instead of blocking.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, Duration::from_secs(5))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read_from_bytes(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n[[0,1]]",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"[[0,1]]");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = read_from_bytes(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_close_and_http10_are_honored() {
        let req = read_from_bytes(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.close);
        let req = read_from_bytes(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = read_from_bytes(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(!req.close, "HTTP/1.0 + keep-alive token stays open");
    }

    #[test]
    fn header_name_case_is_ignored() {
        let req = read_from_bytes(b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi").unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn conflicting_duplicate_content_lengths_are_rejected() {
        // Request-smuggling-class input: two different Content-Length
        // values. The old parser let the last one win; with pipelining
        // that desynchronizes request boundaries, so it must be a typed
        // 400 instead.
        let err = read_from_bytes(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhihello",
        )
        .unwrap_err();
        match &err {
            ReadError::Malformed(m) => assert!(m.contains("conflicting"), "{m}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert_eq!(err.status().0, 400);
        // Identical duplicates are tolerated (RFC 7230 §3.3.2).
        let req =
            read_from_bytes(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi")
                .unwrap();
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let err =
            read_from_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n")
                .unwrap_err();
        assert!(matches!(err, ReadError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn truncated_requests_are_typed_errors() {
        assert!(matches!(
            read_from_bytes(b"POST /predict HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read_from_bytes(b"GET /healthz HTTP"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match read_from_bytes(head.as_bytes()) {
            Err(e @ ReadError::TooLarge(_)) => assert_eq!(e.status().0, 413),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn slow_loris_hits_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A client trickling one byte at a time, each read well inside
        // any per-read timeout, never finishing the head.
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            for b in b"POST /predict HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
                .iter()
                .cycle()
            {
                if c.write_all(&[*b]).is_err() {
                    return; // server gave up — expected
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let started = std::time::Instant::now();
        let err = read_request(&mut server_side, Duration::from_millis(250)).unwrap_err();
        assert_eq!(err, ReadError::TooSlow);
        assert_eq!(err.status().0, 408);
        // The worker was released promptly, not after hours.
        assert!(started.elapsed() < Duration::from_secs(5));
        drop(server_side);
        client.join().unwrap();
    }

    #[test]
    fn bad_content_length_is_malformed() {
        assert!(matches!(
            read_from_bytes(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn find_head_end_scan_offset_never_misses_a_split_terminator() {
        // The terminator may straddle any read boundary; re-scanning
        // from `len - 3` must still find it.
        let full = b"GET / HTTP/1.1\r\nH: v\r\n\r\nrest";
        for cut in 1..full.len() {
            let mut buf = full[..cut].to_vec();
            let mut scanned = 0;
            let mut found = find_head_end_from(&buf, scanned);
            if found.is_none() {
                scanned = buf.len();
                buf.extend_from_slice(&full[cut..]);
                found = find_head_end_from(&buf, scanned);
            }
            assert_eq!(found, Some(20), "cut at {cut}");
        }
    }

    #[test]
    fn responses_carry_the_requested_disposition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        write_response(&mut server_side, 200, "OK", "text/plain", "hi", true).unwrap();
        write_response(&mut server_side, 200, "OK", "text/plain", "hi", false).unwrap();
        drop(server_side);
        let mut out = String::new();
        let mut c = client;
        std::io::Read::read_to_string(&mut c, &mut out).unwrap();
        assert!(out.contains("Connection: keep-alive"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
    }

    #[test]
    fn extra_headers_land_in_the_head_not_the_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        write_response_with(
            &mut server_side,
            200,
            "OK",
            "application/json",
            "{}",
            true,
            &[("X-Hamlet-Degraded", "true")],
        )
        .unwrap();
        drop(server_side);
        let mut out = String::new();
        let mut c = client;
        std::io::Read::read_to_string(&mut c, &mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("X-Hamlet-Degraded: true"), "{head}");
        assert_eq!(body, "{}");
    }
}
