//! The scoring engine: turns JSON prediction requests into class
//! predictions against a loaded [`ModelArtifact`].
//!
//! Two invariants from training time are enforced here:
//!
//! 1. **Cold-start routing.** A foreign-key value the model never saw
//!    (code `>= original_domain`, or an unknown label) is routed to the
//!    trained `Others` bucket — the exact remapping
//!    `hamlet_relational::coldstart::DomainRevision` applied when the
//!    model was fitted. Unseen categories of *non*-FK features are a
//!    typed error instead: there is no trained bucket for them (the
//!    same policy as `hamlet_ml::EncodeError`).
//! 2. **Avoid-join refusal.** When the advisor decided `AvoidJoin` for
//!    a table, the artifact's model consumed the FK itself and none of
//!    that table's foreign features. A request that carries one of
//!    those features is semantically wrong — the caller joined
//!    something the model promised not to need — and is rejected with
//!    [`ScoreError::AvoidedFeature`] rather than silently ignored.

use std::collections::HashMap;

use hamlet_core::ExecStrategy;
use hamlet_ml::{CodeSource, Model};
use hamlet_obs::json::{obj, Json};

use crate::artifact::{ModelArtifact, ServableModel};

/// A typed scoring failure. [`ScoreError::http_status`] maps each
/// variant onto the HTTP plane: 400 for malformed requests, 422 for
/// well-formed requests the model must refuse.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreError {
    /// The request body is not an object, array of rows, or
    /// `{"rows": [...]}`.
    NotAnObject,
    /// A value has the wrong JSON type for its feature.
    BadValue {
        /// Feature name (or positional index rendered as a name).
        feature: String,
        /// What went wrong.
        message: String,
    },
    /// A named feature is not part of the model's input schema.
    UnknownFeature {
        /// The offending name.
        name: String,
    },
    /// The feature belongs to a table whose join the advisor avoided.
    AvoidedFeature {
        /// The offending feature name.
        name: String,
        /// The avoided attribute table it would have come from.
        table: String,
    },
    /// A required feature is missing from a named row.
    MissingFeature {
        /// The missing feature's name.
        name: String,
    },
    /// A category value was unseen at fit time on a non-FK feature.
    UnknownCategory {
        /// Feature name.
        feature: String,
        /// The unseen value, rendered.
        value: String,
        /// Trained domain size.
        domain_size: usize,
    },
    /// A positional row has the wrong number of values.
    WrongArity {
        /// Values supplied.
        got: usize,
        /// Features the model expects.
        expected: usize,
    },
    /// The feature belongs to a table that was unavailable at train
    /// time (degraded build): the model never saw it and has no
    /// encoding for it. The refuse-with-evidence terminal of the
    /// fallback chain — carries the worst-case ROR bound the advisor
    /// computed for the FK-only substitution.
    DegradedFeature {
        /// The offending feature name.
        name: String,
        /// The substituted attribute table it was declared in.
        table: String,
        /// Worst-case ROR bound for the substitution, when computed.
        ror: Option<f64>,
    },
}

impl ScoreError {
    /// HTTP status this error maps to: 400 when the request shape is
    /// malformed, 422 when the request is well-formed JSON the model
    /// semantically refuses.
    pub fn http_status(&self) -> u16 {
        match self {
            ScoreError::NotAnObject
            | ScoreError::BadValue { .. }
            | ScoreError::WrongArity { .. } => 400,
            ScoreError::UnknownFeature { .. }
            | ScoreError::AvoidedFeature { .. }
            | ScoreError::MissingFeature { .. }
            | ScoreError::UnknownCategory { .. }
            | ScoreError::DegradedFeature { .. } => 422,
        }
    }

    /// Stable snake-case kind tag for error bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ScoreError::NotAnObject => "not_an_object",
            ScoreError::BadValue { .. } => "bad_value",
            ScoreError::UnknownFeature { .. } => "unknown_feature",
            ScoreError::AvoidedFeature { .. } => "avoided_feature",
            ScoreError::MissingFeature { .. } => "missing_feature",
            ScoreError::UnknownCategory { .. } => "unknown_category",
            ScoreError::WrongArity { .. } => "wrong_arity",
            ScoreError::DegradedFeature { .. } => "degraded_feature",
        }
    }

    /// Renders the `{"error": {"kind", "message"}}` response body.
    pub fn to_json(&self) -> Json {
        obj(vec![(
            "error",
            obj(vec![
                ("kind", Json::Str(self.kind().into())),
                ("message", Json::Str(self.to_string())),
            ]),
        )])
    }
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::NotAnObject => write!(
                f,
                "request body must be a row object, an array of rows, or {{\"rows\": [...]}}"
            ),
            ScoreError::BadValue { feature, message } => {
                write!(f, "feature '{feature}': {message}")
            }
            ScoreError::UnknownFeature { name } => {
                write!(f, "'{name}' is not a feature of this model")
            }
            ScoreError::AvoidedFeature { name, table } => write!(
                f,
                "'{name}' belongs to attribute table '{table}', whose join the \
                 advisor avoided — this model predicts from the foreign key alone; \
                 drop the joined feature and send the key"
            ),
            ScoreError::MissingFeature { name } => {
                write!(f, "row is missing required feature '{name}'")
            }
            ScoreError::UnknownCategory {
                feature,
                value,
                domain_size,
            } => write!(
                f,
                "feature '{feature}': value {value} was unseen at fit time \
                 (trained domain size {domain_size}); only foreign keys have an \
                 Others bucket for unseen values"
            ),
            ScoreError::WrongArity { got, expected } => write!(
                f,
                "positional row has {got} values but the model expects {expected} features"
            ),
            ScoreError::DegradedFeature { name, table, ror } => write!(
                f,
                "'{name}' belongs to attribute table '{table}', which was unavailable \
                 when this model was trained — the model predicts from the foreign key \
                 alone (worst-case ROR bound for the substitution: {}); drop the feature \
                 or retrain with the table restored",
                match ror {
                    Some(v) => format!("{v:.6}"),
                    None => "not computed".to_string(),
                }
            ),
        }
    }
}

impl std::error::Error for ScoreError {}

/// One prediction: the class code, its label when the target is
/// labelled, and the per-class scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class code.
    pub class: u32,
    /// Class label, when the training target had a label vocabulary.
    pub label: Option<String>,
    /// Per-class scores (log-posterior for NB/TAN, decision scores for
    /// logistic regression).
    pub scores: Vec<f64>,
}

impl Prediction {
    /// Renders one prediction object.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("class", Json::Num(self.class as f64)),
            (
                "label",
                match &self.label {
                    Some(l) => Json::Str(l.clone()),
                    None => Json::Null,
                },
            ),
            (
                "scores",
                Json::Arr(self.scores.iter().map(|&s| Json::Num(s)).collect()),
            ),
        ])
    }
}

/// Column-major batch of coded rows implementing [`CodeSource`], so the
/// fitted models score requests through the same trait they were
/// trained against.
struct RowBatch<'a> {
    artifact: &'a ModelArtifact,
    /// `codes[feature][row]`.
    codes: Vec<Vec<u32>>,
    n_rows: usize,
}

impl CodeSource for RowBatch<'_> {
    fn n_examples(&self) -> usize {
        self.n_rows
    }

    fn n_classes(&self) -> usize {
        self.artifact.n_classes
    }

    fn n_features(&self) -> usize {
        self.artifact.features.len()
    }

    fn feature_domain_size(&self, f: usize) -> usize {
        self.artifact.features[f].domain_size
    }

    fn feature_name(&self, f: usize) -> &str {
        &self.artifact.features[f].name
    }

    fn code(&self, f: usize, row: usize) -> u32 {
        self.codes[f][row]
    }

    fn label(&self, _row: usize) -> u32 {
        // Requests carry no target; nothing in prediction reads this.
        0
    }
}

/// A loaded artifact plus the lookup structures scoring needs.
pub struct Scorer {
    artifact: ModelArtifact,
    /// Feature name -> position.
    by_name: HashMap<String, usize>,
    /// Per feature: label -> code, for labelled domains.
    label_codes: Vec<Option<HashMap<String, u32>>>,
    /// Foreign feature name -> avoided table, for avoid-join refusal.
    avoided_of: HashMap<String, String>,
    /// Foreign feature name -> decision index, for features of tables
    /// that were unavailable at train time (degraded build).
    degraded_of: HashMap<String, usize>,
}

impl Scorer {
    /// Builds the scoring indexes over a validated artifact.
    pub fn new(artifact: ModelArtifact) -> Self {
        let by_name = artifact
            .features
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
        let label_codes = artifact
            .features
            .iter()
            .map(|f| {
                f.labels.as_ref().map(|ls| {
                    ls.iter()
                        .enumerate()
                        .map(|(c, l)| (l.clone(), c as u32))
                        .collect()
                })
            })
            .collect();
        let avoided_of = artifact
            .decisions
            .iter()
            .filter(|d| d.avoid && d.strategy == ExecStrategy::AvoidJoin)
            .flat_map(|d| {
                d.foreign_features
                    .iter()
                    .map(move |f| (f.clone(), d.table.clone()))
            })
            .collect();
        let degraded_of = artifact
            .decisions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.degraded)
            .flat_map(|(i, d)| d.foreign_features.iter().map(move |f| (f.clone(), i)))
            .collect();
        Scorer {
            artifact,
            by_name,
            label_codes,
            avoided_of,
            degraded_of,
        }
    }

    /// Whether the artifact was built with any attribute table replaced
    /// by its FK-only surrogate.
    pub fn trained_degraded(&self) -> bool {
        self.artifact.decisions.iter().any(|d| d.degraded)
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// Resolves one JSON value to the trained code of feature `f`,
    /// applying cold-start `Others` routing for FKs.
    fn code_for(&self, f: usize, value: &Json) -> Result<u32, ScoreError> {
        let fs = &self.artifact.features[f];
        match value {
            Json::Num(n) => {
                if !n.is_finite() || *n < 0.0 || n.fract() != 0.0 || *n > u32::MAX as f64 {
                    return Err(ScoreError::BadValue {
                        feature: fs.name.clone(),
                        message: format!("expected a non-negative integer code, got {n}"),
                    });
                }
                let code = *n as u32;
                match &fs.fk {
                    Some(fk) => {
                        // Cold start: anything outside the original FK
                        // domain is an unseen entity -> Others.
                        if (code as usize) >= fk.original_domain {
                            Ok(fk.others_code)
                        } else {
                            Ok(code)
                        }
                    }
                    None => {
                        if (code as usize) < fs.domain_size {
                            Ok(code)
                        } else {
                            Err(ScoreError::UnknownCategory {
                                feature: fs.name.clone(),
                                value: code.to_string(),
                                domain_size: fs.domain_size,
                            })
                        }
                    }
                }
            }
            Json::Str(s) => match &self.label_codes[f] {
                Some(codes) => match codes.get(s) {
                    Some(&c) => Ok(c),
                    None => match &fs.fk {
                        Some(fk) => Ok(fk.others_code),
                        None => Err(ScoreError::UnknownCategory {
                            feature: fs.name.clone(),
                            value: format!("'{s}'"),
                            domain_size: fs.domain_size,
                        }),
                    },
                },
                None => Err(ScoreError::BadValue {
                    feature: fs.name.clone(),
                    message: format!(
                        "'{s}' is a string but this feature has no label vocabulary; \
                         send an integer code"
                    ),
                }),
            },
            other => Err(ScoreError::BadValue {
                feature: fs.name.clone(),
                message: format!("expected a number or string, got {other}"),
            }),
        }
    }

    /// Decodes one row (named object or positional array) into the
    /// model's per-feature codes, in schema order. The flag reports
    /// whether a degraded-table feature was ignored (`allow_degraded`
    /// only; otherwise such a feature is a typed refusal).
    fn decode_row_allow(
        &self,
        row: &Json,
        allow_degraded: bool,
    ) -> Result<(Vec<u32>, bool), ScoreError> {
        let d = self.artifact.features.len();
        match row {
            Json::Obj(members) => {
                let mut row_degraded = false;
                for (name, _) in members {
                    if !self.by_name.contains_key(name) {
                        // Features of degraded (train-time-absent)
                        // tables: ignored under the fallback chain,
                        // refused with ROR evidence otherwise. Checked
                        // before the avoid-join refusal — a degraded
                        // table's decision may also be an avoid.
                        if let Some(&di) = self.degraded_of.get(name) {
                            if allow_degraded {
                                row_degraded = true;
                                continue;
                            }
                            let dec = &self.artifact.decisions[di];
                            return Err(ScoreError::DegradedFeature {
                                name: name.clone(),
                                table: dec.table.clone(),
                                ror: dec.ror,
                            });
                        }
                        // Refuse foreign features of avoided joins with a
                        // specific error before the generic unknown one.
                        if let Some(table) = self.avoided_of.get(name) {
                            return Err(ScoreError::AvoidedFeature {
                                name: name.clone(),
                                table: table.clone(),
                            });
                        }
                        return Err(ScoreError::UnknownFeature { name: name.clone() });
                    }
                }
                let mut codes = Vec::with_capacity(d);
                for (f, fs) in self.artifact.features.iter().enumerate() {
                    let value = row
                        .get(&fs.name)
                        .ok_or_else(|| ScoreError::MissingFeature {
                            name: fs.name.clone(),
                        })?;
                    codes.push(self.code_for(f, value)?);
                }
                Ok((codes, row_degraded))
            }
            Json::Arr(values) => {
                if values.len() != d {
                    return Err(ScoreError::WrongArity {
                        got: values.len(),
                        expected: d,
                    });
                }
                values
                    .iter()
                    .enumerate()
                    .map(|(f, value)| self.code_for(f, value))
                    .collect::<Result<Vec<u32>, ScoreError>>()
                    .map(|codes| (codes, false))
            }
            _ => Err(ScoreError::NotAnObject),
        }
    }

    /// Decodes a request body into fully validated row-major codes
    /// (`rows[i][f]` in schema order) without scoring them. This is the
    /// first half of [`Scorer::predict_body`], split out so the server's
    /// micro-batcher can validate each request on its own worker and
    /// coalesce only the (infallible) scoring step across requests.
    ///
    /// Body shapes and the `rows`-feature disambiguation rule are
    /// documented on [`Scorer::predict_body`].
    pub fn decode_body(&self, body: &Json) -> Result<Vec<Vec<u32>>, ScoreError> {
        self.decode_body_degraded(body, false).map(|(rows, _)| rows)
    }

    /// [`Scorer::decode_body`] with the degraded-mode fallback chain:
    /// when `allow_degraded`, named values for features of
    /// train-time-absent tables are ignored instead of refused, and the
    /// returned flag reports whether any row was downgraded that way.
    /// With `allow_degraded = false` this is exactly `decode_body`.
    pub fn decode_body_degraded(
        &self,
        body: &Json,
        allow_degraded: bool,
    ) -> Result<(Vec<Vec<u32>>, bool), ScoreError> {
        let rows_is_feature = self.by_name.contains_key("rows");
        let rows: Vec<&Json> = match body {
            Json::Obj(_) if !rows_is_feature => match body.get("rows") {
                Some(Json::Arr(rows)) => rows.iter().collect(),
                Some(_) => {
                    return Err(ScoreError::BadValue {
                        feature: "rows".into(),
                        message: "expected an array of rows".into(),
                    })
                }
                // A single named row.
                None => vec![body],
            },
            // A single named row (schema has a feature named "rows").
            Json::Obj(_) => vec![body],
            Json::Arr(rows) => rows.iter().collect(),
            _ => return Err(ScoreError::NotAnObject),
        };
        let mut any_degraded = false;
        let decoded = rows
            .iter()
            .map(|row| {
                let (codes, row_degraded) = self.decode_row_allow(row, allow_degraded)?;
                any_degraded |= row_degraded;
                Ok(codes)
            })
            .collect::<Result<Vec<Vec<u32>>, ScoreError>>()?;
        Ok((decoded, any_degraded))
    }

    /// Scores already-validated row-major codes (each row produced by
    /// [`Scorer::decode_body`], in schema order). Scoring a coalesced
    /// batch is bit-for-bit identical to scoring each row alone: every
    /// model reads only its own row's codes through [`CodeSource`].
    pub fn predict_coded_rows(&self, rows: &[Vec<u32>]) -> Vec<Prediction> {
        let d = self.artifact.features.len();
        let mut codes = vec![Vec::with_capacity(rows.len()); d];
        for row in rows {
            debug_assert_eq!(row.len(), d, "decode_body guarantees arity");
            for (f, &code) in row.iter().enumerate() {
                codes[f].push(code);
            }
        }
        let batch = RowBatch {
            artifact: &self.artifact,
            codes,
            n_rows: rows.len(),
        };
        (0..batch.n_rows)
            .map(|r| {
                let class = self.artifact.model.predict_row(&batch, r);
                Prediction {
                    class,
                    label: self
                        .artifact
                        .class_labels
                        .as_ref()
                        .and_then(|ls| ls.get(class as usize).cloned()),
                    scores: self.artifact.model.scores(&batch, r),
                }
            })
            .collect()
    }

    /// Scores a request body: `{"rows": [...]}`, a bare array of rows,
    /// or a single row object. Errors identify the first offending row
    /// or feature; on error nothing is predicted (all-or-nothing).
    ///
    /// Disambiguation: an object body is the batch envelope only when
    /// `rows` is *not* a feature of the model's schema. A model trained
    /// with a feature literally named `rows` is still scorable as a
    /// single named row — its `rows` member is the feature value, and
    /// batches must use the bare-array form.
    pub fn predict_body(&self, body: &Json) -> Result<Vec<Prediction>, ScoreError> {
        Ok(self.predict_coded_rows(&self.decode_body(body)?))
    }

    /// Scores pre-coded rows (`rows[i][f]` in schema order), routing
    /// unseen FK codes through `Others`. This is the path the offline
    /// `hamlet predict` command and the benchmarks use.
    pub fn predict_codes(&self, rows: &[Vec<u32>]) -> Result<Vec<Prediction>, ScoreError> {
        let body = Json::Arr(
            rows.iter()
                .map(|r| Json::Arr(r.iter().map(|&c| Json::Num(c as f64)).collect()))
                .collect(),
        );
        self.predict_body(&body)
    }

    /// The prior-only surrogate prediction: what the model knows before
    /// reading any feature. Served (once per row) when the full scoring
    /// path faulted and the fallback chain is on — deterministic,
    /// input-independent, never panics.
    ///
    /// Per family: class log-priors for NB/TAN, the bias vector for
    /// logistic regression, the cold-start walk (every split routes to
    /// its not-equal branch, the path an entity matching nothing takes)
    /// for CART, and the base score for GBT.
    pub fn surrogate_prediction(&self) -> Prediction {
        let scores: Vec<f64> = match &self.artifact.model {
            ServableModel::NaiveBayes(m) => m.log_prior().to_vec(),
            ServableModel::Tan(m) => m.log_prior().to_vec(),
            ServableModel::LogisticRegression(m) => m.bias().to_vec(),
            ServableModel::Tree(m) => {
                let mut at = m.root() as usize;
                let class = loop {
                    match &m.nodes()[at] {
                        hamlet_trees::CartNode::Leaf { class } => break *class as usize,
                        hamlet_trees::CartNode::Split { right, .. } => at = *right as usize,
                    }
                };
                (0..m.n_classes())
                    .map(|y| if y == class { 1.0 } else { 0.0 })
                    .collect()
            }
            ServableModel::Gbt(m) => {
                let base = m.base();
                (0..m.n_classes())
                    .map(|y| {
                        let d = base - y as f64;
                        -(d * d)
                    })
                    .collect()
            }
        };
        // Argmax with ties to the lower class — the serving convention.
        let mut class = 0u32;
        let mut best = f64::NEG_INFINITY;
        for (y, &s) in scores.iter().enumerate() {
            if s > best {
                best = s;
                class = y as u32;
            }
        }
        Prediction {
            class,
            label: self
                .artifact
                .class_labels
                .as_ref()
                .and_then(|ls| ls.get(class as usize).cloned()),
            scores,
        }
    }

    /// Renders the response body `{"predictions": [...]}`.
    pub fn render_predictions(preds: &[Prediction]) -> Json {
        obj(vec![(
            "predictions",
            Json::Arr(preds.iter().map(Prediction::to_json).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{FeatureSchema, FkColdStart, JoinDecision, ModelArtifact, ServableModel};
    use hamlet_ml::NaiveBayesModel;

    /// 2 classes; feature 0 "color" labelled {red,blue}; feature 1 "fk"
    /// with original domain 2 + Others at code 2. The NB tables are
    /// rigged so class = (color == blue), with the FK mildly informative.
    fn scorer() -> Scorer {
        let model = NaiveBayesModel::from_parts(
            vec![0, 1],
            2,
            vec![(0.5f64).ln(), (0.5f64).ln()],
            vec![
                vec![0.9f64.ln(), 0.1f64.ln(), 0.1f64.ln(), 0.9f64.ln()],
                vec![
                    0.5f64.ln(),
                    0.3f64.ln(),
                    0.2f64.ln(),
                    0.2f64.ln(),
                    0.3f64.ln(),
                    0.5f64.ln(),
                ],
            ],
            vec![2, 3],
        );
        Scorer::new(ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: Some(vec!["no".into(), "yes".into()]),
            features: vec![
                FeatureSchema {
                    name: "color".into(),
                    domain_size: 2,
                    labels: Some(vec!["red".into(), "blue".into()]),
                    fk: None,
                },
                FeatureSchema {
                    name: "fk".into(),
                    domain_size: 3,
                    labels: None,
                    fk: Some(FkColdStart {
                        table: "R".into(),
                        original_domain: 2,
                        others_code: 2,
                    }),
                },
            ],
            decisions: vec![JoinDecision {
                table: "R".into(),
                fk: "fk".into(),
                strategy: hamlet_core::ExecStrategy::AvoidJoin,
                tuple_ratio: 40.0,
                ror: Some(1.1),
                avoid: true,
                foreign_features: vec!["country".into(), "size".into()],
                degraded: false,
            }],
            model: ServableModel::NaiveBayes(model),
        })
    }

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn named_and_positional_rows_agree() {
        let s = scorer();
        let named = s
            .predict_body(&parse(
                r#"{"rows":[{"color":"blue","fk":1},{"color":"red","fk":0}]}"#,
            ))
            .unwrap();
        let positional = s.predict_body(&parse(r#"[[1,1],[0,0]]"#)).unwrap();
        assert_eq!(named, positional);
        assert_eq!(named[0].class, 1);
        assert_eq!(named[0].label.as_deref(), Some("yes"));
        assert_eq!(named[1].class, 0);
    }

    #[test]
    fn single_object_body_is_one_row() {
        let s = scorer();
        let preds = s
            .predict_body(&parse(r#"{"color":"blue","fk":0}"#))
            .unwrap();
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].scores.len(), 2);
    }

    #[test]
    fn unseen_fk_routes_through_others() {
        let s = scorer();
        // Codes 2, 7, 1000 are all unseen entities; they must score
        // exactly like the trained Others code 2.
        let unseen = s.predict_body(&parse(r#"[[0,2],[0,7],[0,1000]]"#)).unwrap();
        for p in &unseen {
            assert_eq!(p, &unseen[0]);
        }
        // Unknown *labels* on a labelled FK would also route to Others;
        // this FK is unlabelled, so strings are a BadValue instead.
        let err = s.predict_body(&parse(r#"[[0,"acme"]]"#)).unwrap_err();
        assert_eq!(err.kind(), "bad_value");
    }

    #[test]
    fn unseen_category_on_non_fk_is_typed_422() {
        let s = scorer();
        let err = s
            .predict_body(&parse(r#"[{"color":"green","fk":0}]"#))
            .unwrap_err();
        assert_eq!(
            err,
            ScoreError::UnknownCategory {
                feature: "color".into(),
                value: "'green'".into(),
                domain_size: 2,
            }
        );
        assert_eq!(err.http_status(), 422);
        let err = s.predict_body(&parse(r#"[[5,0]]"#)).unwrap_err();
        assert_eq!(err.kind(), "unknown_category");
    }

    #[test]
    fn avoided_foreign_feature_is_refused() {
        let s = scorer();
        let err = s
            .predict_body(&parse(r#"[{"color":"red","fk":0,"country":"US"}]"#))
            .unwrap_err();
        assert_eq!(
            err,
            ScoreError::AvoidedFeature {
                name: "country".into(),
                table: "R".into(),
            }
        );
        assert_eq!(err.http_status(), 422);
        assert!(err.to_string().contains("advisor avoided"));
    }

    #[test]
    fn malformed_requests_are_400() {
        let s = scorer();
        for (body, kind) in [
            (r#"42"#, "not_an_object"),
            (r#"[[0]]"#, "wrong_arity"),
            (r#"[[0,0,0]]"#, "wrong_arity"),
            (r#"[[true,0]]"#, "bad_value"),
            (r#"[[-1,0]]"#, "bad_value"),
            (r#"[[0.5,0]]"#, "bad_value"),
            (r#"{"rows":3}"#, "bad_value"),
            (r#"[3]"#, "not_an_object"),
        ] {
            let err = s.predict_body(&parse(body)).unwrap_err();
            assert_eq!(err.kind(), kind, "body {body}");
            assert_eq!(err.http_status(), 400, "body {body}");
        }
        // Missing + unknown named features are 422.
        let err = s.predict_body(&parse(r#"[{"color":"red"}]"#)).unwrap_err();
        assert_eq!(err, ScoreError::MissingFeature { name: "fk".into() });
        let err = s
            .predict_body(&parse(r#"[{"color":"red","fk":0,"bogus":1}]"#))
            .unwrap_err();
        assert_eq!(
            err,
            ScoreError::UnknownFeature {
                name: "bogus".into()
            }
        );
    }

    #[test]
    fn error_body_shape() {
        let err = ScoreError::MissingFeature { name: "fk".into() };
        let j = err.to_json();
        let e = j.get("error").unwrap();
        assert_eq!(
            e.get("kind").and_then(Json::as_str),
            Some("missing_feature")
        );
        assert!(e
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("fk"));
    }

    #[test]
    fn feature_named_rows_is_not_mistaken_for_the_envelope() {
        // One feature literally named "rows" (domain 3, integer-coded).
        let model = NaiveBayesModel::from_parts(
            vec![0],
            2,
            vec![(0.5f64).ln(), (0.5f64).ln()],
            vec![vec![
                0.2f64.ln(),
                0.3f64.ln(),
                0.5f64.ln(),
                0.5f64.ln(),
                0.3f64.ln(),
                0.2f64.ln(),
            ]],
            vec![3],
        );
        let s = Scorer::new(ModelArtifact {
            dataset: "unit".into(),
            n_classes: 2,
            class_labels: None,
            features: vec![FeatureSchema {
                name: "rows".into(),
                domain_size: 3,
                labels: None,
                fk: None,
            }],
            decisions: vec![],
            model: ServableModel::NaiveBayes(model),
        });
        // A single named row whose only member is the feature "rows".
        let named = s.predict_body(&parse(r#"{"rows":2}"#)).unwrap();
        let positional = s.predict_body(&parse(r#"[[2]]"#)).unwrap();
        assert_eq!(named, positional);
        // Batches still work via the bare-array form.
        assert_eq!(s.predict_body(&parse(r#"[[0],[1]]"#)).unwrap().len(), 2);
    }

    #[test]
    fn predict_codes_matches_predict_body() {
        let s = scorer();
        let a = s.predict_codes(&[vec![1, 0], vec![0, 9]]).unwrap();
        let b = s.predict_body(&parse(r#"[[1,0],[0,9]]"#)).unwrap();
        assert_eq!(a, b);
    }

    /// The `scorer()` fixture with its decision marked degraded, as a
    /// degraded-mode build would produce.
    fn degraded_scorer() -> Scorer {
        let mut artifact = scorer().artifact;
        artifact.decisions[0].degraded = true;
        Scorer::new(artifact)
    }

    #[test]
    fn degraded_feature_is_refused_with_ror_evidence() {
        let s = degraded_scorer();
        assert!(s.trained_degraded());
        let err = s
            .predict_body(&parse(r#"[{"color":"red","fk":0,"country":"US"}]"#))
            .unwrap_err();
        assert_eq!(
            err,
            ScoreError::DegradedFeature {
                name: "country".into(),
                table: "R".into(),
                ror: Some(1.1),
            }
        );
        assert_eq!(err.http_status(), 422);
        assert_eq!(err.kind(), "degraded_feature");
        assert!(err.to_string().contains("ROR"), "{err}");
        assert!(err.to_string().contains("1.1"), "{err}");
    }

    #[test]
    fn allow_degraded_ignores_the_feature_and_flags_the_batch() {
        let s = degraded_scorer();
        let (rows, degraded) = s
            .decode_body_degraded(&parse(r#"[{"color":"red","fk":0,"country":"US"}]"#), true)
            .unwrap();
        assert!(degraded);
        // The surviving codes are exactly the schema features.
        let (clean, clean_degraded) = s
            .decode_body_degraded(&parse(r#"[{"color":"red","fk":0}]"#), true)
            .unwrap();
        assert!(!clean_degraded);
        assert_eq!(rows, clean);
        // decode_body (no fallback) still refuses.
        assert!(s
            .decode_body(&parse(r#"[{"color":"red","fk":0,"country":"US"}]"#))
            .is_err());
        // Unknown features stay unknown even under the fallback.
        let err = s
            .decode_body_degraded(&parse(r#"[{"color":"red","fk":0,"bogus":1}]"#), true)
            .unwrap_err();
        assert_eq!(err.kind(), "unknown_feature");
    }

    #[test]
    fn surrogate_prediction_is_the_class_prior() {
        let s = scorer();
        let p = s.surrogate_prediction();
        // Equal priors tie to the lower class.
        assert_eq!(p.class, 0);
        assert_eq!(p.label.as_deref(), Some("no"));
        assert_eq!(p.scores, vec![(0.5f64).ln(), (0.5f64).ln()]);
    }
}
