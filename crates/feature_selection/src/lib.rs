//! # hamlet-fs
//!
//! Feature selection methods for the SIGMOD 2016 "To Join or Not to Join?"
//! reproduction. The paper pairs each classifier with four explicit
//! methods plus the embedded L1/L2 approach (Secs 2.2, 5):
//!
//! * **wrappers** — [`forward_selection`] and [`backward_selection`]:
//!   sequential greedy search over subsets, scored by holdout validation
//!   error;
//! * **filters** — [`filter_selection`] with [`FilterScore::MutualInformation`]
//!   or [`FilterScore::InformationGainRatio`]: rank features by score,
//!   then tune the cutoff `k` on validation error "as a wrapper";
//! * **embedded** — [`embedded_l1`] / [`embedded_l2`]: L1/L2-regularized
//!   logistic regression whose vanished coefficient blocks constitute the
//!   implicit selection.
//!
//! All methods operate on index sets over a shared [`Dataset`]; nothing is
//! copied while searching, which is what makes the paper's runtime
//! comparison (JoinAll vs JoinOpt input width) meaningful.

use hamlet_ml::classifier::{Classifier, ErrorMetric};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::info::{information_gain_ratio, mutual_information};
use hamlet_ml::logreg::LogisticRegression;
use hamlet_ml::suffstats::{SuffStats, SweepFit};

/// Everything a selection method needs to score candidate subsets.
#[derive(Debug)]
pub struct SelectionContext<'a, C: Classifier> {
    /// The single-table dataset (post- or pre-join).
    pub data: &'a Dataset,
    /// Training rows.
    pub train: &'a [usize],
    /// Validation rows used for subset scoring.
    pub validation: &'a [usize],
    /// The learner to wrap.
    pub classifier: &'a C,
    /// Error metric (zero-one or RMSE per the paper's convention).
    pub metric: ErrorMetric,
}

// Manual impls: every field is a shared reference or `Copy`, and the
// derives would demand `C: Clone + Copy` for no reason.
impl<C: Classifier> Clone for SelectionContext<'_, C> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<C: Classifier> Copy for SelectionContext<'_, C> {}

impl<'a, C: Classifier> SelectionContext<'a, C> {
    /// Trains on the training rows with `feats` and returns the
    /// validation error.
    pub fn evaluate(&self, feats: &[usize]) -> f64 {
        hamlet_obs::counter_add!("hamlet_fs_evaluations_total", 1);
        let model = self.classifier.fit(self.data, self.train, feats);
        self.metric.eval(&model, self.data, self.validation)
    }
}

/// One accepted step of a greedy search, for post-hoc inspection of the
/// path a wrapper took (e.g. diagnosing the local optima Sec 5.1
/// observes for JoinAll's redundant inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStep {
    /// Feature position added (forward) or removed (backward).
    pub feature: usize,
    /// Validation error after the step.
    pub validation_error: f64,
}

/// Outcome of a feature selection run.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Selected feature positions (into the dataset), ascending.
    pub features: Vec<usize>,
    /// Validation error of the selected subset.
    pub validation_error: f64,
    /// Number of model fits performed — the unit the paper's runtime
    /// comparison counts (each fit costs time proportional to the number
    /// of candidate features).
    pub model_fits: usize,
    /// Accepted greedy steps, in order (empty for filters/embedded,
    /// whose "path" is the ranking).
    pub trace: Vec<SearchStep>,
}

impl SelectionResult {
    /// Names of the selected features.
    pub fn feature_names<'d>(&self, data: &'d Dataset) -> Vec<&'d str> {
        data.feature_names(&self.features)
    }
}

/// Minimum improvement in validation error for a greedy step to be kept.
const IMPROVEMENT_TOL: f64 = 1e-9;

/// Candidate-sweep engine: a [`SuffStats`] cache over the context's
/// `(data, train)` pair plus a worker count, shared by every selection
/// method run against the same fold.
///
/// Each greedy step's candidate sweep runs in parallel across scoped
/// threads ([`hamlet_obs::parallel::run_indexed`], following the
/// `HAMLET_THREADS` convention via
/// [`hamlet_obs::env::resolved_threads`]), then reduces **in candidate
/// index order** with exactly the serial scan's comparison chain — so
/// results, traces, and `model_fits` are bit-for-bit identical at any
/// thread count, and identical to the uncached serial implementations in
/// [`mod@reference`] for deterministic-decomposable classifiers (Naive
/// Bayes). Candidate fits warm-start from the current subset's model
/// where the classifier supports it ([`SweepFit`]); warm starts never
/// count toward `model_fits`, keeping the paper's fit accounting equal
/// to the reference path.
pub struct SweepEngine<'a, C: Classifier> {
    ctx: SelectionContext<'a, C>,
    stats: SuffStats<'a>,
    threads: usize,
}

impl<'a, C> SweepEngine<'a, C>
where
    C: SweepFit + Sync,
    C::Fitted: Sync,
{
    /// Builds the statistics cache for the context's `(data, train)`
    /// pair. Worker count comes from the once-per-process
    /// `HAMLET_THREADS` resolution.
    pub fn new(ctx: &SelectionContext<'a, C>) -> Self {
        Self {
            ctx: *ctx,
            stats: SuffStats::new(ctx.data, ctx.train),
            threads: hamlet_obs::env::resolved_threads(),
        }
    }

    /// Overrides the worker count (results do not depend on it).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        self.threads = threads;
        self
    }

    /// The shared statistics cache (one per fold; reusable across
    /// methods and by final-model fits).
    pub fn stats(&self) -> &SuffStats<'a> {
        &self.stats
    }

    /// The selection context the engine sweeps over.
    pub fn context(&self) -> &SelectionContext<'a, C> {
        &self.ctx
    }

    /// Fits `feats` through the cache and returns the validation error.
    fn evaluate(&self, feats: &[usize], warm: Option<&C::Fitted>) -> f64 {
        hamlet_obs::counter_add!("hamlet_fs_evaluations_total", 1);
        let model = self.ctx.classifier.fit_swept(&self.stats, feats, warm);
        self.ctx
            .classifier
            .eval_swept(&model, self.ctx.data, self.ctx.validation, self.ctx.metric)
    }

    /// Fits the current subset as the warm-start parent of the next
    /// sweep (not counted as a candidate evaluation).
    fn fit_parent(&self, feats: &[usize]) -> C::Fitted {
        self.ctx.classifier.fit_swept(&self.stats, feats, None)
    }

    /// Validation error of an already-fitted model.
    fn eval_model(&self, model: &C::Fitted) -> f64 {
        hamlet_obs::counter_add!("hamlet_fs_evaluations_total", 1);
        self.ctx
            .classifier
            .eval_swept(model, self.ctx.data, self.ctx.validation, self.ctx.metric)
    }

    /// Errors of one forward sweep, through the classifier's batched
    /// path when it has one ([`SweepFit::forward_sweep`], a single pass
    /// over the validation rows per worker), else one fit + eval per
    /// candidate across the worker pool. Both routes produce the same
    /// floats in candidate order.
    fn forward_sweep_errs(
        &self,
        selected: &[usize],
        remaining: &[usize],
        parent: &C::Fitted,
    ) -> Vec<f64> {
        if let Some(errs) = self.ctx.classifier.forward_sweep(
            &self.stats,
            selected,
            remaining,
            self.ctx.validation,
            self.ctx.metric,
            self.threads,
        ) {
            hamlet_obs::counter_add!("hamlet_fs_evaluations_total", errs.len() as u64);
            return errs;
        }
        hamlet_obs::parallel::run_indexed(remaining.len(), self.threads, &|i| {
            let mut trial = selected.to_vec();
            trial.push(remaining[i]);
            trial.sort_unstable();
            self.evaluate(&trial, Some(parent))
        })
    }

    /// Errors of one backward sweep (drop each position of the sorted
    /// current subset); batched when available, per-candidate otherwise.
    fn backward_sweep_errs(&self, selected: &[usize], parent: &C::Fitted) -> Vec<f64> {
        if let Some(errs) = self.ctx.classifier.backward_sweep(
            &self.stats,
            selected,
            self.ctx.validation,
            self.ctx.metric,
            self.threads,
        ) {
            hamlet_obs::counter_add!("hamlet_fs_evaluations_total", errs.len() as u64);
            return errs;
        }
        hamlet_obs::parallel::run_indexed(selected.len(), self.threads, &|i| {
            let mut trial = selected.to_vec();
            trial.remove(i);
            self.evaluate(&trial, Some(parent))
        })
    }

    /// Greedy forward selection with parallel candidate sweeps; see
    /// [`forward_selection`].
    pub fn forward(&self, candidates: &[usize]) -> SelectionResult {
        let mut selected: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = candidates.to_vec();
        let mut fits = 1usize;
        let mut trace: Vec<SearchStep> = Vec::new();
        let mut parent = self.fit_parent(&selected);
        let mut best_err = self.eval_model(&parent); // majority-class baseline

        loop {
            let errs = self.forward_sweep_errs(&selected, &remaining, &parent);
            fits += errs.len();
            // Reduce in candidate index order: identical winner to the
            // serial scan regardless of which worker finished first.
            let mut best_step: Option<(usize, f64)> = None; // (position in remaining, err)
            for (i, &err) in errs.iter().enumerate() {
                if err + IMPROVEMENT_TOL < best_step.map_or(best_err, |(_, e)| e) {
                    best_step = Some((i, err));
                }
            }
            match best_step {
                Some((i, err)) if err + IMPROVEMENT_TOL < best_err => {
                    let f = remaining.swap_remove(i);
                    selected.push(f);
                    best_err = err;
                    trace.push(SearchStep {
                        feature: f,
                        validation_error: err,
                    });
                }
                _ => break,
            }
            if remaining.is_empty() {
                break;
            }
            parent = self.fit_parent(&selected);
        }

        selected.sort_unstable();
        SelectionResult {
            features: selected,
            validation_error: best_err,
            model_fits: fits,
            trace,
        }
    }

    /// Greedy backward selection with parallel candidate sweeps; see
    /// [`backward_selection`].
    pub fn backward(&self, candidates: &[usize]) -> SelectionResult {
        let mut selected: Vec<usize> = candidates.to_vec();
        selected.sort_unstable();
        let mut fits = 1usize;
        let mut trace: Vec<SearchStep> = Vec::new();
        let mut parent = self.fit_parent(&selected);
        let mut best_err = self.eval_model(&parent);

        while selected.len() > 1 {
            let errs = self.backward_sweep_errs(&selected, &parent);
            fits += errs.len();
            let mut best_step: Option<(usize, f64)> = None;
            for (i, &err) in errs.iter().enumerate() {
                if err + IMPROVEMENT_TOL < best_step.map_or(best_err, |(_, e)| e) {
                    best_step = Some((i, err));
                }
            }
            match best_step {
                Some((i, err)) if err + IMPROVEMENT_TOL < best_err => {
                    let removed = selected.remove(i);
                    best_err = err;
                    trace.push(SearchStep {
                        feature: removed,
                        validation_error: err,
                    });
                    parent = self.fit_parent(&selected);
                }
                _ => break,
            }
        }

        SelectionResult {
            features: selected,
            validation_error: best_err,
            model_fits: fits,
            trace,
        }
    }

    /// Filter selection: ranks by cached scores, evaluates every top-`k`
    /// prefix in parallel; see [`filter_selection`].
    pub fn filter(&self, candidates: &[usize], score: FilterScore) -> SelectionResult {
        let mut ranked: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&f| (f, score.score_cached(&self.stats, f)))
            .collect();
        // Descending by score; ties broken by feature position for determinism.
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        let errs = hamlet_obs::parallel::run_indexed(ranked.len(), self.threads, &|i| {
            let mut prefix: Vec<usize> = ranked[..=i].iter().map(|&(f, _)| f).collect();
            prefix.sort_unstable();
            self.evaluate(&prefix, None)
        });
        let fits = errs.len();
        let mut best: Option<(usize, f64)> = None; // (k, err)
        for (i, &err) in errs.iter().enumerate() {
            if best.is_none_or(|(_, e)| err + IMPROVEMENT_TOL < e) {
                best = Some((i + 1, err));
            }
        }

        let (k, err) = best.unwrap_or((0, f64::INFINITY));
        let mut features: Vec<usize> = ranked[..k].iter().map(|&(f, _)| f).collect();
        features.sort_unstable();
        SelectionResult {
            features,
            validation_error: err,
            model_fits: fits,
            trace: Vec::new(),
        }
    }

    /// Exhaustive subset search over all `2^k` masks, evaluated in
    /// parallel; see [`exhaustive_selection`].
    ///
    /// # Panics
    /// Panics if more than 20 candidates are given (2^20 fits is the
    /// sanity ceiling).
    pub fn exhaustive(&self, candidates: &[usize]) -> SelectionResult {
        assert!(
            candidates.len() <= 20,
            "exhaustive search over {} candidates is intractable",
            candidates.len()
        );
        let subset_of = |mask: usize| -> Vec<usize> {
            candidates
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &f)| f)
                .collect()
        };
        let n_masks = 1usize << candidates.len();
        let errs = hamlet_obs::parallel::run_indexed(n_masks, self.threads, &|mask| {
            self.evaluate(&subset_of(mask), None)
        });
        // Reduce in mask order with the serial tie-break: strictly
        // better error, or equal error with fewer features.
        let mut best: Option<(usize, f64)> = None; // (mask, err)
        for (mask, &err) in errs.iter().enumerate() {
            let better = match &best {
                None => true,
                Some((b, e)) => {
                    err + IMPROVEMENT_TOL < *e
                        || ((err - e).abs() <= IMPROVEMENT_TOL
                            && mask.count_ones() < b.count_ones())
                }
            };
            if better {
                best = Some((mask, err));
            }
        }
        let (mask, validation_error) = best.expect("at least the empty subset was evaluated");
        SelectionResult {
            features: subset_of(mask),
            validation_error,
            model_fits: n_masks,
            trace: Vec::new(),
        }
    }
}

/// Sequential greedy **forward selection** (Sec 2.2): start from the empty
/// set; at each step add the candidate that most reduces validation error;
/// stop when no addition improves it.
///
/// Candidate sweeps run through a fresh [`SweepEngine`] (shared
/// statistics, parallel candidates, deterministic reduce); to reuse one
/// statistics cache across several methods on the same fold, build the
/// engine once and call its methods directly.
pub fn forward_selection<C>(ctx: &SelectionContext<'_, C>, candidates: &[usize]) -> SelectionResult
where
    C: SweepFit + Sync,
    C::Fitted: Sync,
{
    SweepEngine::new(ctx).forward(candidates)
}

/// Sequential greedy **backward selection** (Sec 2.2): start from the full
/// candidate set; at each step drop the feature whose removal most reduces
/// validation error; stop when no removal improves it.
pub fn backward_selection<C>(ctx: &SelectionContext<'_, C>, candidates: &[usize]) -> SelectionResult
where
    C: SweepFit + Sync,
    C::Fitted: Sync,
{
    SweepEngine::new(ctx).backward(candidates)
}

/// Scoring function for filter methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterScore {
    /// `I(F;Y)` — "tells us how much the knowledge of F reduces the
    /// entropy of Y" (Sec 2.2).
    MutualInformation,
    /// `IGR(F;Y) = I(F;Y)/H(F)` — "normalizes it by the feature's
    /// entropy" (Sec 2.2).
    InformationGainRatio,
}

impl FilterScore {
    /// Scores one feature against the labels over the training rows.
    pub fn score(self, data: &Dataset, train: &[usize], feat: usize) -> f64 {
        let f = data.feature(feat);
        match self {
            Self::MutualInformation => mutual_information(
                &f.codes,
                f.domain_size,
                data.labels(),
                data.n_classes(),
                train,
            ),
            Self::InformationGainRatio => information_gain_ratio(
                &f.codes,
                f.domain_size,
                data.labels(),
                data.n_classes(),
                train,
            ),
        }
    }

    /// [`FilterScore::score`] served from a [`SuffStats`] cache:
    /// bit-for-bit the same value, but the per-feature histogram and the
    /// class counts (identical across every feature scored in one filter
    /// pass) are computed once per `(fold, feature)` instead of per call.
    pub fn score_cached(self, stats: &SuffStats<'_>, feat: usize) -> f64 {
        match self {
            Self::MutualInformation => stats.mutual_information(feat),
            Self::InformationGainRatio => stats.information_gain_ratio(feat),
        }
    }

    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Self::MutualInformation => "MI",
            Self::InformationGainRatio => "IGR",
        }
    }
}

/// **Filter selection** (Sec 2.2): rank all candidates by `score` on the
/// training rows, then choose the top-`k` prefix whose validation error is
/// lowest ("the number of features filtered after ranking was actually
/// tuned using holdout validation as a wrapper", Sec 5.1).
pub fn filter_selection<C>(
    ctx: &SelectionContext<'_, C>,
    candidates: &[usize],
    score: FilterScore,
) -> SelectionResult
where
    C: SweepFit + Sync,
    C::Fitted: Sync,
{
    SweepEngine::new(ctx).filter(candidates, score)
}

/// **Embedded L1** (Secs 2.2, 5.3): trains L1-regularized logistic
/// regression on all candidates; the selection is the set of features
/// whose coefficient blocks did not vanish.
pub fn embedded_l1(
    data: &Dataset,
    train: &[usize],
    candidates: &[usize],
    lambda: f64,
    seed: u64,
) -> SelectionResult {
    let learner = LogisticRegression::l1(lambda).with_seed(seed);
    let model = learner.fit(data, train, candidates);
    let features = model.surviving_features(
        data,
        hamlet_ml::logreg::LogisticRegressionModel::DROP_TOLERANCE,
    );
    SelectionResult {
        features,
        validation_error: f64::NAN, // embedded methods do not hold out
        model_fits: 1,
        trace: Vec::new(),
    }
}

/// **Embedded L2**: trains L2-regularized logistic regression on all
/// candidates. L2 shrinks but does not vanish coefficients, so all
/// candidates survive; the regularization is the implicit selection.
pub fn embedded_l2(
    data: &Dataset,
    train: &[usize],
    candidates: &[usize],
    lambda: f64,
    seed: u64,
) -> SelectionResult {
    let learner = LogisticRegression::l2(lambda).with_seed(seed);
    let _model = learner.fit(data, train, candidates);
    SelectionResult {
        features: candidates.to_vec(),
        validation_error: f64::NAN,
        model_fits: 1,
        trace: Vec::new(),
    }
}

/// The paper's four explicit feature-selection methods (Sec 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Sequential greedy forward selection.
    Forward,
    /// Sequential greedy backward selection.
    Backward,
    /// Mutual-information filter with tuned cutoff.
    FilterMi,
    /// Information-gain-ratio filter with tuned cutoff.
    FilterIgr,
}

impl Method {
    /// All four methods, in the paper's presentation order.
    pub const ALL: [Method; 4] = [
        Method::Forward,
        Method::Backward,
        Method::FilterMi,
        Method::FilterIgr,
    ];

    /// Runs the method through a fresh [`SweepEngine`]. Callers running
    /// several methods over the same fold should build one engine and
    /// use [`Method::run_with`] so the statistics cache is shared.
    pub fn run<C>(self, ctx: &SelectionContext<'_, C>, candidates: &[usize]) -> SelectionResult
    where
        C: SweepFit + Sync,
        C::Fitted: Sync,
    {
        self.run_with(&SweepEngine::new(ctx), candidates)
    }

    /// Runs the method on an existing engine (shared statistics cache).
    pub fn run_with<C>(self, engine: &SweepEngine<'_, C>, candidates: &[usize]) -> SelectionResult
    where
        C: SweepFit + Sync,
        C::Fitted: Sync,
    {
        let _span = hamlet_obs::span!(
            "fs.method",
            name = self.name(),
            candidates = candidates.len()
        );
        match self {
            Method::Forward => engine.forward(candidates),
            Method::Backward => engine.backward(candidates),
            Method::FilterMi => engine.filter(candidates, FilterScore::MutualInformation),
            Method::FilterIgr => engine.filter(candidates, FilterScore::InformationGainRatio),
        }
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Forward => "Forward Selection",
            Method::Backward => "Backward Selection",
            Method::FilterMi => "MI Filter",
            Method::FilterIgr => "IGR Filter",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_ml::dataset::Feature;
    use hamlet_ml::naive_bayes::NaiveBayes;

    /// y determined by feature 0; features 1, 2 are noise with large
    /// domains.
    fn data() -> Dataset {
        let n = 400u32;
        let x0: Vec<u32> = (0..n).map(|i| i % 2).collect();
        let noise1: Vec<u32> = (0..n).map(|i| (i * 7 + 3) % 5).collect();
        let noise2: Vec<u32> = (0..n).map(|i| (i * 13 + 1) % 4).collect();
        let y = x0.clone();
        Dataset::new(
            vec![
                Feature {
                    name: "signal".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "noise1".into(),
                    domain_size: 5,
                    codes: noise1,
                },
                Feature {
                    name: "noise2".into(),
                    domain_size: 4,
                    codes: noise2,
                },
            ],
            y,
            2,
        )
    }

    fn ctx<'a>(
        d: &'a Dataset,
        nb: &'a NaiveBayes,
        rows: &'a [usize],
    ) -> SelectionContext<'a, NaiveBayes> {
        let half = rows.len() / 2;
        SelectionContext {
            data: d,
            train: &rows[..half],
            validation: &rows[half..],
            classifier: nb,
            metric: ErrorMetric::ZeroOne,
        }
    }

    #[test]
    fn forward_finds_signal() {
        let d = data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..400).collect();
        let c = ctx(&d, &nb, &rows);
        let r = forward_selection(&c, &[0, 1, 2]);
        assert!(r.features.contains(&0));
        assert_eq!(r.validation_error, 0.0);
        assert!(r.model_fits >= 4); // baseline + at least one sweep
    }

    #[test]
    fn forward_stops_when_no_improvement() {
        let d = data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..400).collect();
        let c = ctx(&d, &nb, &rows);
        let r = forward_selection(&c, &[0, 1, 2]);
        // Once the signal yields zero error, noise cannot improve further.
        assert_eq!(r.features, vec![0]);
    }

    #[test]
    fn backward_keeps_signal() {
        let d = data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..400).collect();
        let c = ctx(&d, &nb, &rows);
        let r = backward_selection(&c, &[0, 1, 2]);
        assert!(r.features.contains(&0));
        assert_eq!(r.validation_error, 0.0);
    }

    #[test]
    fn filters_rank_signal_first() {
        let d = data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..400).collect();
        let c = ctx(&d, &nb, &rows);
        for score in [
            FilterScore::MutualInformation,
            FilterScore::InformationGainRatio,
        ] {
            let r = filter_selection(&c, &[0, 1, 2], score);
            assert!(r.features.contains(&0), "{score:?} missed the signal");
            assert_eq!(r.validation_error, 0.0);
            assert_eq!(r.model_fits, 3); // one fit per candidate prefix
        }
    }

    #[test]
    fn filter_scores_ordering() {
        let d = data();
        let rows: Vec<usize> = (0..400).collect();
        let mi_signal = FilterScore::MutualInformation.score(&d, &rows, 0);
        let mi_noise = FilterScore::MutualInformation.score(&d, &rows, 1);
        assert!(mi_signal > mi_noise);
    }

    #[test]
    fn embedded_l1_drops_noise() {
        let d = data();
        let rows: Vec<usize> = (0..400).collect();
        let r = embedded_l1(&d, &rows, &[0, 1, 2], 0.02, 0);
        assert!(r.features.contains(&0));
        assert!(!r.features.contains(&1));
        assert!(!r.features.contains(&2));
    }

    #[test]
    fn embedded_l2_keeps_all() {
        let d = data();
        let rows: Vec<usize> = (0..400).collect();
        let r = embedded_l2(&d, &rows, &[0, 1, 2], 0.01, 0);
        assert_eq!(r.features, vec![0, 1, 2]);
    }

    #[test]
    fn method_dispatch_matches_direct_calls() {
        let d = data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..400).collect();
        let c = ctx(&d, &nb, &rows);
        let cands = [0usize, 1, 2];
        assert_eq!(
            Method::Forward.run(&c, &cands),
            forward_selection(&c, &cands)
        );
        assert_eq!(
            Method::FilterMi.run(&c, &cands),
            filter_selection(&c, &cands, FilterScore::MutualInformation)
        );
        assert_eq!(Method::ALL.len(), 4);
        assert_eq!(Method::Backward.name(), "Backward Selection");
    }

    #[test]
    fn result_feature_names() {
        let d = data();
        let r = SelectionResult {
            features: vec![0, 2],
            validation_error: 0.0,
            model_fits: 1,
            trace: Vec::new(),
        };
        assert_eq!(r.feature_names(&d), vec!["signal", "noise2"]);
    }

    #[test]
    fn empty_candidates_forward() {
        let d = data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..400).collect();
        let c = ctx(&d, &nb, &rows);
        let r = forward_selection(&c, &[]);
        assert!(r.features.is_empty());
        assert_eq!(r.model_fits, 1);
    }

    #[test]
    fn cart_sweeps_match_reference_and_are_thread_invariant() {
        // Trees ride the engine through their `SweepFit` impl (a
        // SuffStats-backed root table); the result must equal the
        // uncached serial reference and be identical at any thread
        // count.
        let d = data();
        let tree = hamlet_trees::CartTree::default();
        let rows: Vec<usize> = (0..400).collect();
        let half = rows.len() / 2;
        let c = SelectionContext {
            data: &d,
            train: &rows[..half],
            validation: &rows[half..],
            classifier: &tree,
            metric: ErrorMetric::ZeroOne,
        };
        let cands = [0usize, 1, 2];
        let serial = SweepEngine::new(&c).with_threads(1);
        let wide = SweepEngine::new(&c).with_threads(8);
        for (lhs, rhs, oracle) in [
            (
                serial.forward(&cands),
                wide.forward(&cands),
                reference::forward_selection(&c, &cands),
            ),
            (
                serial.backward(&cands),
                wide.backward(&cands),
                reference::backward_selection(&c, &cands),
            ),
        ] {
            assert_eq!(lhs, rhs, "thread-count changed a tree sweep");
            assert_eq!(lhs, oracle, "engine diverged from the reference");
        }
        assert!(serial.forward(&cands).features.contains(&0));
    }

    #[test]
    fn gbt_forward_selection_runs_through_engine() {
        let d = data();
        let gbt = hamlet_trees::Gbt {
            rounds: 5,
            ..hamlet_trees::Gbt::default()
        };
        let rows: Vec<usize> = (0..400).collect();
        let half = rows.len() / 2;
        let c = SelectionContext {
            data: &d,
            train: &rows[..half],
            validation: &rows[half..],
            classifier: &gbt,
            metric: ErrorMetric::ZeroOne,
        };
        let cands = [0usize, 1, 2];
        let r = SweepEngine::new(&c).with_threads(4).forward(&cands);
        assert_eq!(r, reference::forward_selection(&c, &cands));
        assert!(r.features.contains(&0));
        assert_eq!(r.validation_error, 0.0);
    }
}

/// Schema-driven pre-filtering of redundant features.
///
/// The paper's key observation generalized (Cor C.1): given an acyclic
/// set of FDs over the candidate features, every feature appearing in a
/// dependent set is *provably* redundant — it can be dropped before any
/// instance-level search, "using just the metadata". Join avoidance is
/// the special case where the FDs are `FK_i -> X_Ri`.
pub mod fd_prefilter {
    use hamlet_ml::dataset::Dataset;
    use hamlet_relational::fd::{is_acyclic, redundant_attributes, FunctionalDependency};

    /// Outcome of the pre-filter.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct PrefilterResult {
        /// Candidate positions that survive (determinants and
        /// FD-untouched features).
        pub kept: Vec<usize>,
        /// Candidate positions dropped as FD-redundant.
        pub dropped: Vec<usize>,
    }

    /// Drops every candidate that is a dependent of some FD in `fds`.
    ///
    /// # Panics
    /// Panics if `fds` is cyclic — redundancy of dependents is only
    /// guaranteed for acyclic sets (Def C.1).
    pub fn prefilter(
        data: &Dataset,
        candidates: &[usize],
        fds: &[FunctionalDependency],
    ) -> PrefilterResult {
        assert!(is_acyclic(fds), "FD set must be acyclic (Def C.1)");
        let redundant = redundant_attributes(fds);
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        for &c in candidates {
            if redundant.iter().any(|r| r == &data.feature(c).name) {
                dropped.push(c);
            } else {
                kept.push(c);
            }
        }
        PrefilterResult { kept, dropped }
    }
}

#[cfg(test)]
mod fd_prefilter_tests {
    use super::fd_prefilter::prefilter;
    use super::*;
    use hamlet_ml::dataset::Feature;
    use hamlet_ml::naive_bayes::NaiveBayes;
    use hamlet_relational::fd::FunctionalDependency;

    /// fk determines xr; y depends on xr (so on fk too).
    fn fd_data() -> Dataset {
        let n = 240u32;
        let fk: Vec<u32> = (0..n).map(|i| i % 12).collect();
        let xr: Vec<u32> = fk.iter().map(|&k| k % 3).collect();
        let y: Vec<u32> = xr.iter().map(|&v| u32::from(v == 0)).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "fk".into(),
                    domain_size: 12,
                    codes: fk,
                },
                Feature {
                    name: "xr".into(),
                    domain_size: 3,
                    codes: xr,
                },
                Feature {
                    name: "noise".into(),
                    domain_size: 2,
                    codes: (0..n).map(|i| (i / 2) % 2).collect(),
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn prefilter_drops_dependents_only() {
        let d = fd_data();
        let fds = vec![FunctionalDependency::new(&["fk"], &["xr"])];
        let r = prefilter(&d, &[0, 1, 2], &fds);
        assert_eq!(r.kept, vec![0, 2]);
        assert_eq!(r.dropped, vec![1]);
    }

    #[test]
    fn prefiltered_search_matches_full_search_accuracy() {
        let d = fd_data();
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..240).collect();
        let half = rows.len() / 2;
        let ctx = SelectionContext {
            data: &d,
            train: &rows[..half],
            validation: &rows[half..],
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let fds = vec![FunctionalDependency::new(&["fk"], &["xr"])];
        let pre = prefilter(&d, &[0, 1, 2], &fds);
        let full = forward_selection(&ctx, &[0, 1, 2]);
        let filtered = forward_selection(&ctx, &pre.kept);
        // The information-theoretic guarantee: dropping dependents cannot
        // cost validation accuracy (fk subsumes xr).
        assert!(filtered.validation_error <= full.validation_error + 1e-12);
        // And the filtered search does no more work.
        assert!(filtered.model_fits <= full.model_fits);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_fds_panic() {
        let d = fd_data();
        let fds = vec![
            FunctionalDependency::new(&["fk"], &["xr"]),
            FunctionalDependency::new(&["xr"], &["fk"]),
        ];
        prefilter(&d, &[0, 1], &fds);
    }
}

/// **Exhaustive selection**: evaluates every subset of the candidates and
/// returns the validation-optimal one. Exponential — intended for small
/// candidate sets, as the gold standard the greedy wrappers approximate
/// ("these feature selection methods are not globally optimal", Sec 5.1).
///
/// # Panics
/// Panics if more than 20 candidates are given (2^20 fits is the sanity
/// ceiling).
pub fn exhaustive_selection<C>(
    ctx: &SelectionContext<'_, C>,
    candidates: &[usize],
) -> SelectionResult
where
    C: SweepFit + Sync,
    C::Fitted: Sync,
{
    SweepEngine::new(ctx).exhaustive(candidates)
}

/// The seed implementations: serial scans, one full `classifier.fit`
/// per candidate, no statistics cache, no warm starts.
///
/// Kept as the semantics oracle for the [`SweepEngine`] paths — the
/// parity proptests assert that every engine-backed method returns the
/// **identical** [`SelectionResult`] (features, errors, trace, and
/// `model_fits`) for Naive Bayes at any thread count — and as the
/// "uncached" arm of `BENCH_selection.json`.
pub mod reference {
    use super::*;

    /// Serial, uncached [`forward_selection`](super::forward_selection).
    pub fn forward_selection<C: Classifier>(
        ctx: &SelectionContext<'_, C>,
        candidates: &[usize],
    ) -> SelectionResult {
        let mut selected: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = candidates.to_vec();
        let mut fits = 1usize;
        let mut trace: Vec<SearchStep> = Vec::new();
        let mut best_err = ctx.evaluate(&selected); // majority-class baseline

        loop {
            let mut best_step: Option<(usize, f64)> = None; // (position in remaining, err)
            for (i, &f) in remaining.iter().enumerate() {
                let mut trial = selected.clone();
                trial.push(f);
                trial.sort_unstable();
                let err = ctx.evaluate(&trial);
                fits += 1;
                if err + IMPROVEMENT_TOL < best_step.map_or(best_err, |(_, e)| e) {
                    best_step = Some((i, err));
                }
            }
            match best_step {
                Some((i, err)) if err + IMPROVEMENT_TOL < best_err => {
                    let f = remaining.swap_remove(i);
                    selected.push(f);
                    best_err = err;
                    trace.push(SearchStep {
                        feature: f,
                        validation_error: err,
                    });
                }
                _ => break,
            }
            if remaining.is_empty() {
                break;
            }
        }

        selected.sort_unstable();
        SelectionResult {
            features: selected,
            validation_error: best_err,
            model_fits: fits,
            trace,
        }
    }

    /// Serial, uncached [`backward_selection`](super::backward_selection).
    pub fn backward_selection<C: Classifier>(
        ctx: &SelectionContext<'_, C>,
        candidates: &[usize],
    ) -> SelectionResult {
        let mut selected: Vec<usize> = candidates.to_vec();
        selected.sort_unstable();
        let mut fits = 1usize;
        let mut trace: Vec<SearchStep> = Vec::new();
        let mut best_err = ctx.evaluate(&selected);

        while selected.len() > 1 {
            let mut best_step: Option<(usize, f64)> = None;
            for i in 0..selected.len() {
                let mut trial = selected.clone();
                trial.remove(i);
                let err = ctx.evaluate(&trial);
                fits += 1;
                if err + IMPROVEMENT_TOL < best_step.map_or(best_err, |(_, e)| e) {
                    best_step = Some((i, err));
                }
            }
            match best_step {
                Some((i, err)) if err + IMPROVEMENT_TOL < best_err => {
                    let removed = selected.remove(i);
                    best_err = err;
                    trace.push(SearchStep {
                        feature: removed,
                        validation_error: err,
                    });
                }
                _ => break,
            }
        }

        SelectionResult {
            features: selected,
            validation_error: best_err,
            model_fits: fits,
            trace,
        }
    }

    /// Serial, uncached [`filter_selection`](super::filter_selection):
    /// recomputes each feature's histogram (and the class counts) per
    /// score call.
    pub fn filter_selection<C: Classifier>(
        ctx: &SelectionContext<'_, C>,
        candidates: &[usize],
        score: FilterScore,
    ) -> SelectionResult {
        let mut ranked: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&f| (f, score.score(ctx.data, ctx.train, f)))
            .collect();
        // Descending by score; ties broken by feature position for determinism.
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

        let mut fits = 0usize;
        let mut best: Option<(usize, f64)> = None; // (k, err)
        for k in 1..=ranked.len() {
            let mut prefix: Vec<usize> = ranked[..k].iter().map(|&(f, _)| f).collect();
            prefix.sort_unstable();
            let err = ctx.evaluate(&prefix);
            fits += 1;
            if best.is_none_or(|(_, e)| err + IMPROVEMENT_TOL < e) {
                best = Some((k, err));
            }
        }

        let (k, err) = best.unwrap_or((0, f64::INFINITY));
        let mut features: Vec<usize> = ranked[..k].iter().map(|&(f, _)| f).collect();
        features.sort_unstable();
        SelectionResult {
            features,
            validation_error: err,
            model_fits: fits,
            trace: Vec::new(),
        }
    }

    /// Serial, uncached [`exhaustive_selection`](super::exhaustive_selection).
    ///
    /// # Panics
    /// Panics if more than 20 candidates are given.
    pub fn exhaustive_selection<C: Classifier>(
        ctx: &SelectionContext<'_, C>,
        candidates: &[usize],
    ) -> SelectionResult {
        assert!(
            candidates.len() <= 20,
            "exhaustive search over {} candidates is intractable",
            candidates.len()
        );
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut fits = 0usize;
        for mask in 0u32..(1 << candidates.len()) {
            let subset: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &f)| f)
                .collect();
            let err = ctx.evaluate(&subset);
            fits += 1;
            let better = match &best {
                None => true,
                // Strictly better error, or equal error with fewer features
                // (prefer parsimony, deterministic tie-break).
                Some((b, e)) => {
                    err + IMPROVEMENT_TOL < *e
                        || ((err - e).abs() <= IMPROVEMENT_TOL && subset.len() < b.len())
                }
            };
            if better {
                best = Some((subset, err));
            }
        }
        let (features, validation_error) = best.expect("at least the empty subset was evaluated");
        SelectionResult {
            features,
            validation_error,
            model_fits: fits,
            trace: Vec::new(),
        }
    }

    /// Runs `method` through the serial, uncached implementations.
    pub fn run_method<C: Classifier>(
        method: Method,
        ctx: &SelectionContext<'_, C>,
        candidates: &[usize],
    ) -> SelectionResult {
        match method {
            Method::Forward => forward_selection(ctx, candidates),
            Method::Backward => backward_selection(ctx, candidates),
            Method::FilterMi => filter_selection(ctx, candidates, FilterScore::MutualInformation),
            Method::FilterIgr => {
                filter_selection(ctx, candidates, FilterScore::InformationGainRatio)
            }
        }
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use hamlet_ml::dataset::Feature;
    use hamlet_ml::naive_bayes::NaiveBayes;

    /// y = x0 XOR x1: forward selection cannot get started (neither
    /// feature helps alone) but exhaustive search finds the pair.
    /// (NB cannot represent XOR of two features either, so we add the
    /// XOR itself as a third "interaction" candidate; the point is the
    /// search behaviour, not the model class.)
    fn xor_with_interaction(n: usize) -> Dataset {
        let x0: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let x1: Vec<u32> = (0..n as u32).map(|i| (i / 2) % 2).collect();
        let inter: Vec<u32> = x0.iter().zip(&x1).map(|(&a, &b)| a * 2 + b).collect();
        let y: Vec<u32> = x0.iter().zip(&x1).map(|(&a, &b)| a ^ b).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 2,
                    codes: x1,
                },
                Feature {
                    name: "pair".into(),
                    domain_size: 4,
                    codes: inter,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let d = xor_with_interaction(200);
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..200).collect();
        let ctx = SelectionContext {
            data: &d,
            train: &rows[..100],
            validation: &rows[100..],
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let ex = exhaustive_selection(&ctx, &[0, 1, 2]);
        assert_eq!(ex.validation_error, 0.0);
        assert!(
            ex.features.contains(&2),
            "pair feature solves it: {:?}",
            ex.features
        );
        assert_eq!(ex.model_fits, 8);
        // Exhaustive is never worse than the greedy wrappers.
        let fwd = forward_selection(&ctx, &[0, 1, 2]);
        let bwd = backward_selection(&ctx, &[0, 1, 2]);
        assert!(ex.validation_error <= fwd.validation_error + 1e-12);
        assert!(ex.validation_error <= bwd.validation_error + 1e-12);
    }

    #[test]
    fn prefers_smaller_subsets_on_ties() {
        let d = xor_with_interaction(200);
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..200).collect();
        let ctx = SelectionContext {
            data: &d,
            train: &rows[..100],
            validation: &rows[100..],
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let ex = exhaustive_selection(&ctx, &[0, 1, 2]);
        // {pair} alone reaches zero error; supersets tie but lose.
        assert_eq!(ex.features, vec![2]);
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn too_many_candidates_panics() {
        let d = xor_with_interaction(8);
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..8).collect();
        let ctx = SelectionContext {
            data: &d,
            train: &rows[..4],
            validation: &rows[4..],
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let candidates: Vec<usize> = (0..21).collect();
        exhaustive_selection(&ctx, &candidates);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use hamlet_ml::dataset::Feature;
    use hamlet_ml::naive_bayes::NaiveBayes;

    #[test]
    fn forward_trace_records_accepted_steps() {
        let n = 400u32;
        // y = x0 exactly; x1 is a noisy copy. Forward selection must
        // accept at least the exact feature, and the trace mirrors the
        // accepted path.
        let x0: Vec<u32> = (0..n).map(|i| i % 2).collect();
        let x1: Vec<u32> = x0
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 10 == 0 { 1 - v } else { v })
            .collect();
        let y: Vec<u32> = x0.clone();
        let d = Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 2,
                    codes: x1,
                },
            ],
            y,
            2,
        );
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..n as usize).collect();
        let ctx = SelectionContext {
            data: &d,
            train: &rows[..200],
            validation: &rows[200..],
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let r = forward_selection(&ctx, &[0, 1]);
        assert_eq!(r.trace.len(), r.features.len());
        // Errors along the trace are non-increasing.
        for w in r.trace.windows(2) {
            assert!(w[1].validation_error <= w[0].validation_error + 1e-12);
        }
        // The last trace error equals the reported validation error.
        assert_eq!(r.trace.last().unwrap().validation_error, r.validation_error);
    }

    #[test]
    fn backward_trace_lists_removals() {
        let n = 400u32;
        let signal: Vec<u32> = (0..n).map(|i| i % 2).collect();
        let noise: Vec<u32> = (0..n).map(|i| (i * 13) % 7).collect();
        let d = Dataset::new(
            vec![
                Feature {
                    name: "s".into(),
                    domain_size: 2,
                    codes: signal.clone(),
                },
                Feature {
                    name: "noise".into(),
                    domain_size: 7,
                    codes: noise,
                },
            ],
            signal,
            2,
        );
        let nb = NaiveBayes::default();
        let rows: Vec<usize> = (0..n as usize).collect();
        let ctx = SelectionContext {
            data: &d,
            train: &rows[..200],
            validation: &rows[200..],
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let r = backward_selection(&ctx, &[0, 1]);
        for step in &r.trace {
            assert!(
                !r.features.contains(&step.feature),
                "removed feature still selected"
            );
        }
    }
}
