//! # hamlet-chaos
//!
//! Deterministic fault injection for the hamlet workspace, in two
//! layers:
//!
//! * **Failpoints** ([`failpoint`], [`fail_at!`]) — named sites in
//!   manifest loading, journal/result writes, and the Monte-Carlo
//!   runner where an IO error, a panic, or a hard process exit can be
//!   forced at a chosen hit count via the `HAMLET_FAILPOINTS`
//!   environment variable (e.g.
//!   `HAMLET_FAILPOINTS="obs.atomic_write=io;runner.cell=exit@5"`).
//!   With the variable unset a site costs one relaxed atomic load.
//! * **Corpus corruption** ([`corrupt`]) — seeded injectors that turn a
//!   clean star-schema CSV corpus into a dirty one: row-width errors,
//!   bad quoting, unparseable numerics, duplicate primary keys,
//!   dangling foreign keys, truncated files. Every injected fault is
//!   reported, so tests can assert the ingest layer quarantines
//!   exactly what was corrupted.
//!
//! This crate sits below `hamlet-obs` in the dependency graph (the
//! observability layer injects IO failures into its own atomic-write
//! helper), so it depends on nothing but the `rand` shim.

pub mod corrupt;
pub mod failpoint;

pub use corrupt::{corrupt_corpus, ChaosPlan, Corpus, FaultKind, FileProfile, InjectedFault};
pub use failpoint::{clear_failpoints, set_failpoints, FailMode, FailpointError};
