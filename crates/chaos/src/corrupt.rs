//! Seeded corruption of a clean CSV corpus.
//!
//! The injectors mutate raw CSV text — they know nothing about the
//! relational layer — but a [`FileProfile`] tells them which columns
//! are numeric, the primary key, or foreign keys, so every fault kind
//! lands where it hurts:
//!
//! * [`FaultKind::RowWidth`] — a data line gains or loses a field;
//! * [`FaultKind::BadQuoting`] — a stray `"` opens an unterminated
//!   quoted region, swallowing delimiters to end of line;
//! * [`FaultKind::BadNumeric`] — a numeric field becomes unparseable;
//! * [`FaultKind::DuplicatePk`] — a row's primary-key value is copied
//!   from another row;
//! * [`FaultKind::DanglingFk`] — a foreign-key field is replaced with
//!   a label no key table contains;
//! * [`FaultKind::TruncateFile`] — the file is cut mid-line, as if a
//!   copy was interrupted.
//!
//! Corruption is deterministic given [`ChaosPlan::seed`], and every
//! fault is returned as an [`InjectedFault`], so a test can corrupt a
//! corpus, load it leniently, and check the quarantine report accounts
//! for exactly the damaged rows.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corpus: file name → CSV text. `BTreeMap` so iteration (and thus
/// fault placement) is deterministic.
pub type Corpus = BTreeMap<String, String>;

/// The kinds of damage the corruptor can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A data line with too many or too few fields.
    RowWidth,
    /// An unterminated quote that swallows delimiters to end of line.
    BadQuoting,
    /// An unparseable value in a numeric column.
    BadNumeric,
    /// A primary-key value duplicated from another row.
    DuplicatePk,
    /// A foreign-key value referencing no key-table row.
    DanglingFk,
    /// The file cut off mid-line.
    TruncateFile,
}

impl FaultKind {
    /// Every kind, in a fixed order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::RowWidth,
        FaultKind::BadQuoting,
        FaultKind::BadNumeric,
        FaultKind::DuplicatePk,
        FaultKind::DanglingFk,
        FaultKind::TruncateFile,
    ];
}

/// Which columns of one file are fair game for targeted faults.
#[derive(Debug, Clone, Default)]
pub struct FileProfile {
    /// 0-based indices of numeric columns ([`FaultKind::BadNumeric`]).
    pub numeric_cols: Vec<usize>,
    /// 0-based index of the primary-key column, if any
    /// ([`FaultKind::DuplicatePk`]).
    pub pk_col: Option<usize>,
    /// 0-based indices of foreign-key columns ([`FaultKind::DanglingFk`]).
    pub fk_cols: Vec<usize>,
}

/// A corruption campaign over a corpus.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// RNG seed; equal seeds corrupt identically.
    pub seed: u64,
    /// How many faults to attempt per file.
    pub faults_per_file: usize,
    /// Fault kinds to draw from (kinds inapplicable to a file — e.g.
    /// [`FaultKind::DanglingFk`] with no `fk_cols` — are skipped).
    pub kinds: Vec<FaultKind>,
    /// Per-file column roles; files without a profile only receive
    /// structural faults (row width, quoting, truncation).
    pub profiles: BTreeMap<String, FileProfile>,
}

impl ChaosPlan {
    /// A plan injecting every fault kind `faults_per_file` times per
    /// file.
    pub fn all_kinds(seed: u64, faults_per_file: usize) -> Self {
        Self {
            seed,
            faults_per_file,
            kinds: FaultKind::ALL.to_vec(),
            profiles: BTreeMap::new(),
        }
    }

    /// Sets the column profile for one file.
    pub fn with_profile(mut self, file: impl Into<String>, profile: FileProfile) -> Self {
        self.profiles.insert(file.into(), profile);
        self
    }
}

/// One fault that was actually injected.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// File the fault landed in.
    pub file: String,
    /// What was injected.
    pub kind: FaultKind,
    /// 0-based *data-row* index (header excluded). For
    /// [`FaultKind::TruncateFile`], the first row affected.
    pub row: usize,
    /// Human-readable description of the mutation.
    pub detail: String,
}

/// Corrupts a corpus according to the plan. Returns the dirty corpus
/// and the faults injected, in deterministic order.
///
/// A fault may be skipped when inapplicable (no data rows, no numeric
/// column, a one-row table for [`FaultKind::DuplicatePk`]); the report
/// holds what actually happened, not what was attempted.
pub fn corrupt_corpus(corpus: &Corpus, plan: &ChaosPlan) -> (Corpus, Vec<InjectedFault>) {
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut dirty = Corpus::new();
    let mut faults = Vec::new();
    for (file, text) in corpus {
        let profile = plan.profiles.get(file).cloned().unwrap_or_default();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut truncate_at: Option<usize> = None; // byte offset, applied last
        for _ in 0..plan.faults_per_file {
            if plan.kinds.is_empty() || lines.len() < 2 {
                break;
            }
            let kind = plan.kinds[rng.gen_range(0..plan.kinds.len())];
            // Rows already structurally damaged stay eligible: real dirt
            // compounds. Row 0 is the header and is left intact so every
            // fault is a *data* fault.
            let row = rng.gen_range(1..lines.len());
            let injected = match kind {
                FaultKind::RowWidth => inject_row_width(&mut lines[row], &mut rng),
                FaultKind::BadQuoting => inject_bad_quoting(&mut lines[row], &mut rng),
                FaultKind::BadNumeric => {
                    inject_field(&mut lines[row], &profile.numeric_cols, &mut rng, |r| {
                        format!("n/a#{}", r.gen_range(0..100u32))
                    })
                }
                FaultKind::DuplicatePk => inject_duplicate_pk(&mut lines, row, &profile, &mut rng),
                FaultKind::DanglingFk => {
                    inject_field(&mut lines[row], &profile.fk_cols, &mut rng, |r| {
                        format!("chaos_unseen_{}", r.gen_range(0..1_000_000u32))
                    })
                }
                FaultKind::TruncateFile => {
                    // Defer: truncation invalidates line indices.
                    if truncate_at.is_none() {
                        let joined_len: usize = lines.iter().map(|l| l.len() + 1).sum::<usize>();
                        // Cut somewhere inside the chosen line.
                        let prefix: usize = lines[..row].iter().map(|l| l.len() + 1).sum::<usize>();
                        let cut = prefix + rng.gen_range(1..lines[row].len().max(2));
                        truncate_at = Some(cut.min(joined_len.saturating_sub(1)));
                        Some(format!("cut at byte {cut}"))
                    } else {
                        None
                    }
                }
            };
            if let Some(detail) = injected {
                faults.push(InjectedFault {
                    file: file.clone(),
                    kind,
                    row: row - 1,
                    detail,
                });
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        if let Some(cut) = truncate_at {
            out.truncate(cut.min(out.len()));
        }
        dirty.insert(file.clone(), out);
    }
    (dirty, faults)
}

/// Splits one line on unquoted commas (the corruptor's own dialect is
/// the ingest dialect: `,`-delimited, double-quote quoting).
fn split_fields(line: &str) -> Vec<String> {
    let mut fields = vec![String::new()];
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                fields.last_mut().expect("non-empty").push(c);
            }
            ',' if !in_quotes => fields.push(String::new()),
            _ => fields.last_mut().expect("non-empty").push(c),
        }
    }
    fields
}

fn inject_row_width(line: &mut String, rng: &mut StdRng) -> Option<String> {
    let mut fields = split_fields(line);
    let detail = if fields.len() > 1 && rng.gen::<bool>() {
        let drop = rng.gen_range(0..fields.len());
        fields.remove(drop);
        format!("dropped field {drop}")
    } else {
        let dup = rng.gen_range(0..fields.len());
        let v = fields[dup].clone();
        fields.insert(dup, v);
        format!("duplicated field {dup}")
    };
    *line = fields.join(",");
    Some(detail)
}

fn inject_bad_quoting(line: &mut String, rng: &mut StdRng) -> Option<String> {
    let fields = split_fields(line);
    if fields.len() < 2 {
        return None;
    }
    // A lone quote opening mid-field swallows every delimiter to EOL.
    let at = rng.gen_range(0..fields.len() - 1);
    let mut out: Vec<String> = fields;
    out[at] = format!("\"{}", out[at]);
    *line = out.join(",");
    Some(format!("unterminated quote in field {at}"))
}

/// Replaces one field drawn from `cols` with `make(rng)`.
fn inject_field(
    line: &mut String,
    cols: &[usize],
    rng: &mut StdRng,
    make: impl Fn(&mut StdRng) -> String,
) -> Option<String> {
    if cols.is_empty() {
        return None;
    }
    let col = cols[rng.gen_range(0..cols.len())];
    let mut fields = split_fields(line);
    if col >= fields.len() {
        return None;
    }
    let value = make(rng);
    let detail = format!("field {col}: '{}' -> '{}'", fields[col], value);
    fields[col] = value;
    *line = fields.join(",");
    Some(detail)
}

fn inject_duplicate_pk(
    lines: &mut [String],
    row: usize,
    profile: &FileProfile,
    rng: &mut StdRng,
) -> Option<String> {
    let pk = profile.pk_col?;
    if lines.len() < 3 {
        return None; // need two distinct data rows
    }
    let mut other = rng.gen_range(1..lines.len());
    if other == row {
        other = if other + 1 < lines.len() {
            other + 1
        } else {
            1
        };
    }
    let donor = split_fields(&lines[other]);
    let value = donor.get(pk)?.clone();
    let mut fields = split_fields(&lines[row]);
    if pk >= fields.len() {
        return None;
    }
    let detail = format!("pk field {pk}: '{}' -> '{}'", fields[pk], value);
    fields[pk] = value;
    lines[row] = fields.join(",");
    Some(detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> Corpus {
        let mut c = Corpus::new();
        let mut customers = String::from("Churn,Age,EmployerID\n");
        for i in 0..40 {
            customers.push_str(&format!("{},{},e{}\n", i % 2, 20 + i % 30, i % 5));
        }
        let mut employers = String::from("EmployerID,Country,Revenue\n");
        for e in 0..5 {
            employers.push_str(&format!("e{},c{},{}\n", e, e % 3, 10 * e));
        }
        c.insert("customers.csv".into(), customers);
        c.insert("employers.csv".into(), employers);
        c
    }

    fn plan(seed: u64, n: usize) -> ChaosPlan {
        ChaosPlan::all_kinds(seed, n)
            .with_profile(
                "customers.csv",
                FileProfile {
                    numeric_cols: vec![1],
                    pk_col: None,
                    fk_cols: vec![2],
                },
            )
            .with_profile(
                "employers.csv",
                FileProfile {
                    numeric_cols: vec![2],
                    pk_col: Some(0),
                    fk_cols: vec![],
                },
            )
    }

    #[test]
    fn corruption_is_deterministic() {
        let c = clean();
        let (d1, f1) = corrupt_corpus(&c, &plan(7, 10));
        let (d2, f2) = corrupt_corpus(&c, &plan(7, 10));
        assert_eq!(d1, d2);
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!((a.kind, a.row, &a.detail), (b.kind, b.row, &b.detail));
        }
        let (d3, _) = corrupt_corpus(&c, &plan(8, 10));
        assert_ne!(d1, d3, "different seeds corrupt differently");
    }

    #[test]
    fn faults_actually_damage_the_text() {
        let c = clean();
        let (dirty, faults) = corrupt_corpus(&c, &plan(3, 12));
        assert!(!faults.is_empty());
        assert_ne!(dirty, c);
        // The header row is never touched.
        for (file, text) in &dirty {
            assert_eq!(
                text.lines().next(),
                c[file].lines().next(),
                "{file} header must survive"
            );
        }
    }

    #[test]
    fn every_kind_can_fire() {
        let c = clean();
        let mut seen: Vec<FaultKind> = Vec::new();
        for seed in 0..40 {
            let (_, faults) = corrupt_corpus(&c, &plan(seed, 8));
            for f in faults {
                if !seen.contains(&f.kind) {
                    seen.push(f.kind);
                }
            }
        }
        for kind in FaultKind::ALL {
            assert!(seen.contains(&kind), "{kind:?} never fired in 40 seeds");
        }
    }

    #[test]
    fn truncation_shortens_the_file() {
        let c = clean();
        let p = ChaosPlan {
            seed: 1,
            faults_per_file: 4,
            kinds: vec![FaultKind::TruncateFile],
            profiles: BTreeMap::new(),
        };
        let (dirty, faults) = corrupt_corpus(&c, &p);
        assert!(faults.iter().all(|f| f.kind == FaultKind::TruncateFile));
        // At most one truncation per file is recorded.
        for file in c.keys() {
            assert!(faults.iter().filter(|f| &f.file == file).count() <= 1);
            assert!(dirty[file].len() < c[file].len());
        }
    }

    #[test]
    fn unprofiled_corpus_gets_structural_faults_only() {
        let c = clean();
        let p = ChaosPlan::all_kinds(5, 20);
        let (_, faults) = corrupt_corpus(&c, &p);
        for f in &faults {
            assert!(
                matches!(
                    f.kind,
                    FaultKind::RowWidth | FaultKind::BadQuoting | FaultKind::TruncateFile
                ),
                "column-targeted fault {:?} without a profile",
                f.kind
            );
        }
    }
}
