//! Named failpoints, armed through `HAMLET_FAILPOINTS`.
//!
//! A failpoint is a call to [`fail_at!`](crate::fail_at) at a site where production
//! code performs IO or long-running work:
//!
//! ```rust,ignore
//! hamlet_chaos::fail_at!("obs.atomic_write")?;
//! std::fs::write(&tmp, bytes)?;
//! ```
//!
//! Sites are inert until armed. The spec grammar (env variable or
//! [`set_failpoints`]) is `site=mode[@N]`, `;`-separated:
//!
//! * `mode` is `io` (the site returns an injected
//!   [`std::io::Error`]), `panic` (the site panics, unwinding through
//!   whatever experiment was running), or `exit` (hard process exit
//!   with code [`EXIT_CODE`], simulating a mid-run crash/OOM-kill);
//! * `@N` arms the site on its Nth hit only (1-based); without it the
//!   site fires on every hit.
//!
//! Hit counts are per-site and process-wide, so `runner.cell=exit@5`
//! kills the fifth Monte-Carlo cell regardless of thread scheduling.
//! An invalid spec is a configuration error: the process exits with an
//! actionable message rather than silently running without faults (the
//! same strict-env contract as `hamlet-obs::env`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable holding the failpoint spec.
pub const FAILPOINTS_VAR: &str = "HAMLET_FAILPOINTS";

/// Process exit code used by `exit`-mode failpoints (distinct from the
/// CLI's usage-error 2, so harnesses can tell a simulated crash apart).
pub const EXIT_CODE: i32 = 42;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Return an injected [`std::io::Error`] from the site.
    Io,
    /// Panic (unwind) at the site.
    Panic,
    /// Exit the process with [`EXIT_CODE`] — a simulated crash.
    Exit,
}

/// A malformed failpoint spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointError {
    /// The offending spec fragment.
    pub fragment: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for FailpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {FAILPOINTS_VAR} fragment '{}': {} \
             (expected site=io|panic|exit[@N], ';'-separated)",
            self.fragment, self.reason
        )
    }
}

impl std::error::Error for FailpointError {}

#[derive(Debug)]
struct Site {
    mode: FailMode,
    /// Fire on this 1-based hit only; `None` fires on every hit.
    at: Option<u64>,
    hits: u64,
}

/// Fast path: a single relaxed load when no failpoint was ever armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Whether the env spec was consumed (it is read at most once).
static ENV_LOADED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn parse_spec(spec: &str) -> Result<HashMap<String, Site>, FailpointError> {
    let mut out = HashMap::new();
    for fragment in spec.split(';') {
        let fragment = fragment.trim();
        if fragment.is_empty() {
            continue;
        }
        let err = |reason: &str| FailpointError {
            fragment: fragment.to_string(),
            reason: reason.to_string(),
        };
        let (site, rhs) = fragment.split_once('=').ok_or_else(|| err("missing '='"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(err("empty site name"));
        }
        let (mode_str, at) = match rhs.split_once('@') {
            None => (rhs.trim(), None),
            Some((m, n)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| err("hit count after '@' must be a positive integer"))?;
                (m.trim(), Some(n))
            }
        };
        let mode = match mode_str {
            "io" => FailMode::Io,
            "panic" => FailMode::Panic,
            "exit" => FailMode::Exit,
            _ => return Err(err("mode must be 'io', 'panic', or 'exit'")),
        };
        if out
            .insert(site.to_string(), Site { mode, at, hits: 0 })
            .is_some()
        {
            return Err(err("site configured more than once"));
        }
    }
    Ok(out)
}

/// Arms failpoints from a spec string (tests and tools; the env path
/// goes through the same parser). Replaces any previous configuration
/// and resets all hit counters.
pub fn set_failpoints(spec: &str) -> Result<(), FailpointError> {
    let parsed = parse_spec(spec)?;
    // Once a test configures failpoints explicitly, the env spec (if
    // any) must not be re-applied on top later.
    ENV_LOADED.store(true, Ordering::SeqCst);
    let armed = !parsed.is_empty();
    *registry().lock().expect("failpoint registry lock") = parsed;
    ARMED.store(armed, Ordering::SeqCst);
    Ok(())
}

/// Disarms every failpoint and resets hit counters.
pub fn clear_failpoints() {
    ENV_LOADED.store(true, Ordering::SeqCst);
    registry().lock().expect("failpoint registry lock").clear();
    ARMED.store(false, Ordering::SeqCst);
}

/// Loads `HAMLET_FAILPOINTS` exactly once. An invalid spec exits the
/// process with an actionable message (code 2): chaos runs must never
/// silently proceed fault-free.
fn load_env_once() {
    if ENV_LOADED.swap(true, Ordering::SeqCst) {
        return;
    }
    let Some(spec) = std::env::var_os(FAILPOINTS_VAR) else {
        return;
    };
    let spec = spec.to_string_lossy();
    match parse_spec(&spec) {
        Ok(parsed) => {
            let armed = !parsed.is_empty();
            *registry().lock().expect("failpoint registry lock") = parsed;
            ARMED.store(armed, Ordering::SeqCst);
        }
        Err(e) => {
            eprintln!("error: {e} (unset the variable to run without fault injection)");
            std::process::exit(2);
        }
    }
}

/// One failpoint hit. Returns `Ok(())` when the site is unarmed or not
/// yet at its configured hit count; otherwise injects the configured
/// failure. Call through [`fail_at!`](crate::fail_at) so the site name appears at the
/// call site.
pub fn hit(site: &str) -> std::io::Result<()> {
    load_env_once();
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let mode = {
        let mut reg = registry().lock().expect("failpoint registry lock");
        match reg.get_mut(site) {
            None => return Ok(()),
            Some(s) => {
                s.hits += 1;
                match s.at {
                    Some(n) if s.hits != n => return Ok(()),
                    _ => s.mode,
                }
            }
        }
    };
    match mode {
        FailMode::Io => Err(std::io::Error::other(format!(
            "injected IO failure at failpoint '{site}'"
        ))),
        FailMode::Panic => panic!("injected crash at failpoint '{site}'"),
        FailMode::Exit => {
            eprintln!("injected process exit at failpoint '{site}'");
            std::process::exit(EXIT_CODE);
        }
    }
}

/// Number of times `site` has been hit since it was last (re)armed.
/// Zero for unknown sites; diagnostic only.
pub fn hit_count(site: &str) -> u64 {
    registry()
        .lock()
        .expect("failpoint registry lock")
        .get(site)
        .map(|s| s.hits)
        .unwrap_or(0)
}

/// Test support: failpoint state is process-global, so tests that arm
/// failpoints must serialize. Holding the returned guard across
/// `set_failpoints`..`clear_failpoints` keeps one test's arming from
/// leaking into another mid-assert (poisoning is ignored — a panicking
/// failpoint test is expected to unwind while holding the guard).
pub fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Marks a failpoint site. Expands to an expression of type
/// `std::io::Result<()>`; the caller decides how the injected error
/// propagates (usually `?`).
#[macro_export]
macro_rules! fail_at {
    ($site:expr) => {
        $crate::failpoint::hit($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_is_ok() {
        let _g = serial();
        clear_failpoints();
        assert!(hit("nowhere").is_ok());
    }

    #[test]
    fn io_mode_fires_every_hit() {
        let _g = serial();
        set_failpoints("a.b=io").unwrap();
        assert!(hit("a.b").is_err());
        assert!(hit("a.b").is_err());
        assert!(hit("other").is_ok());
        clear_failpoints();
        assert!(hit("a.b").is_ok());
    }

    #[test]
    fn hit_count_gates_firing() {
        let _g = serial();
        set_failpoints("x=io@3").unwrap();
        assert!(hit("x").is_ok());
        assert!(hit("x").is_ok());
        let e = hit("x").unwrap_err();
        assert!(e.to_string().contains("failpoint 'x'"), "{e}");
        // One-shot: after the Nth hit it stays quiet.
        assert!(hit("x").is_ok());
        assert_eq!(hit_count("x"), 4);
        clear_failpoints();
    }

    #[test]
    fn panic_mode_unwinds() {
        let _g = serial();
        set_failpoints("boom=panic@1").unwrap();
        let r = std::panic::catch_unwind(|| hit("boom"));
        clear_failpoints();
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected crash at failpoint 'boom'"), "{msg}");
    }

    #[test]
    fn spec_parse_errors_are_actionable() {
        let cases = [
            ("a.b", "missing '='"),
            ("=io", "empty site"),
            ("a=teleport", "mode must be"),
            ("a=io@0", "positive integer"),
            ("a=io@x", "positive integer"),
            ("a=io;a=panic", "more than once"),
        ];
        for (spec, needle) in cases {
            let e = parse_spec(spec).unwrap_err();
            assert!(e.to_string().contains(needle), "{spec}: {e}");
        }
        // Empty fragments (leading/trailing ';') are fine.
        assert!(parse_spec(";a=io;;b=exit@2;").is_ok());
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn rearming_resets_counters() {
        let _g = serial();
        set_failpoints("y=io@2").unwrap();
        assert!(hit("y").is_ok());
        set_failpoints("y=io@2").unwrap();
        assert!(hit("y").is_ok(), "counter was reset");
        assert!(hit("y").is_err());
        clear_failpoints();
    }
}
