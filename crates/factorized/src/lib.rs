//! Factorized learning over a [`hamlet_relational::catalog::StarSchema`].
//!
//! Trains classifiers with JoinAll semantics while never materializing
//! the KFK joins: logical columns of joined attribute tables are resolved
//! through FK indirection at access time ([`view::FactorizedView`]), and
//! naive Bayes sufficient statistics are pushed down to per-table counts
//! ([`naive_bayes`]).

pub mod counts;
pub mod execute;
pub mod logreg;
pub mod naive_bayes;
pub mod view;

pub use counts::{class_conditional_counts, fk_class_counts, fold_through_fk, foreign_fk};
pub use execute::view_for_plan;
pub use logreg::fit_factorized_logreg;
pub use naive_bayes::fit_factorized_nb;
pub use view::FactorizedView;
