//! Naive Bayes from pushed-down counts — no join, exact same model.
//!
//! Naive Bayes needs only `count(Y)` and `count(F, Y)` per feature. Over a
//! KFK join the FK functionally determines every foreign feature, so
//! foreign-feature counts factor through the FK:
//!
//! ```text
//! count(X_R = v, Y = y)  =  Σ_{fk : R.X_R[fk] = v}  count(FK = fk, Y = y)
//! ```
//!
//! `count(FK, Y)` is computed on the entity table alone (via
//! [`hamlet_relational::query::group_count`]) and then mapped through `R`
//! with one `O(n_R)` pass per foreign feature. Because the resulting
//! integer count tables are exactly those the materialized
//! `NaiveBayes::fit` ([`hamlet_ml::Classifier`]) accumulates row by row, the smoothed
//! log-probability arithmetic is identical and the assembled
//! [`NaiveBayesModel`] is **exactly equal** to the materialized one — not
//! merely close.

use hamlet_ml::{CodeSource, NaiveBayes, NaiveBayesModel};
use hamlet_relational::query::group_count;
use hamlet_relational::Result;

use crate::view::FactorizedView;

/// Fits naive Bayes over the star schema without materializing any join.
///
/// `rows` are entity-row positions (the same indices that drive the
/// materialized path) and `feats` are logical feature positions in the
/// view's layout. Returns a model exactly equal to
/// `NaiveBayes::fit(&materialized_dataset, rows, feats)`.
pub fn fit_factorized_nb(
    view: &FactorizedView<'_>,
    nb: &NaiveBayes,
    rows: &[usize],
    feats: &[usize],
) -> Result<NaiveBayesModel> {
    let _span = hamlet_obs::span!("factorized.nb_fit", rows = rows.len(), feats = feats.len());
    hamlet_obs::counter_add!("hamlet_nb_fits_total", 1);
    let n_classes = view.n_classes();
    let alpha = nb.smoothing;

    // count(Y) on S alone.
    let mut class_counts = vec![0u64; n_classes];
    for &r in rows {
        class_counts[view.label(r) as usize] += 1;
    }
    let total = rows.len() as f64 + alpha * n_classes as f64;
    let log_prior: Vec<f64> = class_counts
        .iter()
        .map(|&c| ((c as f64 + alpha) / total).ln())
        .collect();

    // count(FK, Y) on S alone, once per FK that serves a requested
    // foreign feature. Dense layout: [fk_code * n_classes + y].
    let mut fk_y_counts: Vec<Option<Vec<u64>>> = Vec::new();
    fk_y_counts.resize_with(view.fk_indices.len(), || None);
    for (i, fk) in view.fk_indices.iter().enumerate() {
        let needed = feats.iter().any(|&f| {
            view.joined_origin(f)
                .is_some_and(|(origin, _, _)| std::ptr::eq(origin, fk))
        });
        if !needed {
            continue;
        }
        let sub = view
            .star()
            .entity()
            .project(&[fk.fk_name, view.target_name()])?
            .select_rows(rows);
        let mut dense = vec![0u64; fk_domain_size(view, i) * n_classes];
        for g in group_count(&sub, &[fk.fk_name, view.target_name()])? {
            dense[g.key[0] as usize * n_classes + g.key[1] as usize] = g.count;
        }
        fk_y_counts[i] = Some(dense);
    }

    // Per-feature conditional tables from counts; the float expression
    // mirrors the materialized fit exactly.
    let mut log_cond = Vec::with_capacity(feats.len());
    let mut domain_sizes = Vec::with_capacity(feats.len());
    for &f in feats {
        let d = view.feature_domain_size(f);
        let mut counts = vec![0u64; n_classes * d];
        match view.joined_origin(f) {
            None => {
                // Entity feature (or FK-as-feature): count on S directly.
                for &r in rows {
                    let y = view.label(r) as usize;
                    let v = view.code(f, r) as usize;
                    counts[y * d + v] += 1;
                }
            }
            Some((origin, r_codes, _)) => {
                let i = view
                    .fk_indices
                    .iter()
                    .position(|fk| std::ptr::eq(fk, origin))
                    .expect("origin comes from this view");
                let dense = fk_y_counts[i].as_ref().expect("counted above");
                // Map FK groups through R: one pass over the FK domain.
                for (fk_code, row) in origin.rid_to_row.iter().enumerate() {
                    if *row == u32::MAX {
                        continue; // RID absent from R; nothing references it
                    }
                    let v = r_codes[*row as usize] as usize;
                    for y in 0..n_classes {
                        counts[y * d + v] += dense[fk_code * n_classes + y];
                    }
                }
            }
        }
        let mut table = vec![0f64; n_classes * d];
        for y in 0..n_classes {
            let denom = class_counts[y] as f64 + alpha * d as f64;
            for v in 0..d {
                table[y * d + v] = ((counts[y * d + v] as f64 + alpha) / denom).ln();
            }
        }
        log_cond.push(table);
        domain_sizes.push(d);
    }

    Ok(NaiveBayesModel::from_parts(
        feats.to_vec(),
        n_classes,
        log_prior,
        log_cond,
        domain_sizes,
    ))
}

/// Domain size of the `i`-th FK column (= RID domain size).
fn fk_domain_size(view: &FactorizedView<'_>, i: usize) -> usize {
    view.fk_indices[i].rid_to_row.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::tests::two_table_star;
    use hamlet_ml::{Classifier, Dataset, Model};

    #[test]
    fn exactly_equals_materialized_model() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let mat = Dataset::from_table(&star.materialize_all().unwrap());
        let rows: Vec<usize> = (0..star.n_s()).collect();
        let feats: Vec<usize> = (0..mat.n_features()).collect();
        let nb = NaiveBayes::default();

        let m_mat = nb.fit(&mat, &rows, &feats);
        let m_fac = fit_factorized_nb(&view, &nb, &rows, &feats).unwrap();

        for r in 0..star.n_s() {
            let a = m_mat.log_posterior(&mat, r);
            let b = m_fac.log_posterior(&view, r);
            assert_eq!(a, b, "log-posterior differs at row {r}");
            assert_eq!(m_mat.predict_row(&mat, r), m_fac.predict_row(&mat, r));
        }
    }

    #[test]
    fn respects_row_and_feature_subsets() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let mat = Dataset::from_table(&star.materialize_all().unwrap());
        let rows = vec![0usize, 2, 3, 5];
        let feats = vec![0usize, 3, 5]; // xs, a1 (joined), b1 (joined)
        let nb = NaiveBayes::new(0.5);

        let m_mat = nb.fit(&mat, &rows, &feats);
        let m_fac = fit_factorized_nb(&view, &nb, &rows, &feats).unwrap();
        for r in 0..star.n_s() {
            assert_eq!(m_mat.log_posterior(&mat, r), m_fac.log_posterior(&view, r));
        }
    }

    #[test]
    fn empty_feature_set_gives_prior_model() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let rows: Vec<usize> = (0..star.n_s()).collect();
        let m = fit_factorized_nb(&view, &NaiveBayes::default(), &rows, &[]).unwrap();
        // Majority class of y = [0,1,1,0,1,0] is 0 (ties break low); here
        // 3 vs 3 -> class 0 wins the tie.
        for r in 0..star.n_s() {
            assert_eq!(m.predict_row(&view, r), 0);
        }
    }
}
