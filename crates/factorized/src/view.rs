//! A logical view of the denormalized join output that never exists.
//!
//! [`FactorizedView`] presents the joined table
//! `T(Y, X_S, FK_1..FK_k, X_R1..X_Rk)` with the exact feature layout of
//! [`hamlet_ml::Dataset::from_table`] applied to the materialized join —
//! but resolves every foreign-feature access through FK indirection at
//! read time: `T.X_R[i] = R.X_R[rid_to_row[S.FK[i]]]`. The per-FK dense
//! lookup index is built once (`O(n_R)`), after which each access is two
//! array reads. Memory stays `O(n_S + Σ n_Ri)` instead of the
//! materialized `O(n_S × (d_S + Σ d_Ri))`.

use hamlet_ml::CodeSource;
use hamlet_relational::catalog::StarSchema;
use hamlet_relational::{RelationalError, Result, Role};

/// An entity-table column served directly (features and foreign keys).
#[derive(Debug)]
struct BaseCol<'a> {
    name: &'a str,
    domain_size: usize,
    codes: &'a [u32],
}

/// A foreign-feature column served through FK indirection.
#[derive(Debug)]
struct JoinedCol<'a> {
    name: &'a str,
    domain_size: usize,
    /// Codes of the column in its attribute table `R` (length `n_R`).
    codes: &'a [u32],
    /// Which [`FkIndex`] resolves entity rows into `R` rows.
    fk: usize,
}

/// Dense RID -> row index over one attribute table, built once per join.
#[derive(Debug)]
pub(crate) struct FkIndex<'a> {
    /// FK column name in the entity table.
    pub(crate) fk_name: &'a str,
    /// FK codes on the entity table (length `n_S`).
    pub(crate) fk_codes: &'a [u32],
    /// `rid_to_row[code]` = row position in `R`, or `u32::MAX` for RID
    /// values absent from `R` (never referenced: the star schema
    /// validates referential integrity at construction).
    pub(crate) rid_to_row: Vec<u32>,
}

impl FkIndex<'_> {
    /// Resolves one entity row to its attribute-table row.
    #[inline]
    pub(crate) fn resolve(&self, entity_row: usize) -> usize {
        self.rid_to_row[self.fk_codes[entity_row] as usize] as usize
    }
}

/// Zero-materialization view over a star schema with the same logical
/// columns, feature order, and row order as the materialized join.
///
/// Because row positions are entity-row positions in both worlds, the
/// same [`hamlet_relational::catalog::SplitIndices`] drive train/test
/// subsetting on either path.
#[derive(Debug)]
pub struct FactorizedView<'a> {
    star: &'a StarSchema,
    /// Positions (into `star.attributes()`) of the joined tables, in
    /// join order.
    join_set: Vec<usize>,
    labels: &'a [u32],
    target_name: &'a str,
    n_classes: usize,
    base: Vec<BaseCol<'a>>,
    joined: Vec<JoinedCol<'a>>,
    pub(crate) fk_indices: Vec<FkIndex<'a>>,
}

impl<'a> FactorizedView<'a> {
    /// A view equivalent to `star.materialize_all()` (JoinAll).
    pub fn new(star: &'a StarSchema) -> Result<Self> {
        Self::with_join_set(star, &(0..star.k()).collect::<Vec<_>>())
    }

    /// A view equivalent to `star.materialize(join_set)`: only the listed
    /// attribute tables contribute foreign features; every entity feature
    /// and foreign key is always present (FKs act as representatives for
    /// the unjoined tables, exactly as in the materialized subset join).
    pub fn with_join_set(star: &'a StarSchema, join_set: &[usize]) -> Result<Self> {
        let _span = hamlet_obs::span!(
            "factorized.build_view",
            rows = star.n_s(),
            joins = join_set.len()
        );
        let entity = star.entity();
        let target_idx = entity
            .schema()
            .target()
            .ok_or_else(|| RelationalError::MissingRole {
                table: entity.name().to_string(),
                role: "target",
            })?;
        let labels = entity.column(target_idx).codes();
        let n_classes = entity.column(target_idx).domain().size();

        let mut base = Vec::new();
        for (def, col) in entity.schema().attributes().iter().zip(entity.columns()) {
            if def.role.is_ml_input() {
                base.push(BaseCol {
                    name: def.name.as_str(),
                    domain_size: col.domain().size(),
                    codes: col.codes(),
                });
            }
        }

        let mut joined = Vec::new();
        let mut fk_indices = Vec::new();
        for &i in join_set {
            let at = star
                .attributes()
                .get(i)
                .ok_or_else(|| RelationalError::UnknownTable {
                    name: format!("attribute table #{i}"),
                })?;
            let fk_pos = entity.schema().index_of(&at.fk).ok_or_else(|| {
                RelationalError::UnknownAttribute {
                    table: entity.name().to_string(),
                    attribute: at.fk.clone(),
                }
            })?;
            let pk_idx = at.table.schema().primary_key().ok_or_else(|| {
                RelationalError::UnknownAttribute {
                    table: at.table.name().to_string(),
                    attribute: "<primary key>".to_string(),
                }
            })?;
            let pk_col = at.table.column(pk_idx);
            let mut rid_to_row = vec![u32::MAX; pk_col.domain().size()];
            for (row, &code) in pk_col.codes().iter().enumerate() {
                rid_to_row[code as usize] = row as u32;
            }
            let fk = fk_indices.len();
            fk_indices.push(FkIndex {
                fk_name: at.fk.as_str(),
                fk_codes: entity.column(fk_pos).codes(),
                rid_to_row,
            });
            for (def, col) in at
                .table
                .schema()
                .attributes()
                .iter()
                .zip(at.table.columns())
            {
                if def.role == Role::Feature {
                    joined.push(JoinedCol {
                        name: def.name.as_str(),
                        domain_size: col.domain().size(),
                        codes: col.codes(),
                        fk,
                    });
                }
            }
        }

        let view = Self {
            star,
            join_set: join_set.to_vec(),
            labels,
            target_name: entity.schema().attributes()[target_idx].name.as_str(),
            n_classes,
            base,
            joined,
            fk_indices,
        };
        hamlet_obs::counter_add!("hamlet_wide_cells_avoided_total", view.cells_avoided());
        Ok(view)
    }

    /// The underlying star schema.
    pub fn star(&self) -> &'a StarSchema {
        self.star
    }

    /// Positions of the joined attribute tables (into
    /// [`StarSchema::attributes`]).
    pub fn join_set(&self) -> &[usize] {
        &self.join_set
    }

    /// Name of the target attribute.
    pub fn target_name(&self) -> &str {
        self.target_name
    }

    /// Number of entity-table feature columns (features + FKs); logical
    /// positions `>= n_base_features()` resolve through FK indirection.
    pub fn n_base_features(&self) -> usize {
        self.base.len()
    }

    /// Position of the feature named `name`, if present.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.base
            .iter()
            .map(|b| b.name)
            .chain(self.joined.iter().map(|j| j.name))
            .position(|n| n == name)
    }

    /// For a joined (foreign) feature position, the index of the FK that
    /// resolves it plus its attribute-table column codes; `None` for base
    /// features.
    pub(crate) fn joined_origin(&self, f: usize) -> Option<(&FkIndex<'a>, &'a [u32], usize)> {
        let j = f.checked_sub(self.base.len())?;
        let jc = self.joined.get(j)?;
        Some((&self.fk_indices[jc.fk], jc.codes, jc.domain_size))
    }

    /// The FK slot (index into this view's join set) resolving feature
    /// `f`, or `None` for base features. Slots are what the pushed-down
    /// count aggregates in [`crate::counts`] are keyed by.
    pub(crate) fn foreign_fk_slot(&self, f: usize) -> Option<usize> {
        let j = f.checked_sub(self.base.len())?;
        Some(self.joined.get(j)?.fk)
    }

    /// Cells of the denormalized join output this view never allocates:
    /// `n_S × Σ d_Ri` over the joined tables. The advisor quotes this as
    /// the estimated memory saved by Factorize.
    pub fn cells_avoided(&self) -> usize {
        self.star.n_s() * self.joined.len()
    }
}

impl CodeSource for FactorizedView<'_> {
    fn n_examples(&self) -> usize {
        self.labels.len()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.base.len() + self.joined.len()
    }

    fn feature_domain_size(&self, f: usize) -> usize {
        match f.checked_sub(self.base.len()) {
            None => self.base[f].domain_size,
            Some(j) => self.joined[j].domain_size,
        }
    }

    fn feature_name(&self, f: usize) -> &str {
        match f.checked_sub(self.base.len()) {
            None => self.base[f].name,
            Some(j) => self.joined[j].name,
        }
    }

    #[inline]
    fn code(&self, f: usize, row: usize) -> u32 {
        match f.checked_sub(self.base.len()) {
            None => self.base[f].codes[row],
            Some(j) => {
                let jc = &self.joined[j];
                jc.codes[self.fk_indices[jc.fk].resolve(row)]
            }
        }
    }

    fn label(&self, row: usize) -> u32 {
        self.labels[row]
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use hamlet_ml::Dataset;
    use hamlet_relational::catalog::AttributeTable;
    use hamlet_relational::{Domain, TableBuilder};

    /// Two attribute tables, RIDs stored out of order in the second to
    /// exercise the dense index.
    pub(crate) fn two_table_star() -> StarSchema {
        let rid_a = Domain::indexed("AID", 3).shared();
        let a = TableBuilder::new("A")
            .primary_key("AID", rid_a.clone(), vec![0, 1, 2])
            .feature("a1", Domain::indexed("a1", 4).shared(), vec![3, 0, 2])
            .feature("a2", Domain::boolean("a2").shared(), vec![1, 0, 1])
            .build()
            .unwrap();
        let rid_b = Domain::indexed("BID", 2).shared();
        let b = TableBuilder::new("B")
            .primary_key("BID", rid_b.clone(), vec![1, 0]) // out of order
            .feature("b1", Domain::indexed("b1", 5).shared(), vec![4, 1])
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .primary_key(
                "SID",
                Domain::indexed("SID", 6).shared(),
                vec![0, 1, 2, 3, 4, 5],
            )
            .target("y", Domain::boolean("y").shared(), vec![0, 1, 1, 0, 1, 0])
            .feature(
                "xs",
                Domain::indexed("xs", 3).shared(),
                vec![0, 1, 2, 0, 1, 2],
            )
            .foreign_key("fk_a", "A", rid_a, vec![0, 1, 2, 2, 1, 0])
            .foreign_key("fk_b", "B", rid_b, vec![1, 0, 1, 0, 1, 0])
            .build()
            .unwrap();
        StarSchema::new(
            s,
            vec![
                AttributeTable {
                    fk: "fk_a".into(),
                    table: a,
                },
                AttributeTable {
                    fk: "fk_b".into(),
                    table: b,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_materialized_layout_and_codes() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let mat = Dataset::from_table(&star.materialize_all().unwrap());

        assert_eq!(CodeSource::n_features(&view), mat.n_features());
        assert_eq!(CodeSource::n_examples(&view), mat.n_examples());
        assert_eq!(CodeSource::n_classes(&view), mat.n_classes());
        for f in 0..mat.n_features() {
            assert_eq!(view.feature_name(f), mat.feature(f).name, "name at {f}");
            assert_eq!(
                view.feature_domain_size(f),
                mat.feature(f).domain_size,
                "domain at {f}"
            );
            for r in 0..mat.n_examples() {
                assert_eq!(view.code(f, r), mat.feature(f).codes[r], "code ({f},{r})");
            }
        }
        for r in 0..mat.n_examples() {
            assert_eq!(view.label(r), mat.labels()[r]);
        }
    }

    #[test]
    fn join_subsets_match_materialized_subsets() {
        let star = two_table_star();
        for join_set in [vec![], vec![0], vec![1], vec![1, 0]] {
            let view = FactorizedView::with_join_set(&star, &join_set).unwrap();
            let mat = Dataset::from_table(&star.materialize(&join_set).unwrap());
            assert_eq!(CodeSource::n_features(&view), mat.n_features());
            for f in 0..mat.n_features() {
                assert_eq!(view.feature_name(f), mat.feature(f).name);
                for r in 0..mat.n_examples() {
                    assert_eq!(view.code(f, r), mat.feature(f).codes[r]);
                }
            }
        }
    }

    #[test]
    fn feature_index_spans_base_and_joined() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        assert_eq!(view.feature_index("xs"), Some(0));
        assert_eq!(view.feature_index("fk_a"), Some(1));
        assert_eq!(view.feature_index("b1"), Some(5));
        assert_eq!(view.feature_index("nope"), None);
        assert_eq!(view.n_base_features(), 3);
        assert_eq!(view.target_name(), "y");
    }

    #[test]
    fn cells_avoided_counts_foreign_feature_cells() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        // 6 entity rows x 3 foreign features (a1, a2, b1).
        assert_eq!(view.cells_avoided(), 18);
        let partial = FactorizedView::with_join_set(&star, &[1]).unwrap();
        assert_eq!(partial.cells_avoided(), 6);
    }

    #[test]
    fn missing_target_is_typed_error() {
        let rid = Domain::indexed("RID", 1).shared();
        let r = TableBuilder::new("R")
            .primary_key("RID", rid.clone(), vec![0])
            .feature("a", Domain::boolean("a").shared(), vec![0])
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .feature("x", Domain::boolean("x").shared(), vec![0])
            .foreign_key("fk", "R", rid, vec![0])
            .build()
            .unwrap();
        let star = StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .unwrap();
        let err = FactorizedView::new(&star).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::MissingRole { role: "target", .. }
        ));
    }

    #[test]
    fn out_of_range_join_set_rejected() {
        let star = two_table_star();
        assert!(FactorizedView::with_join_set(&star, &[7]).is_err());
    }

    /// The degraded-load fallback replaces an unreadable attribute
    /// table with a key-only surrogate (see
    /// `hamlet_relational::availability`). A full view over that star
    /// must be indistinguishable — layout, codes, and fitted model —
    /// from a view over the intact star that simply excludes the
    /// table's join: zero features joined either way.
    #[test]
    fn fk_only_surrogate_trains_identically_to_excluding_the_join() {
        use crate::fit_factorized_nb;
        use hamlet_ml::NaiveBayes;

        let star = two_table_star();
        let without_b = FactorizedView::with_join_set(&star, &[0]).unwrap();

        let entity = star.entity().clone();
        let a = star.attributes()[0].table.clone();
        let rid_b = entity.column_by_name("fk_b").unwrap().domain().clone();
        let b_surrogate = TableBuilder::new("B")
            .primary_key("BID", rid_b, vec![0, 1])
            .build()
            .unwrap();
        let degraded_star = StarSchema::new(
            entity,
            vec![
                AttributeTable {
                    fk: "fk_a".into(),
                    table: a,
                },
                AttributeTable {
                    fk: "fk_b".into(),
                    table: b_surrogate,
                },
            ],
        )
        .unwrap();
        let degraded = FactorizedView::new(&degraded_star).unwrap();

        assert_eq!(
            CodeSource::n_features(&degraded),
            CodeSource::n_features(&without_b)
        );
        for f in 0..CodeSource::n_features(&degraded) {
            assert_eq!(degraded.feature_name(f), without_b.feature_name(f));
            assert_eq!(
                degraded.feature_domain_size(f),
                without_b.feature_domain_size(f)
            );
            for r in 0..CodeSource::n_examples(&degraded) {
                assert_eq!(degraded.code(f, r), without_b.code(f, r));
            }
        }

        let rows: Vec<usize> = (0..CodeSource::n_examples(&degraded)).collect();
        let feats: Vec<usize> = (0..CodeSource::n_features(&degraded)).collect();
        let nb = NaiveBayes::default();
        let m_degraded = fit_factorized_nb(&degraded, &nb, &rows, &feats).unwrap();
        let m_without = fit_factorized_nb(&without_b, &nb, &rows, &feats).unwrap();
        assert_eq!(format!("{m_degraded:?}"), format!("{m_without:?}"));
    }
}
