//! Executing a planner [`JoinPlan`] factorized.
//!
//! The planner decides *which* joins to keep ([`hamlet_core::plan`],
//! [`hamlet_core::advise`]); an [`ExecStrategy`](hamlet_core::planner::ExecStrategy) on the plan says *how*
//! each kept join runs. This module interprets the `Factorize` entries:
//! it builds the [`FactorizedView`] over exactly the plan's factorized
//! join set, so training proceeds with zero join materialization — no
//! `kfk_join` call anywhere on this path.

use hamlet_core::planner::JoinPlan;
use hamlet_relational::{Result, StarSchema};

use crate::view::FactorizedView;

/// Builds the view executing `plan`'s [`ExecStrategy::Factorize`](hamlet_core::planner::ExecStrategy::Factorize) joins
/// over `star`.
///
/// The view exposes the entity's features and FKs plus the foreign
/// features of every factorized join, resolved through FK indirection.
/// Joins the plan avoids are simply absent (their FKs represent them,
/// as in the paper); joins marked [`ExecStrategy::Materialize`](hamlet_core::planner::ExecStrategy::Materialize) are
/// *also* absent here — they belong to the wide table that
/// [`JoinPlan::materialize`] builds, and mixing the two executions in
/// one training pass is not supported.
///
/// Returns an error if the entity table declares no target.
pub fn view_for_plan<'a>(star: &'a StarSchema, plan: &JoinPlan) -> Result<FactorizedView<'a>> {
    FactorizedView::with_join_set(star, &plan.factorized_set())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::tests::two_table_star;
    use hamlet_core::planner::{explicit_plan, ExecStrategy, PlanKind};
    use hamlet_core::rules::TrRule;
    use hamlet_ml::CodeSource;

    #[test]
    fn view_covers_factorized_joins_only() {
        let star = two_table_star();
        let plan = explicit_plan(&[0, 1]).with_strategy(ExecStrategy::Factorize);
        let view = view_for_plan(&star, &plan).unwrap();
        assert_eq!(view.join_set(), &[0, 1]);
        // Entity features + FKs + one foreign feature per table.
        assert!(view.feature_index("a1").is_some());
        assert!(view.feature_index("b1").is_some());

        let partial = explicit_plan(&[0, 1]);
        let view = view_for_plan(&star, &partial).unwrap();
        // All-materialize plan: nothing to factorize.
        assert!(view.join_set().is_empty());
        assert!(view.feature_index("a1").is_none());
        assert!(view.feature_index("fk_a").is_some());
    }

    #[test]
    fn planned_view_matches_plan_kinds() {
        let star = two_table_star();
        let plan = hamlet_core::plan(&star, PlanKind::JoinAll, &TrRule::default(), 3)
            .with_strategy(ExecStrategy::Factorize);
        let view = view_for_plan(&star, &plan).unwrap();
        assert_eq!(view.n_features(), 3 + 3); // xs, fk_a, fk_b + a1, a2, b1
        assert_eq!(view.n_examples(), star.n_s());
    }
}
