//! Logistic regression trained through the factorized view.
//!
//! SGD cannot be reduced to per-table sufficient statistics the way naive
//! Bayes can — each step needs the full feature vector of one example.
//! What *can* be avoided is the join output: the generic
//! [`hamlet_ml::LogisticRegression::fit_source`] loop reads codes through
//! [`FactorizedView`], resolving foreign features by FK indirection on
//! the fly. The loop is the same monomorphic float-op sequence as the
//! materialized path, so given the same seed and epochs the weights are
//! **bitwise identical** — while memory stays `O(n_S + Σ n_Ri)`.

use hamlet_ml::{LogisticRegression, LogisticRegressionModel};

use crate::view::FactorizedView;

/// Fits logistic regression over the star schema without materializing
/// any join. `rows` are entity-row positions; `feats` are logical feature
/// positions in the view's layout. Bitwise-equal to fitting the same
/// configuration on the materialized dataset.
pub fn fit_factorized_logreg(
    view: &FactorizedView<'_>,
    config: &LogisticRegression,
    rows: &[usize],
    feats: &[usize],
) -> LogisticRegressionModel {
    config.fit_source(view, rows, feats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::tests::two_table_star;
    use hamlet_ml::{Classifier, Dataset, Model};

    #[test]
    fn weights_are_bitwise_equal_to_materialized() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let mat = Dataset::from_table(&star.materialize_all().unwrap());
        let rows: Vec<usize> = (0..star.n_s()).collect();
        let feats: Vec<usize> = (0..mat.n_features()).collect();

        for config in [
            LogisticRegression::default().with_seed(7),
            LogisticRegression::l1(0.01).with_epochs(5).with_seed(7),
            LogisticRegression::l2(0.05).with_seed(3),
        ] {
            let m_mat = config.fit(&mat, &rows, &feats);
            let m_fac = fit_factorized_logreg(&view, &config, &rows, &feats);
            assert_eq!(m_mat.weights(), m_fac.weights(), "weights diverged");
            assert_eq!(m_mat.bias(), m_fac.bias(), "bias diverged");
            for r in 0..star.n_s() {
                assert_eq!(m_mat.predict_row(&mat, r), m_fac.predict_row(&view, r));
            }
        }
    }

    #[test]
    fn subset_training_matches_too() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let mat = Dataset::from_table(&star.materialize_all().unwrap());
        let rows = vec![1usize, 2, 4, 5];
        let feats = vec![0usize, 3, 5];
        let config = LogisticRegression::default().with_epochs(4).with_seed(11);
        let m_mat = config.fit(&mat, &rows, &feats);
        let m_fac = fit_factorized_logreg(&view, &config, &rows, &feats);
        assert_eq!(m_mat.weights(), m_fac.weights());
    }
}
