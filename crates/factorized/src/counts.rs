//! Pushed-down class-conditional count aggregates — the JoinBoost recipe.
//!
//! Tree split scoring (and naive Bayes fitting) over a star schema needs
//! `count(X = v, Y = y)` tables per feature, restricted to an arbitrary
//! subset of entity rows (a tree node). For a *foreign* feature `X_R`
//! living on attribute table `R`, that table never has to touch the
//! join output:
//!
//! ```text
//! count(X_R = v, Y = y | rows) = Σ_{fk : R.X_R[fk] = v} count(FK = fk, Y = y | rows)
//! ```
//!
//! The inner aggregate `count(FK, Y | rows)` is a group-by over the
//! entity table alone — one `O(|rows|)` scan — and the outer fold maps
//! it through `R` in `O(n_R)`. Peak extra allocation is the dense
//! `n_R × |D_Y|` FK histogram, independent of the join fanout, so the
//! factorized path never pays for the wide table it avoids.
//!
//! Because the counts are integers, any float expression computed from
//! them (Gini gains, NB log-probabilities) is **bitwise identical** to
//! the same expression over counts scanned off the materialized join.

use hamlet_ml::CodeSource;

use crate::view::FactorizedView;

/// The FK slot (position in the view's join set) that resolves feature
/// `f`, or `None` when `f` is a base (entity-table) feature.
pub fn foreign_fk(view: &FactorizedView<'_>, f: usize) -> Option<usize> {
    view.foreign_fk_slot(f)
}

/// Dense `count(FK = fk, Y = y | rows)` histogram for FK slot `fk`,
/// flattened as `[fk_code * n_classes + y]` over the FK's full domain
/// (including codes with no surviving attribute row). One pass over
/// `rows`; nothing touches the attribute table.
pub fn fk_class_counts(view: &FactorizedView<'_>, fk: usize, rows: &[usize]) -> Vec<u64> {
    let c = view.n_classes();
    let idx = &view.fk_indices[fk];
    let mut dense = vec![0u64; idx.rid_to_row.len() * c];
    for &r in rows {
        dense[idx.fk_codes[r] as usize * c + view.label(r) as usize] += 1;
    }
    dense
}

/// Folds a dense FK histogram (from [`fk_class_counts`]) through the
/// attribute column backing foreign feature `f`, yielding the
/// class-conditional table flattened as `[y * d + v]` — the same layout
/// `hamlet_ml::suffstats::SuffStats::table` uses. FK codes with no
/// attribute row (open-domain dangling keys) contribute nothing, exactly
/// as they would be dropped by the inner join. Returns `None` when `f`
/// is not a foreign feature.
pub fn fold_through_fk(view: &FactorizedView<'_>, f: usize, dense: &[u64]) -> Option<Vec<u64>> {
    let (idx, r_codes, d) = view.joined_origin(f)?;
    let c = view.n_classes();
    let mut counts = vec![0u64; c * d];
    for (fk_code, &row) in idx.rid_to_row.iter().enumerate() {
        if row == u32::MAX {
            continue;
        }
        let v = r_codes[row as usize] as usize;
        for y in 0..c {
            counts[y * d + v] += dense[fk_code * c + y];
        }
    }
    Some(counts)
}

/// Class-conditional counts `[y * d + v]` of feature `f` over `rows`,
/// computed without ever materializing a join: base features by a direct
/// entity scan, foreign features via [`fk_class_counts`] +
/// [`fold_through_fk`].
pub fn class_conditional_counts(view: &FactorizedView<'_>, f: usize, rows: &[usize]) -> Vec<u64> {
    match foreign_fk(view, f) {
        None => {
            let c = view.n_classes();
            let d = view.feature_domain_size(f);
            let mut counts = vec![0u64; c * d];
            for &r in rows {
                counts[view.label(r) as usize * d + view.code(f, r) as usize] += 1;
            }
            counts
        }
        Some(fk) => {
            let dense = fk_class_counts(view, fk, rows);
            // Foreign features always have an origin, so the fold is
            // total here; an empty table is the benign fallback.
            fold_through_fk(view, f, &dense).unwrap_or_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::tests::two_table_star;
    use hamlet_ml::dataset::Dataset;

    /// Oracle: scan the materialized join output for the same counts.
    fn materialized_counts(data: &Dataset, f: usize, rows: &[usize]) -> Vec<u64> {
        let c = data.n_classes();
        let d = data.feature(f).domain_size;
        let mut counts = vec![0u64; c * d];
        for &r in rows {
            counts[data.labels()[r] as usize * d + data.feature(f).codes[r] as usize] += 1;
        }
        counts
    }

    #[test]
    fn pushdown_matches_materialized_scan_on_every_feature_and_subset() {
        let star = two_table_star();
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        let n_s = star.n_s();
        let all: Vec<usize> = (0..n_s).collect();
        let evens: Vec<usize> = (0..n_s).step_by(2).collect();
        let tiny: Vec<usize> = vec![0];
        for rows in [&all, &evens, &tiny, &Vec::new()] {
            for f in 0..data.n_features() {
                assert_eq!(
                    class_conditional_counts(&view, f, rows),
                    materialized_counts(&data, f, rows),
                    "feature {f} over {} rows",
                    rows.len()
                );
            }
        }
    }

    #[test]
    fn fk_histogram_sums_to_rows() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let rows: Vec<usize> = (0..star.n_s()).collect();
        for fk in 0..view.fk_indices.len() {
            let dense = fk_class_counts(&view, fk, &rows);
            assert_eq!(dense.iter().sum::<u64>(), rows.len() as u64);
        }
    }

    #[test]
    fn base_features_report_no_fk() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        for f in 0..view.n_base_features() {
            assert!(foreign_fk(&view, f).is_none());
        }
        for f in view.n_base_features()..view.n_features() {
            assert!(foreign_fk(&view, f).is_some());
        }
    }
}
