//! Pushed-down class-conditional count aggregates — the JoinBoost recipe.
//!
//! Tree split scoring (and naive Bayes fitting) over a star schema needs
//! `count(X = v, Y = y)` tables per feature, restricted to an arbitrary
//! subset of entity rows (a tree node). For a *foreign* feature `X_R`
//! living on attribute table `R`, that table never has to touch the
//! join output:
//!
//! ```text
//! count(X_R = v, Y = y | rows) = Σ_{fk : R.X_R[fk] = v} count(FK = fk, Y = y | rows)
//! ```
//!
//! The inner aggregate `count(FK, Y | rows)` is a group-by over the
//! entity table alone — one `O(|rows|)` scan — and the outer fold maps
//! it through `R` in `O(n_R)`. Peak extra allocation is the dense
//! `n_R × |D_Y|` FK histogram, independent of the join fanout, so the
//! factorized path never pays for the wide table it avoids.
//!
//! Because the counts are integers, any float expression computed from
//! them (Gini gains, NB log-probabilities) is **bitwise identical** to
//! the same expression over counts scanned off the materialized join.
//!
//! Large scans are morsel-parallel: rows split into at most
//! `HAMLET_THREADS` contiguous ranges (never finer than
//! [`hamlet_obs::resolved_morsel_rows`], so the per-worker dense
//! partials stay bounded at roughly one per thread), each range fills a
//! local table, and the locals merge **in morsel order**. Counts are
//! integers, so the merged table — and everything derived from it — is
//! bit-for-bit the sequential result at any `HAMLET_THREADS`. Kernels
//! consult [`hamlet_obs::parallel::in_parallel_region`] and degrade to
//! the sequential scan when the caller (a candidate sweep, a tree-node
//! fan-out) already runs inside a worker.

use hamlet_ml::CodeSource;
use hamlet_obs::parallel::{in_parallel_region, run_morsels};

use crate::view::FactorizedView;

/// Below this many rows the morsel fan-out costs more than the scan.
const PAR_THRESHOLD: usize = 1 << 16;

/// Effective worker count for a count scan: sequential when the input
/// is small or we are already inside a parallel region.
fn count_threads(n: usize) -> usize {
    if n < PAR_THRESHOLD || in_parallel_region() {
        1
    } else {
        hamlet_obs::env::resolved_threads().max(1)
    }
}

/// Morsel size that caps the number of live partial tables at roughly
/// `threads`: each partial is a full dense table, so finer morsels
/// would multiply peak allocation without adding parallelism.
fn bounded_morsel(n: usize, threads: usize) -> usize {
    hamlet_obs::resolved_morsel_rows().max(n.div_ceil(threads.max(1)))
}

/// Folds per-morsel tables into one, first morsel first — the fixed
/// merge order the determinism discipline requires.
fn merge_in_order(len: usize, partials: Vec<Vec<u64>>) -> Vec<u64> {
    let mut total = vec![0u64; len];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

/// The FK slot (position in the view's join set) that resolves feature
/// `f`, or `None` when `f` is a base (entity-table) feature.
pub fn foreign_fk(view: &FactorizedView<'_>, f: usize) -> Option<usize> {
    view.foreign_fk_slot(f)
}

/// Dense `count(FK = fk, Y = y | rows)` histogram for FK slot `fk`,
/// flattened as `[fk_code * n_classes + y]` over the FK's full domain
/// (including codes with no surviving attribute row). One pass over
/// `rows`; nothing touches the attribute table.
pub fn fk_class_counts(view: &FactorizedView<'_>, fk: usize, rows: &[usize]) -> Vec<u64> {
    let c = view.n_classes();
    let idx = &view.fk_indices[fk];
    let len = idx.rid_to_row.len() * c;
    let scan = |rows: &[usize]| {
        let mut dense = vec![0u64; len];
        for &r in rows {
            dense[idx.fk_codes[r] as usize * c + view.label(r) as usize] += 1;
        }
        dense
    };
    let threads = count_threads(rows.len());
    if threads <= 1 {
        return scan(rows);
    }
    let morsel = bounded_morsel(rows.len(), threads);
    let partials = run_morsels(rows.len(), morsel, threads, &|_, range| scan(&rows[range]));
    merge_in_order(len, partials)
}

/// Folds a dense FK histogram (from [`fk_class_counts`]) through the
/// attribute column backing foreign feature `f`, yielding the
/// class-conditional table flattened as `[y * d + v]` — the same layout
/// `hamlet_ml::suffstats::SuffStats::table` uses. FK codes with no
/// attribute row (open-domain dangling keys) contribute nothing, exactly
/// as they would be dropped by the inner join. Returns `None` when `f`
/// is not a foreign feature.
pub fn fold_through_fk(view: &FactorizedView<'_>, f: usize, dense: &[u64]) -> Option<Vec<u64>> {
    let (idx, r_codes, d) = view.joined_origin(f)?;
    let c = view.n_classes();
    let n_r = idx.rid_to_row.len();
    let fold = |range: std::ops::Range<usize>| {
        let mut counts = vec![0u64; c * d];
        for fk_code in range {
            let row = idx.rid_to_row[fk_code];
            if row == u32::MAX {
                continue;
            }
            let v = r_codes[row as usize] as usize;
            for y in 0..c {
                counts[y * d + v] += dense[fk_code * c + y];
            }
        }
        counts
    };
    let threads = count_threads(n_r);
    if threads <= 1 {
        return Some(fold(0..n_r));
    }
    let morsel = bounded_morsel(n_r, threads);
    let partials = run_morsels(n_r, morsel, threads, &|_, range| fold(range));
    Some(merge_in_order(c * d, partials))
}

/// Class-conditional counts `[y * d + v]` of feature `f` over `rows`,
/// computed without ever materializing a join: base features by a direct
/// entity scan, foreign features via [`fk_class_counts`] +
/// [`fold_through_fk`].
pub fn class_conditional_counts(view: &FactorizedView<'_>, f: usize, rows: &[usize]) -> Vec<u64> {
    match foreign_fk(view, f) {
        None => {
            let c = view.n_classes();
            let d = view.feature_domain_size(f);
            let scan = |rows: &[usize]| {
                let mut counts = vec![0u64; c * d];
                for &r in rows {
                    counts[view.label(r) as usize * d + view.code(f, r) as usize] += 1;
                }
                counts
            };
            let threads = count_threads(rows.len());
            if threads <= 1 {
                return scan(rows);
            }
            let morsel = bounded_morsel(rows.len(), threads);
            let partials = run_morsels(rows.len(), morsel, threads, &|_, range| scan(&rows[range]));
            merge_in_order(c * d, partials)
        }
        Some(fk) => {
            let dense = fk_class_counts(view, fk, rows);
            // Foreign features always have an origin, so the fold is
            // total here; an empty table is the benign fallback.
            fold_through_fk(view, f, &dense).unwrap_or_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::tests::two_table_star;
    use hamlet_ml::dataset::Dataset;

    /// Oracle: scan the materialized join output for the same counts.
    fn materialized_counts(data: &Dataset, f: usize, rows: &[usize]) -> Vec<u64> {
        let c = data.n_classes();
        let d = data.feature(f).domain_size;
        let mut counts = vec![0u64; c * d];
        for &r in rows {
            counts[data.labels()[r] as usize * d + data.feature(f).codes[r] as usize] += 1;
        }
        counts
    }

    #[test]
    fn pushdown_matches_materialized_scan_on_every_feature_and_subset() {
        let star = two_table_star();
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        let n_s = star.n_s();
        let all: Vec<usize> = (0..n_s).collect();
        let evens: Vec<usize> = (0..n_s).step_by(2).collect();
        let tiny: Vec<usize> = vec![0];
        for rows in [&all, &evens, &tiny, &Vec::new()] {
            for f in 0..data.n_features() {
                assert_eq!(
                    class_conditional_counts(&view, f, rows),
                    materialized_counts(&data, f, rows),
                    "feature {f} over {} rows",
                    rows.len()
                );
            }
        }
    }

    #[test]
    fn fk_histogram_sums_to_rows() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        let rows: Vec<usize> = (0..star.n_s()).collect();
        for fk in 0..view.fk_indices.len() {
            let dense = fk_class_counts(&view, fk, &rows);
            assert_eq!(dense.iter().sum::<u64>(), rows.len() as u64);
        }
    }

    /// A star large enough (`> PAR_THRESHOLD` entity rows) that the
    /// morsel-parallel paths actually engage on multi-core runners; the
    /// naive sequential scans are the bit-for-bit oracle.
    #[test]
    fn large_scan_parallel_path_matches_naive() {
        use hamlet_relational::catalog::AttributeTable;
        use hamlet_relational::{Domain, TableBuilder};

        let n = super::PAR_THRESHOLD + 123;
        let n_r = 301;
        let rid = Domain::indexed("AID", n_r).shared();
        let a = TableBuilder::new("A")
            .primary_key("AID", rid.clone(), (0..n_r as u32).collect())
            .feature(
                "a1",
                Domain::indexed("a1", 7).shared(),
                (0..n_r as u32).map(|i| (i * 13 + 2) % 7).collect(),
            )
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .primary_key(
                "SID",
                Domain::indexed("SID", n).shared(),
                (0..n as u32).collect(),
            )
            .target(
                "y",
                Domain::boolean("y").shared(),
                (0..n as u32).map(|i| (i * 7 + 1) % 2).collect(),
            )
            .feature(
                "xs",
                Domain::indexed("xs", 5).shared(),
                (0..n as u32).map(|i| (i * 11 + 3) % 5).collect(),
            )
            .foreign_key(
                "fk_a",
                "A",
                rid,
                (0..n as u32).map(|i| (i * 17 + 5) % n_r as u32).collect(),
            )
            .build()
            .unwrap();
        let star = hamlet_relational::StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk_a".into(),
                table: a,
            }],
        )
        .unwrap();
        let view = FactorizedView::new(&star).unwrap();
        let rows: Vec<usize> = (0..n).collect();

        // FK histogram vs naive scan.
        let idx = &view.fk_indices[0];
        let mut want_fk = vec![0u64; idx.rid_to_row.len() * 2];
        for &r in &rows {
            want_fk[idx.fk_codes[r] as usize * 2 + view.label(r) as usize] += 1;
        }
        assert_eq!(fk_class_counts(&view, 0, &rows), want_fk);

        // Base and foreign class-conditional tables vs naive scans.
        for f in 0..view.n_features() {
            let d = view.feature_domain_size(f);
            let mut want = vec![0u64; 2 * d];
            for &r in &rows {
                want[view.label(r) as usize * d + view.code(f, r) as usize] += 1;
            }
            assert_eq!(
                class_conditional_counts(&view, f, &rows),
                want,
                "feature {f}"
            );
        }
    }

    #[test]
    fn base_features_report_no_fk() {
        let star = two_table_star();
        let view = FactorizedView::new(&star).unwrap();
        for f in 0..view.n_base_features() {
            assert!(foreign_fk(&view, f).is_none());
        }
        for f in view.n_base_features()..view.n_features() {
            assert!(foreign_fk(&view, f).is_some());
        }
    }
}
