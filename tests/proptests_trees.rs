//! Property-based parity tests for the tree-learning subsystem: on
//! arbitrary star instances, factorized training (pushed-down count
//! aggregates, no join) must produce the *same object* — identical
//! splits, leaves, and predictions — as training on the materialized
//! join, and parallel split scoring must not depend on the thread
//! count. Dirty corpora (seeded chaos faults) must never panic tree
//! training.

use proptest::prelude::*;

use hamlet::chaos::corrupt::{corrupt_corpus, ChaosPlan, Corpus, FaultKind, FileProfile};
use hamlet::factorized::FactorizedView;
use hamlet::ml::classifier::{Classifier, Model};
use hamlet::ml::dataset::Dataset;
use hamlet::relational::{
    AttributeTable, DirtyPolicy, Domain, FkPolicy, LoadPolicy, Manifest, StarSchema, TableBuilder,
};
use hamlet::trees::{fit_factorized_gbt, fit_factorized_tree, CartTree, Gbt};

/// Strategy: a random one-attribute-table star — `n_r` attribute rows
/// with one foreign feature, `n_s` entity rows with an entity feature,
/// FKs, and ternary labels (mirrors `proptests_factorized.rs`).
fn star_instance() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>)> {
    (2usize..10).prop_flat_map(|n_r| {
        (
            Just(n_r),
            proptest::collection::vec(0..5u32, n_r), // X_R per RID
            proptest::collection::vec(0..n_r as u32, 20..150), // FK codes
        )
            .prop_flat_map(|(n_r, xr, fks)| {
                let n_s = fks.len();
                (
                    Just(n_r),
                    Just(xr),
                    Just(fks),
                    proptest::collection::vec(0..3u32, n_s), // entity feature
                    proptest::collection::vec(0..3u32, n_s), // labels
                )
            })
    })
}

fn build_star(n_r: usize, xr: Vec<u32>, fks: Vec<u32>, xs: Vec<u32>, ys: Vec<u32>) -> StarSchema {
    let rid = Domain::indexed("RID", n_r).shared();
    let r = TableBuilder::new("R")
        .primary_key("RID", rid.clone(), (0..n_r as u32).collect())
        .feature("xr", Domain::indexed("xr", 5).shared(), xr)
        .build()
        .unwrap();
    let s = TableBuilder::new("S")
        .target("y", Domain::indexed("y", 3).shared(), ys)
        .feature("xs", Domain::indexed("xs", 3).shared(), xs)
        .foreign_key("fk", "R", rid, fks)
        .build()
        .unwrap();
    StarSchema::new(
        s,
        vec![AttributeTable {
            fk: "fk".into(),
            table: r,
        }],
    )
    .unwrap()
}

proptest! {
    /// CART: the pushed-down class-conditional counts are the exact
    /// integers a scan of the join would produce, so the factorized
    /// tree is the *identical arena* — same splits, same leaves — and
    /// therefore predicts identically on every row.
    #[test]
    fn factorized_cart_is_bitwise_identical((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        let train: Vec<usize> = (0..star.n_s()).step_by(2).collect();
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let tree = CartTree::default();
        let m_mat = tree.fit(&data, &train, &feats);
        let m_fac = fit_factorized_tree(&view, &tree, &train, &feats);
        prop_assert_eq!(&m_mat, &m_fac);
        for row in 0..star.n_s() {
            prop_assert_eq!(m_mat.predict_row(&data, row), m_fac.predict_row(&view, row));
        }
    }

    /// GBT: the factorized path streams codes in the same row order the
    /// materialized scan uses, so the float program — and thus every
    /// leaf value and raw score — is bitwise equal.
    #[test]
    fn factorized_gbt_is_bitwise_identical((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        let train: Vec<usize> = (0..star.n_s()).collect();
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let gbt = Gbt { rounds: 4, ..Gbt::default() };
        let m_mat = gbt.fit(&data, &train, &feats);
        let m_fac = fit_factorized_gbt(&view, &gbt, &train, &feats);
        prop_assert_eq!(&m_mat, &m_fac);
        for row in 0..star.n_s() {
            prop_assert!(
                m_mat.raw_score(&data, row).to_bits() == m_fac.raw_score(&view, row).to_bits(),
                "row {} raw scores diverge", row
            );
        }
    }

    /// Thread invariance: split gains are computed in parallel chunks
    /// but reduced serially in feature order, so the fitted model is
    /// bitwise identical at 1 and 8 threads (`threads` is exactly what
    /// `HAMLET_THREADS` resolves into) — for CART and GBT both.
    #[test]
    fn tree_models_are_thread_count_invariant((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let train: Vec<usize> = (0..star.n_s()).collect();
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let cart_1 = CartTree { threads: Some(1), ..CartTree::default() };
        let cart_8 = CartTree { threads: Some(8), ..CartTree::default() };
        prop_assert_eq!(
            cart_1.fit(&data, &train, &feats),
            cart_8.fit(&data, &train, &feats)
        );
        let gbt_1 = Gbt { rounds: 3, threads: Some(1), ..Gbt::default() };
        let gbt_8 = Gbt { rounds: 3, threads: Some(8), ..Gbt::default() };
        prop_assert_eq!(
            gbt_1.fit(&data, &train, &feats),
            gbt_8.fit(&data, &train, &feats)
        );
    }
}

const MANIFEST: &str = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";

/// A clean two-table star corpus: 60 customers over 6 employers
/// (mirrors `tests/chaos.rs`).
fn clean_corpus() -> Corpus {
    let mut corpus = Corpus::new();
    let mut customers = String::from("Churn,Age,EmployerID\n");
    for i in 0..60 {
        customers.push_str(&format!("{},{},e{}\n", i % 2, 20 + i % 30, i % 6));
    }
    let mut employers = String::from("EmployerID,Country\n");
    for e in 0..6 {
        employers.push_str(&format!("e{},c{}\n", e, e % 3));
    }
    corpus.insert("customers.csv".into(), customers);
    corpus.insert("employers.csv".into(), employers);
    corpus
}

fn chaos_plan(seed: u64, faults_per_file: usize) -> ChaosPlan {
    ChaosPlan {
        seed,
        faults_per_file,
        kinds: FaultKind::ALL.to_vec(),
        profiles: std::collections::BTreeMap::new(),
    }
    .with_profile(
        "customers.csv",
        FileProfile {
            numeric_cols: vec![1],
            pk_col: None,
            fk_cols: vec![2],
        },
    )
    .with_profile(
        "employers.csv",
        FileProfile {
            numeric_cols: vec![],
            pk_col: Some(0),
            fk_cols: vec![],
        },
    )
}

proptest! {
    /// Tree training over whatever survives a lenient load of a
    /// corrupted corpus never panics: either the load fails with a
    /// typed error, or CART and GBT both fit and predict in-range
    /// classes on every surviving row.
    #[test]
    fn tree_training_on_dirty_corpora_never_panics(
        seed in 0u64..100,
        faults in 1usize..6,
    ) {
        let (dirty, _) = corrupt_corpus(&clean_corpus(), &chaos_plan(seed, faults));
        let dir = std::env::temp_dir()
            .join("hamlet_trees_it")
            .join(format!("dirty_{seed}_{faults}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (file, text) in &dirty {
            std::fs::write(dir.join(file), text).unwrap();
        }
        std::fs::write(dir.join("schema.manifest"), MANIFEST).unwrap();
        let text = std::fs::read_to_string(dir.join("schema.manifest")).unwrap();
        let manifest = Manifest::parse(&text).unwrap();
        let policy = LoadPolicy {
            on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 1000 },
            on_dangling_fk: FkPolicy::DropRow,
            ..LoadPolicy::default()
        };
        if let Ok(load) = manifest.load_policy(&dir, &policy) {
            if let Ok(wide) = load.star.materialize_all() {
                let data = Dataset::from_table(&wide);
                let rows: Vec<usize> = (0..data.n_examples()).collect();
                let feats: Vec<usize> = (0..data.n_features()).collect();
                let n_classes = data.n_classes() as u32;
                let cart = CartTree::default().fit(&data, &rows, &feats);
                let gbt = Gbt { rounds: 2, ..Gbt::default() }.fit(&data, &rows, &feats);
                for &r in &rows {
                    prop_assert!(cart.predict_row(&data, r) < n_classes.max(1));
                    prop_assert!(gbt.predict_row(&data, r) < n_classes.max(1));
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
