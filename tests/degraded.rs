//! Degraded-mode proptests: the availability layer's contract, from
//! DESIGN.md §11.
//!
//! Three properties over randomized corpora:
//!
//! * a degraded load (attribute table withheld, FK-only surrogate
//!   substituted) trains and scores **bit-for-bit identically** to an
//!   explicit key-only corpus — the surrogate really is the cold-start
//!   `Others` path made literal, not an approximation;
//! * with no fault armed, [`TablePolicy::Require`] and
//!   [`TablePolicy::AllowDegraded`] agree bit-for-bit — tolerance is
//!   free when nothing is broken;
//! * an arbitrarily corrupted attribute table never panics the
//!   degraded load: it substitutes, quarantines, or fails typed.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use hamlet::chaos::corrupt::{corrupt_corpus, ChaosPlan, Corpus, FaultKind, FileProfile};
use hamlet::chaos::failpoint;
use hamlet::core::advisor::AdvisorConfig;
use hamlet::core::ModelFamily;
use hamlet::obs::json::Json;
use hamlet::relational::{
    DirtyPolicy, FkPolicy, LoadPolicy, Manifest, RelationalError, StarLoad, TablePolicy,
};
use hamlet::serve::{build_artifact_with_availability, ModelArtifact, ModelKind, Scorer};

/// The full corpus: an attribute table with one feature.
const FULL_MANIFEST: &str = "\
entity customers.csv
target Churn
feature Color
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";

/// The explicit cold-start corpus: the same attribute table reduced to
/// its key column — on disk what the FK-only surrogate is in memory.
const KEY_ONLY_MANIFEST: &str = "\
entity customers.csv
target Churn
feature Color
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
";

/// Random star instances: employer count, labels, entity feature, FK
/// codes, and per-employer attribute values.
#[allow(clippy::type_complexity)]
fn star_instance() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>)> {
    (2usize..6).prop_flat_map(|n_r| {
        (60usize..100).prop_flat_map(move |n_s| {
            (
                Just(n_r),
                proptest::collection::vec(0u32..2, n_s),
                proptest::collection::vec(0u32..4, n_s),
                proptest::collection::vec(0..n_r as u32, n_s),
                proptest::collection::vec(0u32..3, n_r),
            )
        })
    })
}

/// Entity CSV. The first two labels are pinned to {0, 1} so both
/// classes exist; the first `n_r` FK codes are pinned to 0..n_r so
/// every employer is observed (the FK domain in first-appearance order
/// is then e0..e{n_r-1}, matching the key-only table's row order).
fn entity_csv(n_r: usize, labels: &[u32], colors: &[u32], fks: &[u32]) -> String {
    let mut out = String::from("Churn,Color,EmployerID\n");
    for i in 0..labels.len() {
        let label = if i < 2 { i as u32 } else { labels[i] };
        let fk = if i < n_r { i as u32 } else { fks[i] };
        out.push_str(&format!("{label},x{},e{fk}\n", colors[i]));
    }
    out
}

fn employers_csv(countries: &[u32]) -> String {
    let mut out = String::from("EmployerID,Country\n");
    for (e, c) in countries.iter().enumerate() {
        out.push_str(&format!("e{e},c{c}\n"));
    }
    out
}

fn key_only_csv(n_r: usize) -> String {
    let mut out = String::from("EmployerID\n");
    for e in 0..n_r {
        out.push_str(&format!("e{e}\n"));
    }
    out
}

/// Writes a corpus into a fresh scratch dir and returns it.
fn write_dir(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir()
        .join("hamlet_degraded_it")
        .join(format!("{tag}_{}", SEQ.fetch_add(1, Ordering::Relaxed)));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, text) in files {
        std::fs::write(dir.join(name), text).unwrap();
    }
    dir
}

fn load(dir: &Path, on_missing_table: TablePolicy) -> Result<StarLoad, RelationalError> {
    let text = std::fs::read_to_string(dir.join("schema.manifest")).unwrap();
    let manifest = Manifest::parse(&text).unwrap();
    manifest.load_policy(
        dir,
        &LoadPolicy {
            on_dirty: DirtyPolicy::Abort,
            on_dangling_fk: FkPolicy::Abort,
            on_missing_table,
        },
    )
}

/// Fits a Naive Bayes artifact over the load's star.
fn build(load: &StarLoad) -> ModelArtifact {
    let config = AdvisorConfig::for_family(ModelFamily::NaiveBayes);
    let kind = ModelKind::from_name("nb").unwrap();
    build_artifact_with_availability(&load.star, kind, &config, "churn", &load.substitutions)
        .unwrap_or_else(|e| panic!("artifact build failed: {e}"))
        .artifact
}

/// Positional probe rows spanning the schema: an all-zeros row, a
/// cold-start row (unseen FK code), and a stride of in-domain rows.
fn probe_body(artifact: &ModelArtifact) -> String {
    let mut rows: Vec<String> = Vec::new();
    let zeros: Vec<String> = artifact.features.iter().map(|_| "0".to_string()).collect();
    rows.push(format!("[{}]", zeros.join(",")));
    let cold: Vec<String> = artifact
        .features
        .iter()
        .map(|f| {
            if f.fk.is_some() {
                "999999".to_string()
            } else {
                "0".to_string()
            }
        })
        .collect();
    rows.push(format!("[{}]", cold.join(",")));
    for stride in 1..4usize {
        let row: Vec<String> = artifact
            .features
            .iter()
            .enumerate()
            .map(|(j, f)| ((stride * (j + 1)) % f.domain_size).to_string())
            .collect();
        rows.push(format!("[{}]", row.join(",")));
    }
    format!("{{\"rows\":[{}]}}", rows.join(","))
}

/// Scores `body` against `artifact`, returning the canonical rendering.
fn score(artifact: ModelArtifact, body: &str) -> String {
    let doc = Json::parse(body).unwrap();
    let scorer = Scorer::new(artifact);
    let preds = scorer
        .predict_body(&doc)
        .unwrap_or_else(|e| panic!("scoring failed: {e}"));
    Scorer::render_predictions(&preds).to_string()
}

proptest! {
    /// The tentpole equivalence: a model trained over a degraded load
    /// (table withheld at open, FK-only surrogate substituted) predicts
    /// bit-for-bit like a model trained over the explicit key-only
    /// corpus — including on cold-start (unseen FK) rows, which both
    /// route through the trained `Others` bucket.
    #[test]
    fn degraded_load_scores_like_the_explicit_key_only_corpus(
        (n_r, labels, colors, fks, countries) in star_instance()
    ) {
        let _g = failpoint::serial();
        let customers = entity_csv(n_r, &labels, &colors, &fks);
        let dir_a = write_dir("degraded", &[
            ("customers.csv", &customers),
            ("employers.csv", &employers_csv(&countries)),
            ("schema.manifest", FULL_MANIFEST),
        ]);
        let dir_b = write_dir("keyonly", &[
            ("customers.csv", &customers),
            ("employers.csv", &key_only_csv(n_r)),
            ("schema.manifest", KEY_ONLY_MANIFEST),
        ]);

        failpoint::set_failpoints("relational.table_open=io@1").unwrap();
        let degraded = load(&dir_a, TablePolicy::AllowDegraded);
        failpoint::clear_failpoints();
        let degraded = degraded.unwrap_or_else(|e| panic!("degraded load failed: {e}"));
        prop_assert_eq!(degraded.substitutions.len(), 1, "one surrogate substitution");
        prop_assert_eq!(degraded.substitutions[0].n_entities, n_r);

        let explicit = load(&dir_b, TablePolicy::Require)
            .unwrap_or_else(|e| panic!("key-only load failed: {e}"));
        let a = build(&degraded);
        let b = build(&explicit);
        prop_assert!(
            a.decisions.iter().any(|d| d.degraded),
            "the substituted decision must be marked degraded"
        );
        prop_assert_eq!(
            format!("{:?}", a.features), format!("{:?}", b.features),
            "identical feature schemas"
        );
        let body = probe_body(&a);
        prop_assert_eq!(score(a, &body), score(b, &body));
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    /// With every table present and no fault armed, the tolerant policy
    /// is invisible: same substitution-free load, same predictions,
    /// bit for bit.
    #[test]
    fn tolerant_policy_is_invisible_without_faults(
        (n_r, labels, colors, fks, countries) in star_instance()
    ) {
        let _g = failpoint::serial();
        let dir = write_dir("parity", &[
            ("customers.csv", &entity_csv(n_r, &labels, &colors, &fks)),
            ("employers.csv", &employers_csv(&countries)),
            ("schema.manifest", FULL_MANIFEST),
        ]);
        let strict = load(&dir, TablePolicy::Require)
            .unwrap_or_else(|e| panic!("strict load failed: {e}"));
        let tolerant = load(&dir, TablePolicy::AllowDegraded)
            .unwrap_or_else(|e| panic!("tolerant load failed: {e}"));
        prop_assert!(tolerant.substitutions.is_empty());
        let a = build(&strict);
        let b = build(&tolerant);
        prop_assert!(b.decisions.iter().all(|d| !d.degraded));
        let body = probe_body(&a);
        prop_assert_eq!(score(a, &body), score(b, &body));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An arbitrarily corrupted attribute table never panics the
    /// degraded load: the outcome is a loaded star (possibly with
    /// quarantined rows), or a typed error. With the open failpoint
    /// armed on top, the corrupt bytes are never even parsed — the
    /// surrogate takes over.
    #[test]
    fn corrupt_attribute_tables_never_panic_the_degraded_load(
        seed in 0u64..120,
        faults in 1usize..6,
        withhold in proptest::bool::ANY,
    ) {
        let _g = failpoint::serial();
        let mut corpus = Corpus::new();
        let mut customers = String::from("Churn,Color,EmployerID\n");
        for i in 0..60 {
            customers.push_str(&format!("{},x{},e{}\n", i % 2, i % 4, i % 5));
        }
        let mut employers = String::from("EmployerID,Country\n");
        for e in 0..5 {
            employers.push_str(&format!("e{e},c{}\n", e % 3));
        }
        corpus.insert("customers.csv".into(), customers);
        corpus.insert("employers.csv".into(), employers);
        let plan = ChaosPlan {
            seed,
            faults_per_file: faults,
            kinds: FaultKind::ALL.to_vec(),
            profiles: Default::default(),
        }
        .with_profile("employers.csv", FileProfile {
            numeric_cols: vec![],
            pk_col: Some(0),
            fk_cols: vec![],
        });
        let (dirty, injected) = corrupt_corpus(&corpus, &plan);
        let dir = write_dir("corrupt", &[
            ("customers.csv", &dirty["customers.csv"]),
            ("employers.csv", &dirty["employers.csv"]),
            ("schema.manifest", FULL_MANIFEST),
        ]);
        if withhold {
            failpoint::set_failpoints("relational.table_open=io@1").unwrap();
        }
        let text = std::fs::read_to_string(dir.join("schema.manifest")).unwrap();
        let manifest = Manifest::parse(&text).unwrap();
        let result = manifest.load_policy(
            &dir,
            &LoadPolicy {
                on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 1000 },
                on_dangling_fk: FkPolicy::DropRow,
                on_missing_table: TablePolicy::AllowDegraded,
            },
        );
        failpoint::clear_failpoints();
        match result {
            Ok(load) => {
                if withhold {
                    prop_assert_eq!(
                        load.substitutions.len(), 1,
                        "withheld table must be substituted; faults: {:?}", injected
                    );
                }
            }
            Err(e) => prop_assert!(
                !e.to_string().is_empty(),
                "typed, renderable error; faults: {:?}", injected
            ),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A deleted attribute table is the canonical degraded case: strict
/// load fails typed naming the file; tolerant load substitutes.
#[test]
fn absent_table_fails_strict_and_substitutes_tolerant() {
    let _g = failpoint::serial();
    let mut customers = String::from("Churn,Color,EmployerID\n");
    for i in 0..60 {
        customers.push_str(&format!("{},x{},e{}\n", i % 2, i % 4, i % 5));
    }
    let dir = write_dir(
        "absent",
        &[
            ("customers.csv", &customers),
            ("schema.manifest", FULL_MANIFEST),
        ],
    );
    let err = load(&dir, TablePolicy::Require).unwrap_err();
    assert!(err.to_string().contains("employers"), "{err}");
    let degraded = load(&dir, TablePolicy::AllowDegraded).unwrap();
    assert_eq!(degraded.substitutions.len(), 1);
    assert!(degraded.substitutions[0].evidence().contains("FK-only"));
    let artifact = build(&degraded);
    assert!(artifact.decisions.iter().any(|d| d.degraded));
    std::fs::remove_dir_all(&dir).ok();
}
