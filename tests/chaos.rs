//! Chaos-harness integration tests: seeded corpus corruption against the
//! lenient ingest policies, and process-level crash/resume through the
//! `hamlet` binary.
//!
//! The contract under test, from the resilience sweep: a corrupted
//! corpus either loads with every damaged row accounted for
//! (`quarantined + dropped + loaded == total`) or fails with a typed
//! error naming the offending row — it never panics — and a
//! checkpointed Monte-Carlo run killed mid-flight resumes to
//! byte-identical output.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use proptest::prelude::*;

use hamlet::chaos::corrupt::{corrupt_corpus, ChaosPlan, Corpus, FaultKind, FileProfile};
use hamlet::chaos::failpoint;
use hamlet::relational::{DirtyPolicy, FkPolicy, LoadPolicy, Manifest, RelationalError};

const MANIFEST: &str = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";

/// A clean two-table star corpus: 60 customers over 6 employers.
fn clean_corpus() -> Corpus {
    let mut corpus = Corpus::new();
    let mut customers = String::from("Churn,Age,EmployerID\n");
    for i in 0..60 {
        customers.push_str(&format!("{},{},e{}\n", i % 2, 20 + i % 30, i % 6));
    }
    let mut employers = String::from("EmployerID,Country\n");
    for e in 0..6 {
        employers.push_str(&format!("e{},c{}\n", e, e % 3));
    }
    corpus.insert("customers.csv".into(), customers);
    corpus.insert("employers.csv".into(), employers);
    corpus
}

fn chaos_plan(seed: u64, faults_per_file: usize, kinds: Vec<FaultKind>) -> ChaosPlan {
    ChaosPlan {
        seed,
        faults_per_file,
        kinds,
        profiles: BTreeMap::new(),
    }
    .with_profile(
        "customers.csv",
        FileProfile {
            numeric_cols: vec![1],
            pk_col: None,
            fk_cols: vec![2],
        },
    )
    .with_profile(
        "employers.csv",
        FileProfile {
            numeric_cols: vec![],
            pk_col: Some(0),
            fk_cols: vec![],
        },
    )
}

/// Writes a corpus plus the manifest into a scratch dir and returns it.
fn write_corpus(name: &str, corpus: &Corpus) -> PathBuf {
    let dir = std::env::temp_dir().join("hamlet_chaos_it").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (file, text) in corpus {
        std::fs::write(dir.join(file), text).unwrap();
    }
    std::fs::write(dir.join("schema.manifest"), MANIFEST).unwrap();
    dir
}

fn load_with(
    dir: &Path,
    policy: &LoadPolicy,
) -> Result<hamlet::relational::StarLoad, RelationalError> {
    let text = std::fs::read_to_string(dir.join("schema.manifest")).unwrap();
    let manifest = Manifest::parse(&text).unwrap();
    manifest.load_policy(dir, policy)
}

/// Data rows in the dirty text (anything after the header line).
fn data_rows(corpus: &Corpus, file: &str) -> usize {
    // Mirrors the lenient reader's record enumeration (blank lines are
    // not records).
    corpus[file]
        .lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .count()
}

proptest! {
    /// Lenient load of an arbitrarily corrupted corpus: either every
    /// damaged row is accounted for, or the load fails with a typed
    /// error. A panic fails this test — that is the property.
    #[test]
    fn corrupted_corpus_loads_with_exact_accounting_or_typed_error(
        seed in 0u64..150,
        faults in 1usize..7,
    ) {
        let (dirty, injected) = corrupt_corpus(&clean_corpus(), &chaos_plan(seed, faults, FaultKind::ALL.to_vec()));
        let dir = write_corpus(&format!("prop_{seed}_{faults}"), &dirty);
        let policy = LoadPolicy {
            on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 1000 },
            on_dangling_fk: FkPolicy::DropRow,
            ..LoadPolicy::default()
        };
        match load_with(&dir, &policy) {
            Ok(load) => {
                // Entity accounting: loaded + quarantined + dropped
                // covers every data row of the dirty file.
                let quarantined_entity = load
                    .quarantine
                    .iter()
                    .find(|q| q.table == "customers")
                    .map(|q| q.rows.len())
                    .unwrap_or(0);
                prop_assert_eq!(
                    load.star.n_s() + quarantined_entity + load.dropped_rows.len(),
                    data_rows(&dirty, "customers.csv"),
                    "entity rows must be loaded, quarantined, or dropped; faults: {:?}",
                    injected
                );
                // Attribute accounting: DropRow never widens tables.
                let quarantined_attr = load
                    .quarantine
                    .iter()
                    .find(|q| q.table == "employers")
                    .map(|q| q.rows.len())
                    .unwrap_or(0);
                prop_assert_eq!(
                    load.star.attributes()[0].n_rows() + quarantined_attr,
                    data_rows(&dirty, "employers.csv")
                );
            }
            Err(e) => {
                // Typed and renderable; common causes: every employer
                // row quarantined (EmptyTable), or the whole entity
                // dropped.
                let msg = e.to_string();
                prop_assert!(!msg.is_empty(), "{:?}", e);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Strict (default) load of the same corrupted corpora: a typed
    /// error, never a panic or a silent success over damaged data.
    #[test]
    fn corrupted_corpus_strict_load_fails_typed(seed in 0u64..150) {
        let (dirty, injected) = corrupt_corpus(&clean_corpus(), &chaos_plan(seed, 4, FaultKind::ALL.to_vec()));
        let dir = write_corpus(&format!("strict_{seed}"), &dirty);
        match load_with(&dir, &LoadPolicy::default()) {
            // A fault can land harmlessly (e.g. a duplicated empty
            // field inside a quoted region); success must then mean a
            // fully consistent star.
            Ok(load) => prop_assert!(!load.degraded()),
            Err(e) => prop_assert!(!e.to_string().is_empty(), "{:?} (faults {:?})", e, injected),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn quarantine_budget_overflow_names_the_last_row() {
    // Force structural damage on every data row region with a zero
    // budget: the typed error must name the row that broke the budget.
    let (dirty, _) = corrupt_corpus(
        &clean_corpus(),
        &chaos_plan(9, 3, vec![FaultKind::RowWidth]),
    );
    let dir = write_corpus("budget", &dirty);
    let policy = LoadPolicy {
        on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 0 },
        on_dangling_fk: FkPolicy::Abort,
        ..LoadPolicy::default()
    };
    let err = load_with(&dir, &policy).unwrap_err();
    match &err {
        RelationalError::DirtyBudgetExceeded {
            budget,
            quarantined,
            ..
        } => {
            assert_eq!(*budget, 0);
            assert!(*quarantined > 0);
        }
        other => panic!("expected DirtyBudgetExceeded, got {other:?}"),
    }
    assert!(err.to_string().contains("row"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_cli_run_survives_a_kill_and_resumes_byte_identical() {
    // End-to-end through the real binary: a simulated crash (exit-mode
    // failpoint, code 42) mid-run, then a resume that must reproduce
    // the uninterrupted run exactly.
    let exe = env!("CARGO_BIN_EXE_hamlet");
    let args = [
        "simulate",
        "--n-s",
        "150",
        "--n-r",
        "12",
        "--train-sets",
        "4",
        "--repeats",
        "2",
        "--seed",
        "23",
    ];
    let ckpt = std::env::temp_dir()
        .join("hamlet_chaos_it")
        .join("cli_resume");
    let _ = std::fs::remove_dir_all(&ckpt);

    let baseline = Command::new(exe).args(args).output().unwrap();
    assert!(
        baseline.status.success(),
        "{}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    let crashed = Command::new(exe)
        .args(args)
        .arg("--resume")
        .env("HAMLET_CHECKPOINT_DIR", &ckpt)
        .env("HAMLET_FAILPOINTS", "runner.cell=exit@3")
        .output()
        .unwrap();
    assert_eq!(
        crashed.status.code(),
        Some(failpoint::EXIT_CODE),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&crashed.stdout),
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(ckpt.exists(), "the crashed run persisted completed cells");

    let resumed = Command::new(exe)
        .args(args)
        .arg("--resume")
        .env("HAMLET_CHECKPOINT_DIR", &ckpt)
        .output()
        .unwrap();
    assert!(resumed.status.success());

    let strip = |bytes: &[u8]| {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with("checkpoints:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&resumed.stdout),
        strip(&baseline.stdout),
        "resume must be byte-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn invalid_failpoint_spec_is_a_startup_error() {
    // The spec is parsed at the first failpoint hit (`manifest.read`
    // here); a typo must abort with an actionable message, not silently
    // run fault-free.
    let exe = env!("CARGO_BIN_EXE_hamlet");
    let dir = write_corpus("badspec", &clean_corpus());
    let out = Command::new(exe)
        .arg("advise-files")
        .arg(dir.join("schema.manifest"))
        .env("HAMLET_FAILPOINTS", "manifest.read=teleport")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("HAMLET_FAILPOINTS"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn io_failpoint_on_manifest_read_is_a_clean_error() {
    let exe = env!("CARGO_BIN_EXE_hamlet");
    let dir = write_corpus("io_fp", &clean_corpus());
    let out = Command::new(exe)
        .arg("advise-files")
        .arg(dir.join("schema.manifest"))
        .env("HAMLET_FAILPOINTS", "manifest.read=io")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "CLI usage-error exit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected IO failure"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
