//! Integration tests tying the crates together around the paper's formal
//! claims: redundancy of foreign features (Prop 3.1), the mutual-
//! information ordering (Thm 3.1), the IGR inversion (Prop 3.2), the ROR
//! bounds (Sec 4.2), and the rules' behaviour on all seven datasets.

use hamlet::core::planner::join_stats;
use hamlet::core::ror::{exact_ror, worst_case_ror, OracleRor};
use hamlet::core::rules::{DecisionRule, RorRule, TrRule};
use hamlet::datagen::realistic::DatasetSpec;
use hamlet::datagen::sim::{Scenario, SimulationConfig};
use hamlet::datagen::skew::FkSkew;
use hamlet::ml::info::{information_gain_ratio, mutual_information};
use hamlet::relational::FunctionalDependency;

const SCALE: f64 = 0.01;
const SEED: u64 = 99;

/// Prop 3.1's premise: the join creates the FD `FK -> X_R` in `T`, for
/// every foreign feature, on every dataset.
#[test]
fn join_creates_fk_to_xr_fd_everywhere() {
    for spec in DatasetSpec::all() {
        let g = spec.generate(SCALE, SEED);
        let t = g.star.materialize_all().expect("materializes");
        for (i, at) in spec.tables.iter().enumerate() {
            for f in &at.features {
                let fd = FunctionalDependency::new(&[spec.tables[i].fk], &[f.name]);
                assert!(
                    fd.holds_in(&t).expect("attributes exist"),
                    "{}: FD {} -> {} violated",
                    spec.name,
                    at.fk,
                    f.name
                );
            }
        }
    }
}

/// Thm 3.1: `I(F;Y) <= I(FK;Y)` for every foreign feature `F`, measured
/// on the joined instance.
#[test]
fn mutual_information_of_fk_dominates_foreign_features() {
    for spec in DatasetSpec::all() {
        let g = spec.generate(SCALE, SEED);
        let t = g.star.materialize_all().expect("materializes");
        let y = t.target_column().expect("target exists");
        let rows: Vec<usize> = (0..t.n_rows()).collect();
        for at in &spec.tables {
            let fk = t.column_by_name(at.fk).expect("fk exists");
            let i_fk = mutual_information(
                fk.codes(),
                fk.domain().size(),
                y.codes(),
                y.domain().size(),
                &rows,
            );
            for f in &at.features {
                let col = t.column_by_name(f.name).expect("feature exists");
                let i_f = mutual_information(
                    col.codes(),
                    col.domain().size(),
                    y.codes(),
                    y.domain().size(),
                    &rows,
                );
                assert!(
                    i_f <= i_fk + 1e-9,
                    "{}: I({};Y)={i_f} > I({};Y)={i_fk}",
                    spec.name,
                    f.name,
                    at.fk
                );
            }
        }
    }
}

/// Prop 3.2: IGR *can* invert the ordering — a foreign feature can have
/// higher IGR than the FK. Our Yelp analog (strong BusinessStars signal,
/// huge BusinessID domain) exhibits exactly this.
#[test]
fn igr_can_prefer_foreign_feature_over_fk() {
    let g = DatasetSpec::yelp().generate(0.02, SEED);
    let t = g.star.materialize_all().expect("materializes");
    let y = t.target_column().expect("target");
    let rows: Vec<usize> = (0..t.n_rows()).collect();
    let fk = t.column_by_name("BusinessID").expect("fk");
    let stars = t.column_by_name("BusinessStars").expect("feature");
    let igr_fk = information_gain_ratio(
        fk.codes(),
        fk.domain().size(),
        y.codes(),
        y.domain().size(),
        &rows,
    );
    let igr_stars = information_gain_ratio(
        stars.codes(),
        stars.domain().size(),
        y.codes(),
        y.domain().size(),
        &rows,
    );
    assert!(
        igr_stars > igr_fk,
        "expected IGR(BusinessStars)={igr_stars} > IGR(BusinessID)={igr_fk}"
    );
}

/// The worst-case ROR really is an upper bound on every oracle ROR with
/// consistent inputs.
#[test]
fn worst_case_ror_bounds_oracle_rors() {
    let n = 50_000;
    let fk_domain = 2_000;
    let q_r_star = 3;
    let worst = worst_case_ror(n, fk_domain, q_r_star, 0.1);
    for q_s in [0usize, 5, 50] {
        for q_no in [q_r_star, 10, 100, fk_domain] {
            let oracle = OracleRor {
                v_yes: q_s + fk_domain,
                v_no: q_s + q_no,
                delta_bias: -0.01, // Prop 3.3: avoiding cannot increase bias
            };
            let exact = exact_ror(oracle, n, 0.1);
            assert!(
                exact <= worst + 1e-9,
                "oracle ROR {exact} exceeds worst case {worst} (q_s={q_s}, q_no={q_no})"
            );
        }
    }
}

/// Sec 5.2.2's headline: the TR rule and the ROR rule give identical
/// verdicts on every attribute table of every dataset.
#[test]
fn tr_and_ror_rules_agree_on_all_fifteen_tables() {
    let tr = TrRule::default();
    let ror = RorRule::default();
    let mut checked = 0;
    for spec in DatasetSpec::all() {
        let g = spec.generate(0.05, SEED);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        for i in 0..spec.tables.len() {
            let stats = join_stats(&g.star, i, n_train);
            assert_eq!(
                tr.decide(&stats).is_avoid(),
                ror.decide(&stats).is_avoid(),
                "{} / {}: rules disagree (TR={}, ROR={})",
                spec.name,
                spec.tables[i].table,
                tr.statistic(&stats),
                ror.statistic(&stats)
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 15);
}

/// Conservatism (Fig 1): whenever a rule says "avoid", the planted
/// ground truth must agree that avoiding is safe. (The converse may fail
/// — those are the missed opportunities.)
#[test]
fn rules_are_conservative_wrt_planted_ground_truth() {
    let tr = TrRule::default();
    let mut avoided = 0;
    let mut missed = 0;
    for spec in DatasetSpec::all() {
        let g = spec.generate(0.05, SEED);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        for (i, at) in spec.tables.iter().enumerate() {
            let stats = join_stats(&g.star, i, n_train);
            let decision = tr.decide(&stats);
            if decision.is_avoid() {
                assert!(
                    at.safe_to_avoid_in_hindsight,
                    "{} / {}: rule avoided an unsafe join",
                    spec.name, at.table
                );
                avoided += 1;
            } else if at.safe_to_avoid_in_hindsight {
                missed += 1;
            }
        }
    }
    // The paper's tallies: 7 avoided safely, some missed opportunities.
    assert_eq!(avoided, 7, "expected exactly 7 joins predicted safe");
    assert!(
        missed >= 3,
        "expected at least 3 missed opportunities, got {missed}"
    );
}

/// The simulation's conditional distributions are exact: empirical label
/// frequencies converge to them.
#[test]
fn simulation_conditionals_are_exact() {
    let cfg = SimulationConfig {
        scenario: Scenario::AllFeatures,
        d_s: 2,
        d_r: 2,
        n_r: 8,
        p: 0.2,
        skew: FkSkew::Uniform,
    };
    let world = cfg.build_world(5);
    let sample = world.sample(60_000, 6);
    let ent = sample.star.entity();
    let y = ent.target_column().unwrap();
    // Group rows by conditional and compare frequencies.
    let mut by_cond: std::collections::HashMap<u64, (usize, usize)> = Default::default();
    for (i, cond) in sample.cond.iter().enumerate() {
        let key = (cond[1] * 1e6) as u64;
        let e = by_cond.entry(key).or_insert((0, 0));
        e.0 += 1;
        e.1 += (y.get(i) == 1) as usize;
    }
    for (key, (n, ones)) in by_cond {
        if n < 2_000 {
            continue;
        }
        let expected = key as f64 / 1e6;
        let observed = ones as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "P(Y=1)={expected} but observed {observed} over {n} rows"
        );
    }
}

/// Prop 3.1 executable: on every dataset's joined table, a sampled
/// foreign feature is empirically redundant given its FK (weakly
/// relevant with {FK} as a Markov blanket).
#[test]
fn foreign_features_are_empirically_redundant() {
    use hamlet::ml::dataset::Dataset;
    use hamlet::ml::redundancy::is_markov_blanket;
    for spec in [DatasetSpec::walmart(), DatasetSpec::lastfm()] {
        let g = spec.generate(0.005, SEED);
        let t = g.star.materialize_all().expect("materializes");
        let data = Dataset::from_table(&t);
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        for at in &spec.tables {
            let fk = data.feature_index(at.fk).expect("fk present");
            let f = data
                .feature_index(at.features[0].name)
                .expect("foreign feature present");
            assert!(
                is_markov_blanket(&data, &rows, f, &[fk], 1e-9),
                "{}: {{{}}} should blanket {}",
                spec.name,
                at.fk,
                at.features[0].name
            );
        }
    }
}

/// Prop 3.3 executable: on every dataset's attribute tables, the FK
/// partition refines the X_R partition (H_XR ⊆ H_FK).
#[test]
fn hypothesis_space_nesting_holds_on_all_attribute_tables() {
    use hamlet::core::hypothesis::check_prop_3_3;
    for spec in DatasetSpec::all() {
        let g = spec.generate(0.01, SEED);
        for at in g.star.attributes() {
            let (refines, _) = check_prop_3_3(&at.table).unwrap();
            assert!(refines, "{} / {}", spec.name, at.table.name());
        }
    }
}
