//! End-to-end pipeline integration tests: generate a normalized dataset,
//! plan, select features, train, and score — across plans and methods.

use hamlet::core::planner::{explicit_plan, plan, PlanKind};
use hamlet::core::rules::TrRule;
use hamlet::datagen::realistic::DatasetSpec;
use hamlet::experiments::{join_opt_plan, prepare_plan, run_method};
use hamlet::fs::Method;
use hamlet::ml::classifier::ErrorMetric;

const SEED: u64 = 4242;

/// JoinOpt's error tracks JoinAll's on every dataset and method — the
/// paper's headline end-to-end claim (Fig 7): "JoinOpt had either
/// identical or almost the same error as JoinAll".
#[test]
fn join_opt_never_blows_up_vs_join_all() {
    // 5% scale: below that, holdout estimates on the smallest dataset
    // (Flights, n_S ~ 1.3k) are too noisy for a meaningful comparison.
    let scale = 0.05;
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, SEED);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        let all = prepare_plan(
            &g.star,
            plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train),
            SEED,
        )
        .expect("synthetic star materializes");
        let opt = prepare_plan(&g.star, join_opt_plan(&g.star, SEED), SEED)
            .expect("synthetic star materializes");
        // Tolerance: the paper's notion of "significant" at full scale is
        // 0.001; at 2% scale the estimates are noisier, so allow a modest
        // band relative to the metric.
        let tol = match all.metric {
            ErrorMetric::ZeroOne => 0.05,
            ErrorMetric::Rmse => 0.12,
        };
        for method in [Method::Forward, Method::FilterMi] {
            let a = run_method(&all, method);
            let o = run_method(&opt, method);
            assert!(
                o.test_error <= a.test_error + tol,
                "{} / {}: JoinOpt {:.4} vs JoinAll {:.4}",
                spec.name,
                method.name(),
                o.test_error,
                a.test_error
            );
        }
    }
}

/// Avoiding Yelp's joins (against the rule's advice) must blow up the
/// error — the planted unsafe case behaves like the paper's Fig 8(A).
#[test]
fn avoiding_unsafe_yelp_joins_blows_up_error() {
    let g = DatasetSpec::yelp().generate(0.02, SEED);
    let join_all =
        prepare_plan(&g.star, explicit_plan(&[0, 1]), SEED).expect("synthetic star materializes");
    let no_joins =
        prepare_plan(&g.star, explicit_plan(&[]), SEED).expect("synthetic star materializes");
    let a = run_method(&join_all, Method::Forward);
    let n = run_method(&no_joins, Method::Forward);
    assert!(
        n.test_error > a.test_error + 0.1,
        "expected a clear blow-up: NoJoins {:.4} vs JoinAll {:.4}",
        n.test_error,
        a.test_error
    );
}

/// Avoiding Walmart's joins (as the rule advises) keeps the error flat.
#[test]
fn avoiding_safe_walmart_joins_keeps_error_flat() {
    let g = DatasetSpec::walmart().generate(0.02, SEED);
    let join_all =
        prepare_plan(&g.star, explicit_plan(&[0, 1]), SEED).expect("synthetic star materializes");
    let no_joins =
        prepare_plan(&g.star, explicit_plan(&[]), SEED).expect("synthetic star materializes");
    let a = run_method(&join_all, Method::Forward);
    let n = run_method(&no_joins, Method::Forward);
    assert!(
        (n.test_error - a.test_error).abs() < 0.05,
        "NoJoins {:.4} vs JoinAll {:.4}",
        n.test_error,
        a.test_error
    );
}

/// JoinOpt shrinks the candidate set whenever it avoids joins, and the
/// runtime accounting (model fits) shrinks accordingly.
#[test]
fn join_opt_reduces_search_work_on_safe_datasets() {
    let g = DatasetSpec::movielens().generate(0.01, SEED);
    let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
    let all = prepare_plan(
        &g.star,
        plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train),
        SEED,
    )
    .expect("synthetic star materializes");
    let opt = prepare_plan(&g.star, join_opt_plan(&g.star, SEED), SEED)
        .expect("synthetic star materializes");
    assert!(opt.data.n_features() < all.data.n_features());
    let a = run_method(&all, Method::Backward);
    let o = run_method(&opt, Method::Backward);
    assert!(
        o.selection.model_fits < a.selection.model_fits,
        "JoinOpt fits {} !< JoinAll fits {}",
        o.selection.model_fits,
        a.selection.model_fits
    );
}

/// The open-domain FK (Expedia's SearchID) is always joined by JoinOpt.
#[test]
fn open_fk_table_is_always_joined() {
    let g = DatasetSpec::expedia().generate(0.01, SEED);
    let jp = join_opt_plan(&g.star, SEED);
    assert!(
        jp.joined.contains(&1),
        "Searches (open FK) must be joined; got {:?}",
        jp.joined
    );
    assert!(
        !jp.joined.contains(&0),
        "Hotels should be avoided; got {:?}",
        jp.joined
    );
}

/// Metrics follow the paper's convention per dataset.
#[test]
fn metric_convention_matches_paper() {
    for spec in DatasetSpec::all() {
        let expected = if spec.n_classes <= 2 {
            ErrorMetric::ZeroOne
        } else {
            ErrorMetric::Rmse
        };
        let g = spec.generate(0.005, SEED);
        let prepared =
            prepare_plan(&g.star, explicit_plan(&[]), SEED).expect("synthetic star materializes");
        assert_eq!(prepared.metric, expected, "{}", spec.name);
    }
}

/// All four methods run on all plans of a 3-table dataset without
/// panicking and produce non-empty, in-range selections.
#[test]
fn all_methods_on_flights_lattice() {
    let g = DatasetSpec::flights().generate(0.01, SEED);
    for joined in [vec![], vec![0], vec![0, 1, 2]] {
        let prepared = prepare_plan(&g.star, explicit_plan(&joined), SEED)
            .expect("synthetic star materializes");
        for method in Method::ALL {
            let r = run_method(&prepared, method);
            assert!(r.test_error.is_finite());
            for &f in &r.selection.features {
                assert!(f < prepared.data.n_features());
            }
        }
    }
}
