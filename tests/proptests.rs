//! Property-based tests (proptest) on the core invariants the paper's
//! machinery depends on.

use proptest::prelude::*;

use hamlet::core::ror::{ror_tr_approximation, tuple_ratio, worst_case_ror};
use hamlet::ml::bias_variance::decompose;
use hamlet::ml::classifier::{Classifier, Model};
use hamlet::ml::dataset::{Dataset, Feature};
use hamlet::ml::info::{entropy, mutual_information};
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::ml::split::HoldoutSplit;
use hamlet::relational::{kfk_join, Domain, EqualWidthBinner, FunctionalDependency, TableBuilder};

/// Strategy: a random KFK instance — an attribute table of `n_r` rows
/// with one foreign feature, plus `n_s` entity rows with FKs and labels.
fn kfk_instance() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>, Vec<u32>)> {
    (2usize..12).prop_flat_map(|n_r| {
        (
            Just(n_r),
            proptest::collection::vec(0..4u32, n_r), // X_R values per RID
            proptest::collection::vec(0..n_r as u32, 10..120), // FK codes
        )
            .prop_flat_map(|(n_r, xr, fks)| {
                let n_s = fks.len();
                (
                    Just(n_r),
                    Just(xr),
                    Just(fks),
                    proptest::collection::vec(0..2u32, n_s), // labels
                )
            })
    })
}

proptest! {
    /// The KFK join preserves the entity row count and creates the FD
    /// FK -> X_R (Prop 3.1's premise), for arbitrary instances.
    #[test]
    fn join_preserves_rows_and_creates_fd((n_r, xr, fks, ys) in kfk_instance()) {
        let rid = Domain::indexed("fk", n_r).shared();
        let r = TableBuilder::new("R")
            .primary_key("rid", rid.clone(), (0..n_r as u32).collect())
            .feature("xr", Domain::indexed("xr", 4).shared(), xr)
            .build().unwrap();
        let n_s = fks.len();
        let s = TableBuilder::new("S")
            .target("y", Domain::boolean("y").shared(), ys)
            .foreign_key("fk", "R", rid, fks)
            .build().unwrap();
        let t = kfk_join(&s, "fk", &r).unwrap();
        prop_assert_eq!(t.n_rows(), n_s);
        let fd = FunctionalDependency::new(&["fk"], &["xr"]);
        prop_assert!(fd.holds_in(&t).unwrap());
    }

    /// Theorem 3.1 on arbitrary instances: I(F;Y) <= I(FK;Y) whenever F
    /// is a function of FK.
    #[test]
    fn mi_data_processing_inequality((n_r, xr, fks, ys) in kfk_instance()) {
        let n_s = fks.len();
        let rows: Vec<usize> = (0..n_s).collect();
        let f_codes: Vec<u32> = fks.iter().map(|&k| xr[k as usize]).collect();
        let i_fk = mutual_information(&fks, n_r, &ys, 2, &rows);
        let i_f = mutual_information(&f_codes, 4, &ys, 2, &rows);
        prop_assert!(i_f <= i_fk + 1e-9, "I(F;Y)={} > I(FK;Y)={}", i_f, i_fk);
    }

    /// Entropy bounds: 0 <= H(X) <= log2(|D_X|).
    #[test]
    fn entropy_bounds(codes in proptest::collection::vec(0..8u32, 1..200)) {
        let rows: Vec<usize> = (0..codes.len()).collect();
        let h = entropy(&codes, 8, &rows);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 3.0 + 1e-9);
    }

    /// The worst-case ROR is nonnegative, monotone in |D_FK|, and below
    /// its TR approximation (which drops a nonnegative term).
    #[test]
    fn ror_properties(n in 200usize..100_000, d1 in 2usize..50, d2 in 50usize..150) {
        prop_assume!(d2 * 2 < n);
        let r1 = worst_case_ror(n, d1, 2, 0.1);
        let r2 = worst_case_ror(n, d2, 2, 0.1);
        prop_assert!(r1 >= -1e-12);
        prop_assert!(r2 >= r1 - 1e-12, "ROR not monotone: {} vs {}", r1, r2);
        let approx = ror_tr_approximation(n, d2, 0.1);
        prop_assert!(approx >= r2 - 1e-9, "approximation {} below ROR {}", approx, r2);
        prop_assert!((tuple_ratio(n, d2) - n as f64 / d2 as f64).abs() < 1e-12);
    }

    /// Domingos identity for binary, noise-free targets:
    /// E[L] = B + (1-2B)V exactly.
    #[test]
    fn bias_variance_identity(
        truths in proptest::collection::vec(0..2u32, 1..30),
        model_bits in proptest::collection::vec(proptest::collection::vec(0..2u32, 1..30), 1..8)
    ) {
        let n = truths.len();
        let cond: Vec<Vec<f64>> = truths.iter().map(|&t| {
            let mut p = vec![0.0, 0.0];
            p[t as usize] = 1.0;
            p
        }).collect();
        let preds: Vec<Vec<u32>> = model_bits.iter()
            .map(|bits| (0..n).map(|i| bits[i % bits.len()]).collect())
            .collect();
        let r = decompose(&cond, &preds);
        let reconstructed = r.avg_bias + r.avg_net_variance;
        prop_assert!((r.avg_test_error - reconstructed).abs() < 1e-9,
            "E[L]={} vs B+(1-2B)V={}", r.avg_test_error, reconstructed);
    }

    /// Naive Bayes predictions are invariant to the order in which the
    /// feature subset is listed.
    #[test]
    fn nb_invariant_to_feature_order(
        x0 in proptest::collection::vec(0..3u32, 20..60),
        seed in 0u64..1000
    ) {
        let n = x0.len();
        let x1: Vec<u32> = (0..n as u32).map(|i| (i.wrapping_mul(7).wrapping_add(seed as u32)) % 4).collect();
        let y: Vec<u32> = (0..n).map(|i| x0[i] % 2).collect();
        let data = Dataset::new(vec![
            Feature { name: "a".into(), domain_size: 3, codes: x0 },
            Feature { name: "b".into(), domain_size: 4, codes: x1 },
        ], y, 2);
        let rows: Vec<usize> = (0..n).collect();
        let nb = NaiveBayes::default();
        let m1 = nb.fit(&data, &rows, &[0, 1]);
        let m2 = nb.fit(&data, &rows, &[1, 0]);
        for r in 0..n {
            prop_assert_eq!(m1.predict_row(&data, r), m2.predict_row(&data, r));
        }
    }

    /// Holdout splits partition the rows for any n and seed.
    #[test]
    fn holdout_partitions(n in 0usize..500, seed in 0u64..100) {
        let s = HoldoutSplit::paper_protocol(n, seed);
        let mut all: Vec<usize> = s.train.iter().chain(&s.validation).chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Binning always yields codes inside the domain, for any finite data.
    #[test]
    fn binning_stays_in_domain(
        values in proptest::collection::vec(-1e6f64..1e6, 1..100),
        n_bins in 1usize..32
    ) {
        let binner = EqualWidthBinner::fit("x", &values, n_bins).unwrap();
        for &v in &values {
            prop_assert!((binner.bin(v) as usize) < n_bins);
        }
        // Out-of-range values clamp rather than escape the domain.
        prop_assert!((binner.bin(1e9) as usize) < n_bins);
        prop_assert!((binner.bin(-1e9) as usize) < n_bins);
    }
}
