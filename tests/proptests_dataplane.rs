//! Property-based tests for the out-of-core data plane: the chunked
//! columnar path (scans, joins, count kernels, streaming ingest) must
//! be **bit-for-bit** the dense path at any chunk size, any memory
//! budget, and any `HAMLET_THREADS` — and chaos-corrupted streams must
//! account for every row without ever panicking.

use std::collections::BTreeMap;
use std::io::Cursor;

use proptest::prelude::any_bool;
use proptest::prelude::*;

use hamlet::chaos::{corrupt_corpus, ChaosPlan, FileProfile};
use hamlet::ml::{class_count_table, class_count_table_gather};
use hamlet::relational::{
    read_csv_chunked, read_csv_lenient, ChunkedColumn, Column, ColumnSpec, DirtyPolicy, Domain,
    IngestOptions,
};

/// A throwaway spill parent under the OS temp dir, unique per test
/// case; RAII in the library removes the per-ingest subdirectories, the
/// test removes the parent.
fn spill_parent(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hamlet-proptest-dataplane-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Renders a small CSV with one nominal and one numeric column from
/// proptest-drawn rows.
fn csv_of(rows: &[(u8, i16)]) -> String {
    let mut text = String::from("Dept,Price\n");
    for &(d, p) in rows {
        text.push_str(&format!("d{},{}.5\n", d % 23, p));
    }
    text
}

fn specs() -> Vec<(&'static str, ColumnSpec)> {
    vec![
        ("Dept", ColumnSpec::feature("Dept")),
        ("Price", ColumnSpec::numeric_feature("Price", 8)),
    ]
}

proptest! {
    /// Chunked column round-trip, scans, and joins at arbitrary chunk
    /// sizes equal the dense forms bit-for-bit, at 1 and 8 threads.
    #[test]
    fn chunked_scans_and_joins_match_dense(
        codes in proptest::collection::vec(0..7u32, 1..300),
        fks in proptest::collection::vec(0..40u32, 0..200),
        chunk_rows in 1..64usize,
    ) {
        let attr = Column::new(Domain::indexed("attr", 7).shared(), codes.clone()).unwrap();
        let chunked = ChunkedColumn::from_column(attr.clone(), chunk_rows);
        let round = chunked.to_column().unwrap();
        prop_assert_eq!(round.codes(), attr.codes());

        // Scan: per-code histogram, thread-invariant.
        let mut dense_hist = vec![0u64; 7];
        for &c in attr.codes() {
            dense_hist[c as usize] += 1;
        }
        prop_assert_eq!(chunked.histogram(1).unwrap(), dense_hist.clone());
        prop_assert_eq!(chunked.histogram(8).unwrap(), dense_hist);

        // Join: gathering attribute codes through a *chunked* FK column
        // equals the dense gather.
        let fks: Vec<u32> = fks.into_iter().map(|f| f % codes.len() as u32).collect();
        let fk_col = Column::new(
            Domain::indexed("fk", codes.len()).shared(),
            fks.clone(),
        ).unwrap();
        let fk_chunked = ChunkedColumn::from_column(fk_col, chunk_rows);
        let dense_gather = attr.gather(&fks);
        let chunked_gather =
            hamlet::relational::gather_chunks(&fk_chunked, &attr).unwrap();
        prop_assert_eq!(chunked_gather.codes(), dense_gather.codes());
    }

    /// The count kernels (contiguous and gathered, the SuffStats
    /// building blocks) equal the naive per-row scan at any thread
    /// count, over arbitrary label/code vectors.
    #[test]
    fn count_kernels_match_naive_scan(
        pairs in proptest::collection::vec((0..4u32, 0..9u32), 0..500),
        keep in proptest::collection::vec(any_bool(), 0..500),
    ) {
        let labels: Vec<u32> = pairs.iter().map(|&(y, _)| y).collect();
        let codes: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        let mut want = vec![0u64; 4 * 9];
        for (&y, &v) in labels.iter().zip(&codes) {
            want[y as usize * 9 + v as usize] += 1;
        }
        for threads in [1, 8] {
            prop_assert_eq!(
                class_count_table(4, 9, &labels, &codes, threads),
                want.clone()
            );
        }
        let rows: Vec<usize> = (0..pairs.len())
            .filter(|&i| *keep.get(i).unwrap_or(&false))
            .collect();
        let mut want_sub = vec![0u64; 4 * 9];
        for &r in &rows {
            want_sub[labels[r] as usize * 9 + codes[r] as usize] += 1;
        }
        for threads in [1, 8] {
            prop_assert_eq!(
                class_count_table_gather(4, 9, &labels, &codes, &rows, threads),
                want_sub.clone()
            );
        }
    }

    /// Streaming ingest at any morsel size — with or without a
    /// spill-forcing budget — produces the same table, quarantine, and
    /// row accounting as the dense reader, and cleans up its spill
    /// files on drop.
    #[test]
    fn budgeted_streams_match_dense_reader(
        rows in proptest::collection::vec((0..30u8, -99..99i16), 1..120),
        morsel_rows in 1..40usize,
        budget_raw in 0..4096usize,
    ) {
        // Below 64 stands in for "no budget" (the dense path); above it
        // the tiny budget forces morsel shrink and spill.
        let budget = if budget_raw < 64 { None } else { Some(budget_raw) };
        let text = csv_of(&rows);
        let specs = specs();
        let policy = DirtyPolicy::Quarantine { max_bad_rows: usize::MAX };
        let dense = read_csv_lenient("t", &text, &specs, ',', policy).unwrap();

        let parent = spill_parent("stream");
        let opts = IngestOptions {
            morsel_rows: Some(morsel_rows),
            mem_budget: budget,
            spill_dir: Some(parent.clone()),
        };
        let chunked = read_csv_chunked(
            "t", Cursor::new(text.as_bytes()), &specs, ',', policy, &opts,
        ).unwrap();
        prop_assert_eq!(chunked.total_rows, dense.total_rows);
        prop_assert_eq!(&chunked.quarantined, &dense.quarantined);
        let densified = chunked.table.to_table().unwrap();
        prop_assert_eq!(densified.n_rows(), dense.table.n_rows());
        for c in 0..densified.schema().len() {
            prop_assert_eq!(
                densified.column(c).codes(),
                dense.table.column(c).codes(),
                "column {} diverged at morsel {} budget {:?}",
                c, morsel_rows, budget
            );
        }
        drop(chunked);
        // RAII: every per-ingest spill directory is gone once the
        // chunked load drops.
        let leftovers = std::fs::read_dir(&parent)
            .map(|d| d.count())
            .unwrap_or(0);
        prop_assert_eq!(leftovers, 0, "spill files leaked");
        let _ = std::fs::remove_dir_all(&parent);
    }

    /// Chaos: corrupted CSVs streamed under tight budgets either load
    /// with exact row accounting (every input data row is either a
    /// table row or a quarantined row) or fail with a typed error —
    /// never a panic — and always agree with the dense reader.
    #[test]
    fn corrupted_streams_account_rows_and_never_panic(
        rows in proptest::collection::vec((0..30u8, -99..99i16), 2..60),
        seed in 0..u64::MAX,
        faults_per_file in 1..5usize,
        morsel_rows in 1..32usize,
        max_bad in 0..50usize,
    ) {
        let mut corpus = BTreeMap::new();
        corpus.insert("wide.csv".to_string(), csv_of(&rows));
        let plan = ChaosPlan::all_kinds(seed, faults_per_file)
            .with_profile("wide.csv", FileProfile {
                numeric_cols: vec![1],
                pk_col: None,
                fk_cols: vec![],
            });
        let (corrupted, _faults) = corrupt_corpus(&corpus, &plan);
        let text = &corrupted["wide.csv"];
        let specs = specs();
        let policy = DirtyPolicy::Quarantine { max_bad_rows: max_bad };

        let dense = read_csv_lenient("t", text, &specs, ',', policy);
        let parent = spill_parent("chaos");
        let opts = IngestOptions {
            morsel_rows: Some(morsel_rows),
            mem_budget: Some(256),
            spill_dir: Some(parent.clone()),
        };
        let chunked = read_csv_chunked(
            "t", Cursor::new(text.as_bytes()), &specs, ',', policy, &opts,
        );
        match (dense, chunked) {
            (Ok(d), Ok(c)) => {
                // Exact row accounting, identical to the dense reader.
                prop_assert_eq!(c.total_rows, d.total_rows);
                prop_assert_eq!(c.quarantined.len(), d.quarantined.len());
                let t = c.table.to_table().unwrap();
                prop_assert_eq!(t.n_rows() + c.quarantined.len(), c.total_rows);
                prop_assert_eq!(t.n_rows(), d.table.n_rows());
                for col in 0..t.schema().len() {
                    prop_assert_eq!(
                        t.column(col).codes(),
                        d.table.column(col).codes()
                    );
                }
            }
            (Err(de), Err(ce)) => {
                // Same typed failure either way, renderable.
                prop_assert_eq!(de.to_string(), ce.to_string());
            }
            (d, c) => {
                return Err(TestCaseError::fail(format!(
                    "paths disagree: dense {:?} vs chunked {:?}",
                    d.map(|l| l.table.n_rows()),
                    c.map(|l| l.table.n_rows()),
                )));
            }
        }
        let _ = std::fs::remove_dir_all(&parent);
    }
}
