//! Determinism golden tests: every generator and every experiment
//! estimate is a pure function of its seed. These lock the exact
//! behaviour so refactors that accidentally perturb sampling order are
//! caught immediately. (If you *intend* to change a generator, update
//! the digests here and note it in EXPERIMENTS.md — every published
//! number depends on them.)

use hamlet::datagen::realistic::DatasetSpec;
use hamlet::datagen::sim::{Scenario, SimulationConfig};
use hamlet::datagen::skew::FkSkew;

/// FNV-1a over a code sequence: a stable, dependency-free digest.
fn digest(codes: &[u32]) -> u64 {
    codes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &c| {
        (h ^ c as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

#[test]
fn realistic_generation_digests_are_stable() {
    // Digest of each dataset's label vector at (scale 0.01, seed 1).
    for (name, expected) in [
        ("Walmart", None::<u64>),
        ("Yelp", None),
        ("MovieLens1M", None),
    ] {
        let spec = DatasetSpec::by_name(name).expect("known dataset");
        let a = digest(
            spec.generate(0.01, 1)
                .star
                .entity()
                .target_column()
                .unwrap()
                .codes(),
        );
        let b = digest(
            spec.generate(0.01, 1)
                .star
                .entity()
                .target_column()
                .unwrap()
                .codes(),
        );
        assert_eq!(a, b, "{name}: generation not reproducible");
        if let Some(e) = expected {
            assert_eq!(a, e, "{name}: digest changed");
        }
        // Different seed must change the data.
        let c = digest(
            spec.generate(0.01, 2)
                .star
                .entity()
                .target_column()
                .unwrap()
                .codes(),
        );
        assert_ne!(a, c, "{name}: seed has no effect");
    }
}

#[test]
fn simulation_sampling_is_reproducible_end_to_end() {
    let cfg = SimulationConfig {
        scenario: Scenario::LoneForeignFeature,
        d_s: 2,
        d_r: 3,
        n_r: 20,
        p: 0.1,
        skew: FkSkew::Zipf { exponent: 1.0 },
    };
    let one = || {
        let world = cfg.build_world(9);
        let s = world.sample(500, 10);
        (
            digest(s.star.entity().target_column().unwrap().codes()),
            digest(s.star.entity().column_by_name("FK").unwrap().codes()),
        )
    };
    assert_eq!(one(), one());
}

#[test]
fn experiment_estimates_are_reproducible() {
    use hamlet::experiments::{simulate, MonteCarloOpts};
    let cfg = SimulationConfig {
        scenario: Scenario::LoneForeignFeature,
        d_s: 2,
        d_r: 2,
        n_r: 10,
        p: 0.1,
        skew: FkSkew::Uniform,
    };
    let opts = MonteCarloOpts {
        train_sets: 5,
        repeats: 2,
        base_seed: 42,
    };
    let a = simulate(&cfg, 300, &opts);
    let b = simulate(&cfg, 300, &opts);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.test_error, y.test_error);
        assert_eq!(x.net_variance, y.net_variance);
    }
}

/// The engine-backed selection paths must equal the seed serial
/// implementations whatever `HAMLET_THREADS` resolves to for this
/// process — CI runs this test once with `HAMLET_THREADS=1` and once
/// with `HAMLET_THREADS=8` to pin the bit-for-bit determinism contract
/// at the process level (the in-process sweep over worker counts lives
/// in `proptests_selection.rs`).
#[test]
fn selection_at_resolved_threads_matches_reference() {
    use hamlet::fs::{reference, Method, SelectionContext};
    use hamlet::ml::classifier::ErrorMetric;
    use hamlet::ml::dataset::Dataset;
    use hamlet::ml::naive_bayes::NaiveBayes;
    use hamlet::ml::split::HoldoutSplit;

    let g = DatasetSpec::walmart().generate(0.004, 11);
    let table = g
        .star
        .materialize_all()
        .expect("synthetic star materializes");
    let data = Dataset::from_table(&table);
    let split = HoldoutSplit::paper_protocol(data.n_examples(), 11);
    let nb = NaiveBayes::default();
    let ctx = SelectionContext {
        data: &data,
        train: &split.train,
        validation: &split.validation,
        classifier: &nb,
        metric: ErrorMetric::for_classes(data.n_classes()),
    };
    let candidates: Vec<usize> = (0..data.n_features()).collect();
    for method in Method::ALL {
        let engine_result = method.run(&ctx, &candidates);
        let serial = reference::run_method(method, &ctx, &candidates);
        assert_eq!(
            engine_result,
            serial,
            "{} diverged from the serial reference at HAMLET_THREADS={:?}",
            method.name(),
            std::env::var("HAMLET_THREADS").ok()
        );
    }
}

/// Tree-based selection under the same contract: CART sweeps through
/// the engine must equal the serial reference whatever `HAMLET_THREADS`
/// resolves to — CI's `trees-smoke` job runs this once at
/// `HAMLET_THREADS=1` and once at `HAMLET_THREADS=8`, so equality with
/// the (thread-free) reference at both pins the sweep bit-for-bit.
#[test]
fn tree_selection_at_resolved_threads_matches_reference() {
    use hamlet::fs::{reference, Method, SelectionContext};
    use hamlet::ml::classifier::ErrorMetric;
    use hamlet::ml::dataset::Dataset;
    use hamlet::ml::split::HoldoutSplit;
    use hamlet::trees::CartTree;

    let g = DatasetSpec::walmart().generate(0.004, 11);
    let table = g
        .star
        .materialize_all()
        .expect("synthetic star materializes");
    let data = Dataset::from_table(&table);
    let split = HoldoutSplit::paper_protocol(data.n_examples(), 11);
    let cart = CartTree::default();
    let ctx = SelectionContext {
        data: &data,
        train: &split.train,
        validation: &split.validation,
        classifier: &cart,
        metric: ErrorMetric::for_classes(data.n_classes()),
    };
    let candidates: Vec<usize> = (0..data.n_features()).collect();
    for method in [Method::Forward, Method::Backward] {
        let engine_result = method.run(&ctx, &candidates);
        let serial = reference::run_method(method, &ctx, &candidates);
        assert_eq!(
            engine_result,
            serial,
            "tree {} diverged from the serial reference at HAMLET_THREADS={:?}",
            method.name(),
            std::env::var("HAMLET_THREADS").ok()
        );
    }
}

#[test]
fn splits_and_selection_are_reproducible() {
    use hamlet::experiments::{join_opt_plan, prepare_plan, run_method};
    use hamlet::fs::Method;
    let g = DatasetSpec::walmart().generate(0.005, 4);
    let one = || {
        let prepared = prepare_plan(&g.star, join_opt_plan(&g.star, 4), 4)
            .expect("synthetic star materializes");
        let r = run_method(&prepared, Method::Forward);
        (r.selection.features.clone(), r.test_error.to_bits())
    };
    assert_eq!(one(), one());
}
