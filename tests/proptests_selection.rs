//! Property-based tests for the sufficient-statistics engine: the cached
//! parallel selection paths must be indistinguishable from the seed
//! serial implementations — bit-for-bit for Naive Bayes, within the
//! coefficient-drop tolerance for logistic regression warm starts.

use proptest::prelude::*;

use hamlet::fs::{reference, FilterScore, Method, SelectionContext, SweepEngine};
use hamlet::ml::classifier::{Classifier, ErrorMetric, Model};
use hamlet::ml::dataset::{Dataset, Feature};
use hamlet::ml::logreg::LogisticRegression;
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::ml::suffstats::{SuffStats, SweepFit};

/// Strategy: a random 3-feature nominal dataset with a train/validation
/// split over its rows.
fn labeled_data() -> impl Strategy<Value = (Dataset, Vec<usize>, Vec<usize>)> {
    (40usize..120).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..3u32, n),
            proptest::collection::vec(0..4u32, n),
            proptest::collection::vec(0..2u32, n),
            proptest::collection::vec(0..2u32, n),
        )
            .prop_map(|(a, b, c, y)| {
                let n = y.len();
                let data = Dataset::new(
                    vec![
                        Feature {
                            name: "a".into(),
                            domain_size: 3,
                            codes: a,
                        },
                        Feature {
                            name: "b".into(),
                            domain_size: 4,
                            codes: b,
                        },
                        Feature {
                            name: "c".into(),
                            domain_size: 2,
                            codes: c,
                        },
                    ],
                    y,
                    2,
                );
                let split = n / 2;
                let train: Vec<usize> = (0..split).collect();
                let validation: Vec<usize> = (split..n).collect();
                (data, train, validation)
            })
    })
}

proptest! {
    /// (a) A Naive Bayes model assembled from cached count tables is
    /// bit-for-bit the model `fit` trains by scanning rows, for
    /// arbitrary data, training folds, feature subsets, and smoothing.
    #[test]
    fn suffstats_nb_assembly_matches_direct_fit(
        (data, train, _val) in labeled_data(),
        mask in 0u32..8,
        fold in 0usize..3,
        alpha_step in 1u32..5,
    ) {
        let feats: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();
        // An arbitrary "fold": every third row, offset by `fold`.
        let fold_rows: Vec<usize> = train.iter().copied().filter(|r| r % 3 != fold).collect();
        prop_assume!(!fold_rows.is_empty());
        let nb = NaiveBayes::new(alpha_step as f64 * 0.5);
        let direct = nb.fit(&data, &fold_rows, &feats);
        let stats = SuffStats::new(&data, &fold_rows);
        let assembled = nb.fit_swept(&stats, &feats, None);
        prop_assert_eq!(direct, assembled);
    }

    /// (a, filters) Cached filter scores equal the row-scanning ones
    /// exactly for every feature.
    #[test]
    fn suffstats_filter_scores_match_direct_scores(
        (data, train, _val) in labeled_data(),
    ) {
        let stats = SuffStats::new(&data, &train);
        for score in [FilterScore::MutualInformation, FilterScore::InformationGainRatio] {
            for f in 0..data.n_features() {
                let direct = score.score(&data, &train, f);
                let cached = score.score_cached(&stats, f);
                prop_assert_eq!(
                    direct.to_bits(),
                    cached.to_bits(),
                    "{:?} on feature {}: {} vs {}", score, f, direct, cached
                );
            }
        }
    }

    /// (b) Every selection method returns the identical result — features,
    /// errors, trace, and `model_fits` — at 1, 2, and 8 workers, and all
    /// of them equal the seed serial implementation.
    #[test]
    fn selection_is_thread_count_invariant_and_matches_reference(
        (data, train, validation) in labeled_data(),
    ) {
        let nb = NaiveBayes::default();
        let ctx = SelectionContext {
            data: &data,
            train: &train,
            validation: &validation,
            classifier: &nb,
            metric: ErrorMetric::ZeroOne,
        };
        let candidates = [0usize, 1, 2];
        for method in Method::ALL {
            let serial = reference::run_method(method, &ctx, &candidates);
            for threads in [1usize, 2, 8] {
                let engine = SweepEngine::new(&ctx).with_threads(threads);
                let got = method.run_with(&engine, &candidates);
                prop_assert_eq!(
                    &got, &serial,
                    "{} diverged at {} threads", method.name(), threads
                );
            }
        }
        // Exhaustive search too (not part of `Method::ALL`).
        let serial = reference::exhaustive_selection(&ctx, &candidates);
        for threads in [1usize, 2, 8] {
            let engine = SweepEngine::new(&ctx).with_threads(threads);
            let got = engine.exhaustive(&candidates);
            prop_assert_eq!(&got, &serial, "exhaustive diverged at {} threads", threads);
        }
    }

    /// (c) A logistic-regression fit warm-started from the parent
    /// subset's weights converges to the cold-start fit: identical
    /// predictions on a learnable concept, and weights within the
    /// coefficient-drop tolerance the embedded methods already use.
    #[test]
    fn logreg_warm_start_converges_to_cold_start(
        n in 100usize..240,
        seed in 0u64..500,
        lambda_step in 1u32..4,
    ) {
        let x0: Vec<u32> = (0..n as u32)
            .map(|i| (i.wrapping_mul(2654435761).wrapping_add(seed as u32) >> 7) % 3)
            .collect();
        let x1: Vec<u32> = (0..n as u32)
            .map(|i| (i.wrapping_mul(40503).wrapping_add(seed as u32 ^ 0xABCD) >> 3) % 4)
            .collect();
        let y: Vec<u32> = x0.iter().map(|&v| v % 2).collect();
        let data = Dataset::new(
            vec![
                Feature { name: "x0".into(), domain_size: 3, codes: x0 },
                Feature { name: "x1".into(), domain_size: 4, codes: x1 },
            ],
            y,
            2,
        );
        let rows: Vec<usize> = (0..n).collect();
        let lr = LogisticRegression::l2(lambda_step as f64 * 0.02).with_seed(seed);

        let parent = lr.fit(&data, &rows, &[0]);
        let cold = lr.fit(&data, &rows, &[0, 1]);
        let warm = lr.fit_source_warm(&data, &rows, &[0, 1], Some(&parent));

        // Same predictions everywhere on the learnable concept...
        for r in 0..n {
            prop_assert_eq!(cold.predict_row(&data, r), warm.predict_row(&data, r));
        }
        // ...and both fits agree on which coefficient blocks survive at
        // the tolerance the embedded methods already use.
        let tol = hamlet::ml::logreg::LogisticRegressionModel::DROP_TOLERANCE;
        prop_assert_eq!(
            cold.surviving_features(&data, tol),
            warm.surviving_features(&data, tol)
        );
    }
}
