//! Source-scan guard for the bugfix sweep: the library paths that used
//! to abort the process (`panic!`, `.expect`, `.unwrap`) now return
//! typed errors, and this test keeps them that way. It scans non-test
//! source text, so a reintroduced panic fails CI even if no runtime
//! test happens to hit it.

use std::fs;
use std::path::Path;

/// Source up to the `#[cfg(test)]` module.
fn non_test(src: &str) -> &str {
    src.split("#[cfg(test)]").next().unwrap_or(src)
}

/// The body of `fn name` (brace-balanced), panicking if absent so a
/// rename breaks this guard loudly rather than silently scanning
/// nothing.
fn function_body<'a>(src: &'a str, name: &str) -> &'a str {
    let needle = format!("fn {name}");
    let at = src
        .find(&needle)
        .unwrap_or_else(|| panic!("function `{name}` not found — update tests/no_panic_paths.rs"));
    let open = at + src[at..].find('{').expect("function has a body");
    let mut depth = 0usize;
    for (i, c) in src[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return &src[open..open + i + 1];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced braces after `{name}`");
}

fn assert_no_aborts(what: &str, src: &str) {
    // `.unwrap_or`/`.unwrap_or_else` are fine (they don't abort);
    // `.unwrap()`, `.unwrap_err()`, `.expect(`, `panic!(` are not.
    for pat in [".unwrap()", ".unwrap_err()", ".expect(", "panic!("] {
        assert!(
            !src.contains(pat),
            "{what} contains `{pat}` — these paths must return typed errors, not abort \
             (see the observability/bugfix sweep)"
        );
    }
}

fn read(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("cannot read {rel}: {e}"))
}

#[test]
fn hypothesis_module_has_no_aborting_calls() {
    let src = read("crates/core/src/hypothesis.rs");
    assert_no_aborts("crates/core/src/hypothesis.rs", non_test(&src));
}

#[test]
fn tuning_module_has_no_aborting_calls() {
    let src = read("crates/core/src/tuning.rs");
    assert_no_aborts("crates/core/src/tuning.rs", non_test(&src));
}

#[test]
fn runner_named_paths_have_no_aborting_calls() {
    let src = read("crates/experiments/src/runner.rs");
    let src = non_test(&src);
    for f in [
        "try_dataset_scale",
        "try_monte_carlo_opts",
        "prepare_plan",
        "run_method",
        "join_opt_plan",
    ] {
        assert_no_aborts(
            &format!("crates/experiments/src/runner.rs::{f}"),
            function_body(src, f),
        );
    }
}

#[test]
fn cli_arg_parsing_has_no_aborting_calls() {
    let src = read("src/cli.rs");
    let src = non_test(&src);
    for f in [
        "parse_flag",
        "parse_multi",
        "dataset_arg",
        "strategy_arg",
        "family_arg",
        "load_policy_args",
        "num_flag",
        "simulate_cmd",
        "retune_cmd",
        "discovery_args",
        "discover_star",
        "render_discovery",
        "discover_cmd",
    ] {
        assert_no_aborts(&format!("src/cli.rs::{f}"), function_body(src, f));
    }
}

#[test]
fn lenient_csv_reader_has_no_aborting_calls() {
    // The whole ingest module: dirty data must surface as quarantine
    // entries or typed errors, never as a panic.
    let src = read("crates/relational/src/csv.rs");
    assert_no_aborts("crates/relational/src/csv.rs", non_test(&src));
}

#[test]
fn dataplane_modules_have_no_aborting_calls() {
    // The out-of-core data plane: chunk storage/spill, the streaming
    // ingester, and the count kernels. Truncated spill files, exhausted
    // budgets, and corrupt streams surface as typed errors (or
    // quarantine entries) — never a panic — and spill files go through
    // `atomic_write` with RAII cleanup.
    for rel in [
        "crates/relational/src/chunk.rs",
        "crates/relational/src/ingest.rs",
        "crates/ml/src/kernels.rs",
    ] {
        let src = read(rel);
        assert_no_aborts(rel, non_test(&src));
    }
}

#[test]
fn manifest_policy_load_has_no_aborting_calls() {
    let src = read("crates/relational/src/manifest.rs");
    let src = non_test(&src);
    for f in ["load_with_policy", "load_policy", "file_stem"] {
        assert_no_aborts(
            &format!("crates/relational/src/manifest.rs::{f}"),
            function_body(src, f),
        );
    }
}

#[test]
fn atomic_write_helper_has_no_aborting_calls() {
    let src = read("crates/obs/src/fsio.rs");
    assert_no_aborts("crates/obs/src/fsio.rs", non_test(&src));
}

#[test]
fn checkpoint_store_has_no_aborting_calls() {
    // A corrupt or unwritable checkpoint degrades (recompute / warn),
    // it never aborts an experiment.
    let src = read("crates/experiments/src/checkpoint.rs");
    assert_no_aborts("crates/experiments/src/checkpoint.rs", non_test(&src));
}

#[test]
fn serve_crate_has_no_aborting_calls() {
    // The entire serving subsystem: corrupt artifacts, hostile requests,
    // severed sockets, and poisoned locks all degrade with typed errors
    // or logged warnings — a scoring server must never abort.
    for rel in [
        "crates/serve/src/lib.rs",
        "crates/serve/src/artifact.rs",
        "crates/serve/src/score.rs",
        "crates/serve/src/export.rs",
        "crates/serve/src/http.rs",
        "crates/serve/src/conn.rs",
        "crates/serve/src/batch.rs",
        "crates/serve/src/degrade.rs",
        "crates/serve/src/registry.rs",
        "crates/serve/src/server.rs",
    ] {
        let src = read(rel);
        assert_no_aborts(rel, non_test(&src));
    }
}

#[test]
fn trees_crate_has_no_aborting_calls() {
    // The entire tree-learning subsystem: corrupt arenas, non-finite
    // leaf values, and out-of-domain codes all degrade with typed
    // errors or clamped walks — training and prediction never abort.
    for rel in [
        "crates/trees/src/lib.rs",
        "crates/trees/src/cart.rs",
        "crates/trees/src/gbt.rs",
        "crates/trees/src/factorized.rs",
        "crates/trees/src/sweep.rs",
    ] {
        let src = read(rel);
        assert_no_aborts(rel, non_test(&src));
    }
}

#[test]
fn discovery_crate_has_no_aborting_calls() {
    // The entire schema-discovery subsystem: chaos-corrupted corpora
    // (dangling FKs, duplicate keys, ragged rows) must surface as typed
    // errors or tolerance-journaled evidence, never as a panic.
    for rel in [
        "crates/discovery/src/lib.rs",
        "crates/discovery/src/error.rs",
        "crates/discovery/src/miner.rs",
        "crates/discovery/src/report.rs",
        "crates/discovery/src/sketch.rs",
        "crates/discovery/src/verify.rs",
    ] {
        let src = read(rel);
        assert_no_aborts(rel, non_test(&src));
    }
}

#[test]
fn availability_layer_has_no_aborting_calls() {
    // An absent or unreadable attribute table must degrade into an
    // FK-only surrogate (or a typed error under the strict policy),
    // never a panic — the whole point of degraded-mode analytics.
    let src = read("crates/relational/src/availability.rs");
    assert_no_aborts("crates/relational/src/availability.rs", non_test(&src));
}

#[test]
fn retry_policy_has_no_aborting_calls() {
    // Exhausted retries surface the last typed error; the backoff loop
    // itself must never abort.
    let src = read("crates/obs/src/retry.rs");
    assert_no_aborts("crates/obs/src/retry.rs", non_test(&src));
}

#[test]
fn advisor_has_no_aborting_calls() {
    // Regression: `advise` used to `.expect("validated at construction")`
    // on the FK column lookup; it now returns AdvisorError.
    let src = read("crates/core/src/advisor.rs");
    assert_no_aborts("crates/core/src/advisor.rs", non_test(&src));
}

#[test]
fn failpoint_spec_parsing_has_no_aborting_calls() {
    // `hit()` panics BY DESIGN when a panic-mode failpoint fires, so
    // only the spec parser is held to the no-abort rule: a bad spec
    // must produce a typed FailpointError.
    let src = read("crates/chaos/src/failpoint.rs");
    let src = non_test(&src);
    assert_no_aborts(
        "crates/chaos/src/failpoint.rs::parse_spec",
        function_body(src, "parse_spec"),
    );
}
