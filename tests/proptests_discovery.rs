//! Property-based tests for the schema-discovery subsystem:
//!
//! 1. **Recovery** — decompose-then-discover: exporting any datagen star
//!    as raw CSVs and mining it back recovers exactly the planted FK
//!    edges and FDs, at any seed (zero false negatives, no phantoms).
//! 2. **Chaos** — corpora corrupted with every fault kind (dangling
//!    FKs, duplicate PKs, bad numerics, ragged rows, truncation) yield
//!    `Ok` with tolerance-journaled evidence or a typed
//!    [`DiscoveryError`] — never a panic.
//! 3. **Thread invariance** — the discovery report and manifest are
//!    bit-identical at any worker count (`HAMLET_THREADS` resolves to
//!    `DiscoveryConfig::threads`; the properties pin the field directly
//!    so they can compare 1 vs 8 in-process).

use std::collections::BTreeMap;

use proptest::prelude::*;

use hamlet::chaos::{corrupt_corpus, ChaosPlan, FileProfile};
use hamlet::datagen::realistic::DatasetSpec;
use hamlet::discovery::{discover_corpus, DiscoveryConfig, DiscoveryError, FdScope};
use hamlet::experiments::discovery::corpus_of;

/// Keep the datagen corpora small: recovery is containment-exact at any
/// scale (FK codes are drawn from the key set), so a cheap corpus
/// exercises the same invariants as the CI-scale scenario.
const SCALE: f64 = 0.01;

/// A small synthetic star corpus driven entirely by the proptest input:
/// `rows` are (churn, employer, plan) draws; every key table lists its
/// full key domain so edge containment is exact by construction.
fn clean_corpus(rows: &[(u8, u8, u8)], n_emp: usize, n_plan: usize) -> BTreeMap<String, String> {
    let mut customers = String::from("Churn,Gender,Spend,EmployerID,PlanID\n");
    for (i, &(c, e, p)) in rows.iter().enumerate() {
        customers.push_str(&format!(
            "{},{},{},e{},p{}\n",
            if (c as usize + i).is_multiple_of(2) {
                "yes"
            } else {
                "no"
            },
            if i % 3 == 0 { "F" } else { "M" },
            (i * 7 + c as usize) % 13,
            e as usize % n_emp,
            p as usize % n_plan,
        ));
    }
    let mut employers = String::from("EmployerID,Country,Size\n");
    for i in 0..n_emp {
        employers.push_str(&format!("e{i},c{},s{}\n", i % 3, i % 2));
    }
    let mut plans = String::from("PlanID,Tier\n");
    for i in 0..n_plan {
        plans.push_str(&format!("p{i},t{}\n", i % 2));
    }
    let mut corpus = BTreeMap::new();
    corpus.insert("customers.csv".to_string(), customers);
    corpus.insert("employers.csv".to_string(), employers);
    corpus.insert("plans.csv".to_string(), plans);
    corpus
}

/// Collapses a discovery run to a comparable fingerprint: the manifest
/// text and full report JSON on success, the rendered error otherwise.
fn fingerprint(
    corpus: &BTreeMap<String, String>,
    cfg: &DiscoveryConfig,
) -> Result<(String, String), String> {
    match discover_corpus(corpus, cfg) {
        Ok(d) => Ok((d.manifest_text, d.report.to_json().to_string())),
        Err(e) => Err(e.to_string()),
    }
}

proptest! {
    /// Decompose-then-discover: for every built-in dataset spec and any
    /// seed, mining the exported CSVs recovers exactly the planted FK
    /// edges and verifies every planted FD `key -> X_R` clean — and the
    /// run is bit-identical at 1 and 8 worker threads.
    #[test]
    fn datagen_corpora_round_trip(spec_ix in 0..7usize, seed in 0..100_000u64) {
        let specs = DatasetSpec::all();
        let spec = &specs[spec_ix % specs.len()];
        let g = spec.generate(SCALE, seed);
        let corpus = corpus_of(&g.star);
        let cfg = DiscoveryConfig {
            target: Some(spec.target.to_string()),
            ..DiscoveryConfig::default()
        };
        let d = discover_corpus(&corpus, &cfg)
            .map_err(|e| TestCaseError::fail(format!("{}/{seed}: {e}", spec.name)))?;

        // Exactly the planted edges, FK-name keyed (table names lowercase
        // through the CSV round-trip; FK column names do not change).
        let accepted: Vec<_> = d.report.accepted_fks().collect();
        prop_assert_eq!(accepted.len(), g.star.k(), "{}/{}: phantom or missing edge", spec.name, seed);
        for at in g.star.attributes() {
            let table = at.table.name().to_lowercase();
            prop_assert!(
                accepted.iter().any(|e| e.fk_column == at.fk && e.key_table == table),
                "{}/{}: planted edge {} -> {} not recovered",
                spec.name, seed, at.fk, table
            );
            // Every planted FD key -> X_R verified with zero violations.
            for feature in at.feature_names() {
                prop_assert!(
                    d.report.fds.iter().any(|f| {
                        f.scope == FdScope::AttributeTable
                            && f.table == table
                            && f.determinant == at.fk
                            && f.dependent == feature
                            && f.accepted
                            && f.violations == 0
                    }),
                    "{}/{}: planted FD {}.{} -> {} not verified",
                    spec.name, seed, table, at.fk, feature
                );
            }
        }
        // Evidence discipline: every candidate journaled with a reason.
        prop_assert!(d.report.fks.iter().all(|e| !e.reason.is_empty()));

        // Thread invariance on a real corpus: same bytes at 8 workers.
        let wide = DiscoveryConfig { threads: 8, ..cfg };
        let d8 = discover_corpus(&corpus, &wide)
            .map_err(|e| TestCaseError::fail(format!("{}/{seed} @8 threads: {e}", spec.name)))?;
        prop_assert_eq!(&d8.manifest_text, &d.manifest_text);
        prop_assert_eq!(
            d8.report.to_json().to_string(),
            d.report.to_json().to_string()
        );
    }

    /// Chaos: a corpus corrupted with every fault kind — targeted at the
    /// numeric, primary-key, and foreign-key columns — either mines with
    /// tolerance-journaled evidence or fails with a typed error. It
    /// never panics, and accepted FDs never exceed the tolerance.
    #[test]
    fn corrupted_corpora_never_panic(
        rows in proptest::collection::vec((0..2u8, 0..8u8, 0..6u8), 4..40),
        n_emp in 2..6usize,
        n_plan in 2..5usize,
        seed in 0..u64::MAX,
        faults_per_file in 1..4usize,
        tolerance in 0..3u64,
    ) {
        let clean = clean_corpus(&rows, n_emp, n_plan);
        let plan = ChaosPlan::all_kinds(seed, faults_per_file)
            .with_profile("customers.csv", FileProfile {
                numeric_cols: vec![2],
                pk_col: None,
                fk_cols: vec![3, 4],
            })
            .with_profile("employers.csv", FileProfile {
                numeric_cols: vec![],
                pk_col: Some(0),
                fk_cols: vec![],
            })
            .with_profile("plans.csv", FileProfile {
                numeric_cols: vec![],
                pk_col: Some(0),
                fk_cols: vec![],
            });
        let (corrupted, faults) = corrupt_corpus(&clean, &plan);
        let cfg = DiscoveryConfig {
            max_violations: tolerance,
            ..DiscoveryConfig::default()
        };
        match discover_corpus(&corrupted, &cfg) {
            Ok(d) => {
                // Tolerance discipline: accepted FDs stay within the
                // knob, and journaled violations carry examples.
                for fd in &d.report.fds {
                    if fd.accepted {
                        prop_assert!(
                            fd.violations <= tolerance,
                            "FD {}.{} -> {} accepted with {} violations over tolerance {tolerance}",
                            fd.table, fd.determinant, fd.dependent, fd.violations
                        );
                        if fd.violations > 0 {
                            prop_assert!(!fd.examples.is_empty());
                        }
                    }
                }
                // The synthesized manifest re-parses and the report
                // serializes — evidence survives dirty data.
                prop_assert!(!d.manifest_text.is_empty());
                prop_assert!(!d.report.to_json().to_string().is_empty());
            }
            Err(e) => {
                // Typed, renderable, and attributable — the contract for
                // every chaos outcome ({} faults injected).
                let msg = e.to_string();
                prop_assert!(!msg.is_empty(), "unrenderable error after {} faults", faults.len());
                prop_assert!(matches!(
                    e,
                    DiscoveryError::Relational(_)
                        | DiscoveryError::NoStar { .. }
                        | DiscoveryError::Target { .. }
                        | DiscoveryError::EmptyCorpus { .. }
                ), "unexpected error category: {msg}");
            }
        }
    }

    /// Thread invariance on arbitrary synthetic corpora: the full
    /// discovery outcome — success bytes or rendered error — is
    /// identical at 1, 2, and 8 worker threads.
    #[test]
    fn thread_count_never_changes_the_outcome(
        rows in proptest::collection::vec((0..2u8, 0..8u8, 0..6u8), 2..40),
        n_emp in 2..6usize,
        n_plan in 2..5usize,
        tolerance in 0..2u64,
    ) {
        let corpus = clean_corpus(&rows, n_emp, n_plan);
        let base = DiscoveryConfig {
            max_violations: tolerance,
            ..DiscoveryConfig::default()
        };
        let reference = fingerprint(&corpus, &base);
        for threads in [2usize, 8] {
            let cfg = DiscoveryConfig { threads, ..base.clone() };
            prop_assert_eq!(
                &fingerprint(&corpus, &cfg),
                &reference,
                "outcome diverged at {} threads", threads
            );
        }
    }
}
