//! Integration tests for the extension surface: the advisor, CSV round
//! trips, star decomposition of generated data, cold-start revisions
//! feeding the ML path, and the FD pre-filter on real-shaped data.

use hamlet::core::advisor::{advise, AdvisorConfig};
use hamlet::datagen::realistic::DatasetSpec;
use hamlet::fs::fd_prefilter::prefilter;
use hamlet::ml::classifier::{zero_one_error, Classifier};
use hamlet::ml::dataset::Dataset;
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::relational::decompose::decompose_star;
use hamlet::relational::{
    kfk_join, profile_star, read_csv, write_csv, ColumnSpec, DomainRevision, FunctionalDependency,
};

const SEED: u64 = 77;

/// The advisor reproduces the JoinOpt decisions on all seven datasets
/// and never recommends avoiding a hindsight-unsafe join.
#[test]
fn advisor_matches_planner_and_is_conservative() {
    for spec in DatasetSpec::all() {
        let g = spec.generate(0.05, SEED);
        let report = advise(&g.star, g.star.n_s() / 2, &AdvisorConfig::default()).unwrap();
        assert_eq!(report.joins.len(), spec.tables.len());
        for (advice, table_spec) in report.joins.iter().zip(&spec.tables) {
            if advice.avoid {
                assert!(
                    table_spec.safe_to_avoid_in_hindsight,
                    "{} / {}: advisor avoided an unsafe join",
                    spec.name, table_spec.table
                );
            }
            // Uniform FK generation: the skew detector must not fire.
            if let Some(skew) = &advice.skew {
                assert!(
                    !skew.is_malign(hamlet::core::MALIGN_RETENTION_FLOOR),
                    "{} / {}: spurious malign-skew flag (retention {})",
                    spec.name,
                    table_spec.table,
                    skew.retention
                );
            }
        }
    }
}

/// Full-join table -> CSV -> parse -> identical codes for every column.
#[test]
fn csv_roundtrip_of_joined_dataset() {
    let g = DatasetSpec::walmart().generate(0.002, SEED);
    let t = g.star.materialize_all().expect("materializes");
    let text = write_csv(&t, ',');
    let specs: Vec<(&str, ColumnSpec)> = t
        .schema()
        .attributes()
        .iter()
        .map(|a| {
            let spec = match &a.role {
                hamlet::relational::Role::Target => ColumnSpec::target(&a.name),
                hamlet::relational::Role::ForeignKey { table, .. } => {
                    ColumnSpec::foreign_key(&a.name, table)
                }
                _ => ColumnSpec::feature(&a.name),
            };
            (a.name.as_str(), spec)
        })
        .collect();
    let back = read_csv("Walmart", &text, &specs, ',').expect("parses");
    assert_eq!(back.n_rows(), t.n_rows());
    for a in t.schema().attributes() {
        let orig = t.column_by_name(&a.name).unwrap();
        let parsed = back.column_by_name(&a.name).unwrap();
        // Labels are re-interned in first-appearance order, so compare
        // label sequences rather than raw codes.
        for row in 0..t.n_rows() {
            assert_eq!(
                orig.domain().label(orig.get(row)),
                parsed.domain().label(parsed.get(row)),
                "column {} row {row}",
                a.name
            );
        }
    }
}

/// Decomposing the denormalized join of a generated star schema recovers
/// tables with the original row counts, and re-joining is lossless.
#[test]
fn decompose_recovers_generated_star() {
    let spec = DatasetSpec::movielens();
    let g = spec.generate(0.002, SEED);
    let t = g.star.materialize_all().expect("materializes");
    // Declare the FDs the join guarantees.
    let fds: Vec<FunctionalDependency> = spec
        .tables
        .iter()
        .map(|at| {
            let deps: Vec<&str> = at.features.iter().map(|f| f.name).collect();
            FunctionalDependency::new(&[at.fk], &deps)
        })
        .collect();
    let star = decompose_star(&t, &fds).expect("decomposes");
    assert_eq!(star.k(), 2);
    for (at, at_spec) in star.attributes().iter().zip(&spec.tables) {
        // Every FK value present in the data produces one dimension row.
        assert!(at.n_rows() <= spec.scaled_n_r(0, 0.002).max(spec.scaled_n_r(1, 0.002)));
        assert_eq!(at.n_features(), at_spec.features.len());
    }
    // Lossless rejoin.
    let rejoined = kfk_join(
        &kfk_join(
            star.entity(),
            &star.attributes()[0].fk,
            &star.attributes()[0].table,
        )
        .unwrap(),
        &star.attributes()[1].fk,
        &star.attributes()[1].table,
    )
    .unwrap();
    for a in t.schema().attributes() {
        assert_eq!(
            rejoined.column_by_name(&a.name).unwrap().codes(),
            t.column_by_name(&a.name).unwrap().codes(),
            "column {}",
            a.name
        );
    }
}

/// Cold-start pipeline: revise an attribute table with an Others record,
/// remap out-of-domain FKs, join, train — end to end without panics and
/// with sane predictions.
#[test]
fn cold_start_revision_feeds_training() {
    let g = DatasetSpec::walmart().generate(0.002, SEED);
    let at = &g.star.attributes()[0];
    let defaults = vec![0u32; at.n_features()];
    let rev = DomainRevision::new(at, &defaults).expect("revision builds");

    // Simulate new entities: half the incoming FK values are unseen.
    let n = 400usize;
    let raw: Vec<u32> = (0..n as u32)
        .map(|i| {
            if i % 2 == 0 {
                i % at.n_rows() as u32
            } else {
                at.n_rows() as u32 + i // out of domain
            }
        })
        .collect();
    assert!((rev.cold_start_rate(&raw) - 0.5).abs() < 1e-12);
    let remapped = rev.remap_fk(&raw);

    use hamlet::relational::{AttributeDef, Domain, TableBuilder};
    let s = TableBuilder::new("S")
        .target(
            "y",
            Domain::boolean("y").shared(),
            (0..n as u32).map(|i| i % 2).collect(),
        )
        .column(
            AttributeDef::foreign_key("IndicatorID", "Indicators"),
            remapped.domain().clone(),
            remapped.codes().to_vec(),
        )
        .build()
        .expect("entity builds");
    let joined = kfk_join(&s, "IndicatorID", &rev.attribute.table).expect("joins");
    let data = Dataset::from_table(&joined);
    let rows: Vec<usize> = (0..n).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let model = NaiveBayes::default().fit(&data, &rows, &feats);
    let err = zero_one_error(&model, &data, &rows);
    assert!(err <= 0.5 + 1e-9, "training error {err} worse than chance");
}

/// FD pre-filtering the fully joined dataset removes exactly the foreign
/// features and keeps the entity features and FKs.
#[test]
fn fd_prefilter_on_joined_dataset() {
    let spec = DatasetSpec::lastfm();
    let g = spec.generate(0.01, SEED);
    let t = g.star.materialize_all().expect("materializes");
    let data = Dataset::from_table(&t);
    let fds: Vec<FunctionalDependency> = spec
        .tables
        .iter()
        .map(|at| {
            let deps: Vec<&str> = at.features.iter().map(|f| f.name).collect();
            FunctionalDependency::new(&[at.fk], &deps)
        })
        .collect();
    let candidates: Vec<usize> = (0..data.n_features()).collect();
    let result = prefilter(&data, &candidates, &fds);
    let total_foreign: usize = spec.tables.iter().map(|at| at.features.len()).sum();
    assert_eq!(result.dropped.len(), total_foreign);
    assert_eq!(result.kept.len(), data.n_features() - total_foreign);
    for &k in &result.kept {
        let name = &data.feature(k).name;
        assert!(
            name == "ArtistID" || name == "UserID",
            "unexpected survivor {name}"
        );
    }
}

/// Profiles agree with the catalog metadata the rules use.
#[test]
fn profile_matches_catalog_stats() {
    let g = DatasetSpec::yelp().generate(0.01, SEED);
    let p = profile_star(&g.star);
    assert_eq!(p.entity.n_rows, g.star.n_s());
    assert_eq!(p.attributes.len(), g.star.k());
    for (i, (tp, tr, q)) in p.attributes.iter().enumerate() {
        assert_eq!(tp.n_rows, g.star.attributes()[i].n_rows());
        assert!((tr - g.star.n_s() as f64 / tp.n_rows as f64).abs() < 1e-12);
        assert_eq!(*q, g.star.attributes()[i].min_feature_domain());
    }
}
