//! Trait-level contracts every classifier must honour, checked uniformly
//! across Naive Bayes, logistic regression, TAN, and the decision tree:
//!
//! * an empty feature subset yields the majority-class predictor;
//! * predictions are always valid class codes;
//! * fitting is deterministic given identical inputs;
//! * the model reports exactly the feature subset it was given;
//! * training on a strong single-feature concept reaches low error;
//! * models predict on a *different* dataset with the same layout
//!   (train/test separation, as the runner relies on).

use hamlet::ml::classifier::{zero_one_error, Classifier, Model};
use hamlet::ml::dataset::{Dataset, Feature};
use hamlet::ml::logreg::LogisticRegression;
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::ml::tan::Tan;
use hamlet::ml::tree::DecisionTree;

/// y = x0 (3 classes); x1 noise; majority class is 0.
fn train_data(n: usize) -> Dataset {
    let x0: Vec<u32> = (0..n as u32)
        .map(|i| if i % 4 == 3 { (i / 4) % 3 } else { 0 })
        .collect();
    let x1: Vec<u32> = (0..n as u32).map(|i| (i * 7) % 5).collect();
    let y = x0.clone();
    Dataset::new(
        vec![
            Feature {
                name: "x0".into(),
                domain_size: 3,
                codes: x0,
            },
            Feature {
                name: "x1".into(),
                domain_size: 5,
                codes: x1,
            },
        ],
        y,
        3,
    )
}

/// Same layout, fresh rows.
fn test_data(n: usize) -> Dataset {
    let x0: Vec<u32> = (0..n as u32).map(|i| (i + 1) % 3).collect();
    let x1: Vec<u32> = (0..n as u32).map(|i| (i * 3 + 2) % 5).collect();
    let y = x0.clone();
    Dataset::new(
        vec![
            Feature {
                name: "x0".into(),
                domain_size: 3,
                codes: x0,
            },
            Feature {
                name: "x1".into(),
                domain_size: 5,
                codes: x1,
            },
        ],
        y,
        3,
    )
}

fn check_contracts<C: Classifier>(learner: &C, name: &str) {
    let n = 240;
    let train = train_data(n);
    let test = test_data(60);
    let rows: Vec<usize> = (0..n).collect();
    let test_rows: Vec<usize> = (0..60).collect();

    // Empty feature subset -> majority class (0 dominates 3:1).
    let empty = learner.fit(&train, &rows, &[]);
    for &r in &test_rows {
        assert_eq!(
            empty.predict_row(&test, r),
            0,
            "{name}: empty-subset majority"
        );
    }
    assert!(
        empty.features().is_empty(),
        "{name}: features() on empty fit"
    );

    // Full fit: valid predictions, reported features, determinism.
    let m1 = learner.fit(&train, &rows, &[0, 1]);
    let m2 = learner.fit(&train, &rows, &[0, 1]);
    assert_eq!(m1.features(), &[0, 1], "{name}: features() echo");
    for &r in &test_rows {
        let p1 = m1.predict_row(&test, r);
        let p2 = m2.predict_row(&test, r);
        assert!(p1 < 3, "{name}: prediction in class range");
        assert_eq!(p1, p2, "{name}: deterministic fit");
    }

    // Learnable concept: error well below the majority baseline on
    // held-out rows (baseline here: predicting 0 errs 2/3 of the time).
    let err = zero_one_error(&m1, &test, &test_rows);
    assert!(err < 0.25, "{name}: test error {err} too high");

    // Subset fit uses only the subset.
    let sub = learner.fit(&train, &rows, &[1]);
    assert_eq!(sub.features(), &[1], "{name}: subset features() echo");
    let sub_err = zero_one_error(&sub, &test, &test_rows);
    assert!(
        sub_err > err,
        "{name}: noise-only subset should be worse ({sub_err} vs {err})"
    );
}

#[test]
fn naive_bayes_contracts() {
    check_contracts(&NaiveBayes::default(), "NaiveBayes");
}

#[test]
fn logistic_regression_contracts() {
    check_contracts(
        &LogisticRegression::default().with_epochs(20),
        "LogisticRegression",
    );
}

#[test]
fn tan_contracts() {
    check_contracts(&Tan::default(), "TAN");
}

#[test]
fn decision_tree_contracts() {
    check_contracts(&DecisionTree::default(), "DecisionTree");
}

/// The selection machinery accepts any of the four classifiers.
#[test]
fn all_classifiers_drive_feature_selection() {
    use hamlet::fs::{forward_selection, SelectionContext};
    use hamlet::ml::classifier::ErrorMetric;
    use hamlet::ml::suffstats::SweepFit;

    let d = train_data(240);
    let rows: Vec<usize> = (0..240).collect();
    fn run<C>(learner: &C, d: &Dataset, rows: &[usize]) -> Vec<usize>
    where
        C: SweepFit + Sync,
        C::Fitted: Sync,
    {
        let ctx = SelectionContext {
            data: d,
            train: &rows[..120],
            validation: &rows[120..],
            classifier: learner,
            metric: ErrorMetric::Rmse,
        };
        forward_selection(&ctx, &[0, 1]).features
    }
    assert!(run(&NaiveBayes::default(), &d, &rows).contains(&0));
    assert!(run(&LogisticRegression::default(), &d, &rows).contains(&0));
    assert!(run(&Tan::default(), &d, &rows).contains(&0));
    assert!(run(&DecisionTree::default(), &d, &rows).contains(&0));
}
