//! Property-based tests for the extension surface: CSV round trips,
//! quantile binning, decision trees, encoders, cold-start remapping, and
//! threshold tuning.

use proptest::prelude::*;

use hamlet::core::tuning::{tune_threshold, SafeSide, TuningPoint};
use hamlet::ml::classifier::{Classifier, Model};
use hamlet::ml::dataset::{Dataset, Feature};
use hamlet::ml::encoding::{Encoder, Encoding};
use hamlet::ml::tree::DecisionTree;
use hamlet::relational::{read_csv, write_csv, ColumnSpec, EqualFrequencyBinner};

/// Strategy: nonempty CSV-safe label strings.
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 _.,\"-]{1,12}").expect("valid regex")
}

proptest! {
    /// CSV write -> read preserves row count and label sequences for
    /// arbitrary (quotable) nominal values.
    #[test]
    fn csv_roundtrip_property(
        values in proptest::collection::vec((label(), label()), 1..40)
    ) {
        use hamlet::relational::{Domain, TableBuilder};
        // Intern the labels of each column into domains.
        let mut a_labels: Vec<String> = Vec::new();
        let mut b_labels: Vec<String> = Vec::new();
        let mut a_codes = Vec::new();
        let mut b_codes = Vec::new();
        for (a, b) in &values {
            let ac = a_labels.iter().position(|x| x == a).unwrap_or_else(|| {
                a_labels.push(a.clone());
                a_labels.len() - 1
            });
            let bc = b_labels.iter().position(|x| x == b).unwrap_or_else(|| {
                b_labels.push(b.clone());
                b_labels.len() - 1
            });
            a_codes.push(ac as u32);
            b_codes.push(bc as u32);
        }
        let t = TableBuilder::new("T")
            .feature("a", Domain::labelled("a", a_labels).shared(), a_codes)
            .feature("b", Domain::labelled("b", b_labels).shared(), b_codes)
            .build()
            .unwrap();
        let text = write_csv(&t, ',');
        let specs = vec![("a", ColumnSpec::feature("a")), ("b", ColumnSpec::feature("b"))];
        let back = read_csv("T", &text, &specs, ',').unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for row in 0..t.n_rows() {
            for col in ["a", "b"] {
                let orig = t.column_by_name(col).unwrap();
                let parsed = back.column_by_name(col).unwrap();
                prop_assert_eq!(
                    orig.domain().label(orig.get(row)),
                    parsed.domain().label(parsed.get(row))
                );
            }
        }
    }

    /// Equal-frequency bins are within one of balanced for distinct data,
    /// and every value maps into a valid bin.
    #[test]
    fn quantile_bins_balanced(
        mut values in proptest::collection::vec(-1e5f64..1e5, 8..200),
        n_bins in 2usize..9
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        prop_assume!(values.len() >= n_bins * 2);
        let b = EqualFrequencyBinner::fit("x", &values, n_bins).unwrap();
        let mut counts = vec![0usize; b.n_bins()];
        for &v in &values {
            let code = b.bin(v) as usize;
            prop_assert!(code < b.n_bins());
            counts[code] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        // Distinct data: bucket sizes within a factor of ~2 plus slack.
        prop_assert!(max <= 2 * min + 2, "counts {:?}", counts);
    }

    /// Decision-tree predictions are always valid classes, and training
    /// error never exceeds the majority baseline.
    #[test]
    fn tree_predicts_valid_classes(
        codes in proptest::collection::vec(0..5u32, 20..120),
        seed in 0u64..50
    ) {
        let n = codes.len();
        let labels: Vec<u32> = codes
            .iter()
            .enumerate()
            .map(|(i, &c)| (c + (i as u32 + seed as u32) % 2) % 3)
            .collect();
        let d = Dataset::new(
            vec![Feature { name: "x".into(), domain_size: 5, codes }],
            labels.clone(),
            3,
        );
        let rows: Vec<usize> = (0..n).collect();
        let m = DecisionTree::default().fit(&d, &rows, &[0]);
        // Valid predictions.
        for &r in &rows {
            prop_assert!(m.predict_row(&d, r) < 3);
        }
        // No worse than majority class on training data.
        let mut counts = [0usize; 3];
        for &y in &labels {
            counts[y as usize] += 1;
        }
        let majority_correct = *counts.iter().max().unwrap();
        let tree_correct = rows
            .iter()
            .filter(|&&r| m.predict_row(&d, r) == labels[r])
            .count();
        prop_assert!(tree_correct >= majority_correct);
    }

    /// Encoders: each row activates at most one dimension per feature,
    /// all active dimensions decode back to the right feature, and the
    /// one-hot encoding activates exactly one per feature.
    #[test]
    fn encoder_properties(
        codes_a in proptest::collection::vec(0..4u32, 5..50),
        enc_one_hot in proptest::bool::ANY
    ) {
        let n = codes_a.len();
        let codes_b: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let d = Dataset::new(
            vec![
                Feature { name: "a".into(), domain_size: 4, codes: codes_a },
                Feature { name: "b".into(), domain_size: 3, codes: codes_b },
            ],
            vec![0; n],
            2,
        );
        let encoding = if enc_one_hot { Encoding::OneHot } else { Encoding::BinaryCoded };
        let e = Encoder::fit(&d, &[0, 1], encoding);
        for row in 0..n {
            let active = e.encode_row(&d, row).expect("codes are in the fitted domain");
            if enc_one_hot {
                prop_assert_eq!(active.len(), 2);
            } else {
                prop_assert!(active.len() <= 2);
            }
            let mut feats_seen = Vec::new();
            for dim in active {
                let (f, v) = e.decode_dimension(dim).expect("active dim decodes");
                prop_assert!(!feats_seen.contains(&f), "two dims for one feature");
                feats_seen.push(f);
                prop_assert_eq!(d.feature(f).codes[row], v);
            }
        }
    }

    /// Cold-start remapping: in-domain values are identities; everything
    /// else maps to the Others code.
    #[test]
    fn coldstart_remap_property(
        raw in proptest::collection::vec(0..50u32, 1..100)
    ) {
        use hamlet::relational::{AttributeTable, Domain, DomainRevision, TableBuilder};
        let n_r = 10usize;
        let at = AttributeTable {
            fk: "fk".into(),
            table: TableBuilder::new("R")
                .primary_key("fk", Domain::indexed("fk", n_r).shared(), (0..n_r as u32).collect())
                .feature("a", Domain::boolean("a").shared(), (0..n_r as u32).map(|i| i % 2).collect())
                .build()
                .unwrap(),
        };
        let rev = DomainRevision::new(&at, &[0]).unwrap();
        let remapped = rev.remap_fk(&raw);
        for (orig, &code) in raw.iter().zip(remapped.codes()) {
            if (*orig as usize) < n_r {
                prop_assert_eq!(code, *orig);
            } else {
                prop_assert_eq!(code, n_r as u32);
            }
        }
        let expected_rate = raw.iter().filter(|&&v| v as usize >= n_r).count() as f64
            / raw.len() as f64;
        prop_assert!((rev.cold_start_rate(&raw) - expected_rate).abs() < 1e-12);
    }

    /// Tuning: the returned threshold always admits a uniformly safe
    /// region, and loosening the tolerance never shrinks it.
    #[test]
    fn tuning_monotone_in_tolerance(
        stats in proptest::collection::vec((0.0f64..10.0, 0.0f64..0.2), 1..40)
    ) {
        let points: Vec<TuningPoint> = stats
            .iter()
            .map(|&(statistic, error_increase)| TuningPoint { statistic, error_increase })
            .collect();
        let tight = tune_threshold(&points, 0.001, SafeSide::Low);
        let loose = tune_threshold(&points, 0.05, SafeSide::Low);
        if let (Some(t), Some(l)) = (tight, loose) {
            prop_assert!(l >= t, "loose {l} < tight {t}");
        }
        if let Some(t) = tight {
            for p in &points {
                if p.statistic <= t {
                    prop_assert!(p.error_increase <= 0.001);
                }
            }
        }
    }
}
