//! Property-based tests for the relational operators: query algebra,
//! manifests, lints, and profiles over randomly generated tables.

use proptest::prelude::*;

use hamlet::relational::{
    fanout, filter, group_count, lint_star, profile_table, select_rows, sort_by, AttributeTable,
    Domain, LintConfig, Predicate, StarSchema, Table, TableBuilder,
};

/// Strategy: a random two-column feature table.
fn random_table() -> impl Strategy<Value = Table> {
    (
        proptest::collection::vec(0..6u32, 1..80),
        proptest::collection::vec(0..4u32, 1..80),
    )
        .prop_map(|(a, b)| {
            let n = a.len().min(b.len());
            TableBuilder::new("T")
                .feature("a", Domain::indexed("a", 6).shared(), a[..n].to_vec())
                .feature("b", Domain::indexed("b", 4).shared(), b[..n].to_vec())
                .build()
                .expect("generated table valid")
        })
}

proptest! {
    /// Selection returns exactly the rows satisfying the predicate, in
    /// order; filter + fanout agree with manual counting.
    #[test]
    fn selection_is_sound_and_complete(t in random_table(), code in 0..6u32) {
        let rows = select_rows(&t, &[Predicate::Eq("a".into(), code)]).unwrap();
        let col = t.column_by_name("a").unwrap();
        // Sound: every returned row matches.
        for &r in &rows {
            prop_assert_eq!(col.get(r), code);
        }
        // Complete: count matches the histogram.
        let hist = fanout(&t, "a").unwrap();
        prop_assert_eq!(rows.len() as u64, hist[code as usize]);
        // In ascending order.
        prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        // Filter preserves schema and shrinks rows.
        let f = filter(&t, &[Predicate::Eq("a".into(), code)]).unwrap();
        prop_assert_eq!(f.n_rows(), rows.len());
        prop_assert_eq!(f.schema().len(), t.schema().len());
    }

    /// Sorting is a permutation and is ordered on the sort keys.
    #[test]
    fn sort_is_an_ordered_permutation(t in random_table()) {
        let s = sort_by(&t, &["a", "b"]).unwrap();
        prop_assert_eq!(s.n_rows(), t.n_rows());
        let a = s.column_by_name("a").unwrap();
        let b = s.column_by_name("b").unwrap();
        for i in 1..s.n_rows() {
            let prev = (a.get(i - 1), b.get(i - 1));
            let cur = (a.get(i), b.get(i));
            prop_assert!(prev <= cur, "row {i}: {prev:?} > {cur:?}");
        }
        // Multiset preserved: histograms match.
        prop_assert_eq!(fanout(&s, "a").unwrap(), fanout(&t, "a").unwrap());
        prop_assert_eq!(fanout(&s, "b").unwrap(), fanout(&t, "b").unwrap());
    }

    /// Group counts partition the rows: totals add up, group count
    /// equals distinct key count.
    #[test]
    fn group_count_partitions(t in random_table()) {
        let groups = group_count(&t, &["a", "b"]).unwrap();
        let total: u64 = groups.iter().map(|g| g.count).sum();
        prop_assert_eq!(total as usize, t.n_rows());
        // Keys are unique.
        let mut keys: Vec<&Vec<u32>> = groups.iter().map(|g| &g.key).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    /// Profiles report consistent distinct counts and entropies within
    /// bounds, for any table.
    #[test]
    fn profiles_are_consistent(t in random_table()) {
        let p = profile_table(&t);
        prop_assert_eq!(p.n_rows, t.n_rows());
        for (c, col) in p.columns.iter().zip(t.columns()) {
            prop_assert_eq!(c.distinct, col.distinct_count());
            prop_assert!(c.entropy_bits >= -1e-12);
            prop_assert!(c.entropy_bits <= (c.domain_size as f64).log2() + 1e-9);
            prop_assert!(c.mode.1 as usize <= t.n_rows());
        }
    }

    /// Lints never fire spuriously on balanced, fully-referenced stars —
    /// and the dominant-FK lint fires exactly when a value crosses the
    /// configured floor.
    #[test]
    fn lints_fire_exactly_on_dominance(dominant_share in 0u32..100) {
        let n = 200usize;
        let n_r = 8usize;
        let dominant_rows = (n as u32 * dominant_share / 100) as usize;
        let mut fk: Vec<u32> = vec![0; dominant_rows];
        fk.extend((0..(n - dominant_rows) as u32).map(|i| i % n_r as u32));
        let y: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let rid = Domain::indexed("fk", n_r).shared();
        let r = TableBuilder::new("R")
            .primary_key("fk", rid.clone(), (0..n_r as u32).collect())
            .feature("x", Domain::indexed("x", 3).shared(), (0..n_r as u32).map(|i| i % 3).collect())
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .target("y", Domain::boolean("y").shared(), y)
            .foreign_key("fk", "R", rid, fk.clone())
            .build()
            .unwrap();
        let star = StarSchema::new(s, vec![AttributeTable { fk: "fk".into(), table: r }]).unwrap();
        let lints = lint_star(&star, &LintConfig::default());
        let mut hist = vec![0u64; n_r];
        for &v in &fk {
            hist[v as usize] += 1;
        }
        let top = *hist.iter().max().unwrap() as f64 / n as f64;
        let fired = lints
            .iter()
            .any(|l| matches!(l, hamlet::relational::Lint::DominantFkValue { .. }));
        prop_assert_eq!(fired, top > 0.5, "top fraction {} (lints: {:?})", top, lints);
    }
}
