//! Peak-allocation contract for factorized tree training, measured with
//! the real counting allocator (installed process-wide for this test
//! binary): growing a CART tree over the star must not allocate
//! anything that scales with the join — its working set is the per-node
//! `n_R x |D_Y|` FK histogram plus row partitions, so the peak *falls*
//! (or at worst stays flat) as fanout rises, while the materialized
//! path keeps paying for the full wide table.

use hamlet::experiments::factorized::fanout_star;
use hamlet::ml::classifier::Classifier;
use hamlet::ml::dataset::Dataset;
use hamlet::ml::CodeSource;
use hamlet::obs::CountingAlloc;
use hamlet::trees::{fit_factorized_tree, CartTree};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Peak extra bytes allocated while running `f`, over the live baseline.
fn peak_delta<T>(f: impl FnOnce() -> T) -> (T, usize) {
    ALLOC.reset_peak();
    let before = ALLOC.current();
    let out = f();
    (out, ALLOC.peak().saturating_sub(before))
}

#[test]
fn factorized_tree_peak_allocation_does_not_scale_with_fanout() {
    const N_S: usize = 20_000;
    const D_R: usize = 6;
    // Serial scoring so the measurement sees only the algorithm's own
    // allocations, not worker bookkeeping.
    let tree = CartTree {
        threads: Some(1),
        ..CartTree::default()
    };

    let mut fac_peaks = Vec::new();
    for ratio in [1usize, 10, 100] {
        let star = fanout_star(N_S, ratio, D_R, 42);
        let rows: Vec<usize> = (0..star.n_s()).collect();

        let (m_mat, mat_peak) = peak_delta(|| {
            let wide = star.materialize_all().unwrap();
            let data = Dataset::from_table(&wide);
            let feats: Vec<usize> = (0..data.n_features()).collect();
            tree.fit(&data, &rows, &feats)
        });
        let (m_fac, fac_peak) = peak_delta(|| {
            let view = hamlet::factorized::FactorizedView::new(&star).unwrap();
            let feats: Vec<usize> = (0..view.n_features()).collect();
            fit_factorized_tree(&view, &tree, &rows, &feats)
        });
        assert_eq!(m_mat, m_fac, "parity broke at ratio {ratio}");
        assert!(
            fac_peak < mat_peak,
            "ratio {ratio}: factorized peak {fac_peak} must undercut \
             materialized peak {mat_peak} (the wide table)"
        );
        fac_peaks.push(fac_peak);
    }

    // The join fanout grew 100x across the sweep; the factorized
    // working set must not follow it. Allow 25% jitter for allocator
    // rounding and Vec growth policies.
    let (first, last) = (fac_peaks[0], fac_peaks[2]);
    assert!(
        (last as f64) <= (first as f64) * 1.25,
        "factorized peak grew with fanout: ratio-1 peak {first} bytes, \
         ratio-100 peak {last} bytes"
    );
}
