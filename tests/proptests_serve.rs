//! Property-based tests for the model serving subsystem: on arbitrary
//! star instances and all three classifier families, a saved artifact
//! reloads bit-for-bit, serves predictions identical to the in-memory
//! model (including cold-start rows with unseen FK values), every
//! corruption of the document yields a typed error — never a panic —
//! pipelined request framing never bleeds bytes between requests, and
//! micro-batched scoring is bit-for-bit identical to direct scoring.

use std::io::Write;
use std::net::TcpListener;
use std::time::Duration;

use proptest::prelude::*;

use hamlet::core::advisor::AdvisorConfig;
use hamlet::ml::classifier::Model;
use hamlet::ml::dataset::Dataset;
use hamlet::relational::{AttributeTable, Domain, StarSchema, TableBuilder};
use hamlet::serve::artifact::{from_json_str, to_json_string};
use hamlet::serve::{build_artifact, ConnReader, MicroBatcher, ModelKind, Scorer};

/// Strategy: a random one-attribute-table star, large enough to survive
/// the 50/25/25 split with a usable training set.
fn star_instance() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>)> {
    (2usize..8).prop_flat_map(|n_r| {
        (
            Just(n_r),
            proptest::collection::vec(0..4u32, n_r), // X_R per RID
            proptest::collection::vec(0..n_r as u32, 40..120), // FK codes
        )
            .prop_flat_map(|(n_r, xr, fks)| {
                let n_s = fks.len();
                (
                    Just(n_r),
                    Just(xr),
                    Just(fks),
                    proptest::collection::vec(0..3u32, n_s), // entity feature
                    proptest::collection::vec(0..2u32, n_s), // labels
                )
            })
    })
}

fn build_star(n_r: usize, xr: Vec<u32>, fks: Vec<u32>, xs: Vec<u32>, ys: Vec<u32>) -> StarSchema {
    let rid = Domain::indexed("RID", n_r).shared();
    let r = TableBuilder::new("R")
        .primary_key("RID", rid.clone(), (0..n_r as u32).collect())
        .feature("xr", Domain::indexed("xr", 4).shared(), xr)
        .build()
        .unwrap();
    let s = TableBuilder::new("S")
        .target("y", Domain::boolean("y").shared(), ys)
        .feature("xs", Domain::indexed("xs", 3).shared(), xs)
        .foreign_key("fk", "R", rid, fks)
        .build()
        .unwrap();
    StarSchema::new(
        s,
        vec![AttributeTable {
            fk: "fk".into(),
            table: r,
        }],
    )
    .unwrap()
}

const FAMILIES: [ModelKind; 3] = [
    ModelKind::NaiveBayes,
    ModelKind::LogisticRegression,
    ModelKind::Tan,
];

proptest! {
    /// save-model -> load -> predict is bit-for-bit identical to the
    /// in-memory model for every family, on every entity row.
    #[test]
    fn reloaded_artifact_predicts_bit_for_bit((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        for kind in FAMILIES {
            let built =
                build_artifact(&star, kind, &AdvisorConfig::default(), "prop").unwrap();
            let text = to_json_string(&built.artifact);
            let reloaded = from_json_str(&text).unwrap();
            prop_assert_eq!(&built.artifact, &reloaded, "{} artifact drifted", kind.name());

            // The reference: the in-memory model scoring the same view
            // the artifact was built from (all FKs cold-start-revised,
            // avoided joins not materialized).
            let in_memory = Scorer::new(built.artifact);
            let served = Scorer::new(reloaded);

            // Rows drawn from the model's own input schema: code r % size
            // per feature keeps everything in-domain.
            let rows: Vec<Vec<u32>> = (0..star.n_s())
                .map(|r| {
                    in_memory
                        .artifact()
                        .features
                        .iter()
                        .map(|f| (r % f.domain_size) as u32)
                        .collect()
                })
                .collect();
            let a = in_memory.predict_codes(&rows).unwrap();
            let b = served.predict_codes(&rows).unwrap();
            // Bit-for-bit: classes, labels, AND float scores.
            prop_assert_eq!(a, b, "{} served != in-memory", kind.name());
        }
    }

    /// Unseen-FK rows route through the Others bucket: any out-of-domain
    /// FK code predicts exactly like the trained Others code.
    #[test]
    fn cold_start_rows_score_like_others(
        (n_r, xr, fks, xs, ys) in star_instance(),
        unseen_offset in 1u32..1000
    ) {
        let star = build_star(n_r, xr, fks, xs, ys);
        for kind in FAMILIES {
            let built =
                build_artifact(&star, kind, &AdvisorConfig::default(), "prop").unwrap();
            let scorer = Scorer::new(built.artifact);
            let a = scorer.artifact();
            let fk_pos = a.features.iter().position(|f| f.fk.is_some()).unwrap();
            let others = a.features[fk_pos].fk.as_ref().unwrap().others_code;
            let original = a.features[fk_pos].fk.as_ref().unwrap().original_domain as u32;

            let mut unseen_row: Vec<u32> = a.features.iter().map(|_| 0).collect();
            unseen_row[fk_pos] = original + unseen_offset - 1;
            let mut others_row = unseen_row.clone();
            others_row[fk_pos] = others;

            let preds = scorer.predict_codes(&[unseen_row, others_row]).unwrap();
            prop_assert_eq!(&preds[0], &preds[1], "{}: unseen FK != Others", kind.name());
        }
    }

    /// The scorer agrees with Model::predict_row on the materialized
    /// avoid-view dataset (the training-side ground truth).
    #[test]
    fn scorer_matches_direct_model_prediction((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let built = build_artifact(
            &star,
            ModelKind::NaiveBayes,
            &AdvisorConfig::default(),
            "prop",
        )
        .unwrap();
        let scorer = Scorer::new(built.artifact.clone());

        // Rebuild the serving view the way export does: avoided joins out,
        // FKs revised. For this one-attribute star the advisor either
        // avoided (view = entity) or joined (view = full join); either
        // way the artifact's feature schema tells us which.
        let avoided = built.artifact.decisions[0].avoid;
        let wide = if avoided {
            // Only entity columns; FK codes in the artifact's widened
            // domain coincide with raw codes (all raw codes are seen).
            star.materialize_none()
        } else {
            star.materialize_all().unwrap()
        };
        let data = Dataset::from_table(&wide);
        let rows: Vec<Vec<u32>> = (0..data.n_examples())
            .map(|r| {
                (0..data.n_features())
                    .map(|f| data.feature(f).codes[r])
                    .collect()
            })
            .collect();
        let preds = scorer.predict_codes(&rows).unwrap();
        for (r, p) in preds.iter().enumerate() {
            prop_assert_eq!(p.class, built.artifact.model.predict_row(&data, r), "row {}", r);
        }
    }

    /// Truncation at ANY byte yields a typed error, never a panic.
    #[test]
    fn truncated_artifacts_never_panic(
        (n_r, xr, fks, xs, ys) in star_instance(),
        frac in 0.0f64..1.0
    ) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let built = build_artifact(
            &star,
            ModelKind::NaiveBayes,
            &AdvisorConfig::default(),
            "prop",
        )
        .unwrap();
        let text = to_json_string(&built.artifact);
        let cut = ((text.len() as f64) * frac) as usize;
        prop_assert!(from_json_str(&text[..cut.min(text.len() - 1)]).is_err());
    }

    /// Flipping any byte of the document to a different character yields
    /// a typed error (checksum, schema, or parse), never a panic and
    /// never a silently different model.
    #[test]
    fn bit_flipped_artifacts_never_panic(
        (n_r, xr, fks, xs, ys) in star_instance(),
        pos_frac in 0.0f64..1.0,
        replacement in 0u8..=255
    ) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let built = build_artifact(
            &star,
            ModelKind::NaiveBayes,
            &AdvisorConfig::default(),
            "prop",
        )
        .unwrap();
        let text = to_json_string(&built.artifact);
        let pos = (((text.len() - 1) as f64) * pos_frac) as usize;
        let mut bytes = text.clone().into_bytes();
        prop_assume!(bytes[pos] != replacement);
        bytes[pos] = replacement;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        match from_json_str(&corrupted) {
            // Typed error: fine, the corruption was caught.
            Err(_) => {}
            // A parse that still succeeds must mean the reload is
            // byte-equivalent under canonical re-rendering (e.g. a
            // whitespace byte outside any token changed to another
            // whitespace byte) — the model itself cannot have drifted.
            Ok(reloaded) => prop_assert_eq!(reloaded, built.artifact),
        }
    }
}

/// A request body for the framing property: arbitrary bytes, optionally
/// with a complete fake request head spliced into the middle — the
/// adversarial case where naive framing would treat body bytes as the
/// start of the next pipelined request.
fn adversarial_body() -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::collection::vec(0u8..=255, 0..120),
        any_bool(),
        0usize..120,
    )
        .prop_map(|(mut bytes, inject, at)| {
            if inject {
                let fake = b"POST /evil HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
                let at = at.min(bytes.len());
                bytes.splice(at..at, fake.iter().copied());
            }
            bytes
        })
}

proptest! {
    /// Pipelined framing never bleeds: N requests written back-to-back
    /// (split across writes at an arbitrary byte) come back from
    /// `ConnReader` with exactly the paths and bodies that were sent —
    /// even when bodies contain complete fake request heads — followed
    /// by a clean end-of-connection.
    #[test]
    fn pipelined_requests_never_bleed(
        bodies in proptest::collection::vec(adversarial_body(), 1..4),
        split_frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            wire.extend_from_slice(
                format!(
                    "POST /p{i} HTTP/1.1\r\nHost: prop\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .as_bytes(),
            );
            wire.extend_from_slice(body);
        }
        let split = ((wire.len() as f64) * split_frac) as usize;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut client = std::net::TcpStream::connect(addr).unwrap();
            client.write_all(&wire[..split]).unwrap();
            client.flush().unwrap();
            // A beat between the two segments forces the reader through
            // its partial-buffer path, not just the all-at-once path.
            std::thread::sleep(Duration::from_millis(2));
            client.write_all(&wire[split..]).unwrap();
            // Dropping the client closes the connection cleanly.
        });

        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = ConnReader::new();
        let deadline = Duration::from_secs(5);
        for (i, body) in bodies.iter().enumerate() {
            let req = reader
                .next_request(&mut stream, deadline, deadline)
                .unwrap()
                .expect("request vanished");
            prop_assert_eq!(&req.path, &format!("/p{i}"), "request {} path bled", i);
            prop_assert_eq!(&req.body, body, "request {} body bled", i);
        }
        prop_assert!(
            reader.next_request(&mut stream, deadline, deadline).unwrap().is_none(),
            "phantom request after the last pipelined one"
        );
        writer.join().unwrap();
    }

    /// Micro-batched scoring is bit-for-bit identical to direct batch
    /// scoring: concurrent single-row `predict_one` calls through one
    /// `MicroBatcher` return exactly what `predict_codes` returns for
    /// the same rows — classes, labels, AND float scores.
    #[test]
    fn micro_batched_equals_direct_bit_for_bit(
        (n_r, xr, fks, xs, ys) in star_instance(),
        row_seeds in proptest::collection::vec(0u32..1_000_000, 1..6),
    ) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let built =
            build_artifact(&star, ModelKind::NaiveBayes, &AdvisorConfig::default(), "prop")
                .unwrap();
        let scorer = Scorer::new(built.artifact);
        let rows: Vec<Vec<u32>> = row_seeds
            .iter()
            .map(|seed| {
                scorer
                    .artifact()
                    .features
                    .iter()
                    .map(|f| seed % f.domain_size as u32)
                    .collect()
            })
            .collect();
        let direct = scorer.predict_codes(&rows).unwrap();

        let batcher = MicroBatcher::new(Duration::from_micros(500));
        let batched: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = rows
                .iter()
                .map(|row| {
                    let (batcher, scorer, row) = (&batcher, &scorer, row.clone());
                    s.spawn(move || batcher.predict_one(scorer, row))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        prop_assert_eq!(direct, batched);
    }
}
