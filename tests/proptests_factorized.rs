//! Property-based parity tests for the factorized learning subsystem:
//! on arbitrary star instances, training through FK indirection must be
//! indistinguishable from training on the materialized join.

use proptest::prelude::*;

use hamlet::factorized::{fit_factorized_logreg, fit_factorized_nb, FactorizedView};
use hamlet::ml::classifier::Classifier;
use hamlet::ml::dataset::Dataset;
use hamlet::ml::logreg::LogisticRegression;
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::ml::CodeSource;
use hamlet::relational::query::{fanout, group_count};
use hamlet::relational::{AttributeTable, Domain, StarSchema, TableBuilder};

/// Strategy: a random one-attribute-table star — `n_r` attribute rows
/// with one foreign feature, `n_s` entity rows with an entity feature,
/// FKs, and ternary labels.
fn star_instance() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>)> {
    (2usize..10).prop_flat_map(|n_r| {
        (
            Just(n_r),
            proptest::collection::vec(0..5u32, n_r), // X_R per RID
            proptest::collection::vec(0..n_r as u32, 20..150), // FK codes
        )
            .prop_flat_map(|(n_r, xr, fks)| {
                let n_s = fks.len();
                (
                    Just(n_r),
                    Just(xr),
                    Just(fks),
                    proptest::collection::vec(0..3u32, n_s), // entity feature
                    proptest::collection::vec(0..3u32, n_s), // labels
                )
            })
    })
}

fn build_star(n_r: usize, xr: Vec<u32>, fks: Vec<u32>, xs: Vec<u32>, ys: Vec<u32>) -> StarSchema {
    let rid = Domain::indexed("RID", n_r).shared();
    let r = TableBuilder::new("R")
        .primary_key("RID", rid.clone(), (0..n_r as u32).collect())
        .feature("xr", Domain::indexed("xr", 5).shared(), xr)
        .build()
        .unwrap();
    let s = TableBuilder::new("S")
        .target("y", Domain::indexed("y", 3).shared(), ys)
        .feature("xs", Domain::indexed("xs", 3).shared(), xs)
        .foreign_key("fk", "R", rid, fks)
        .build()
        .unwrap();
    StarSchema::new(
        s,
        vec![AttributeTable {
            fk: "fk".into(),
            table: r,
        }],
    )
    .unwrap()
}

proptest! {
    /// Naive Bayes: pushed-down counts yield the same model — every
    /// log-posterior agrees within 1e-12 on every row.
    #[test]
    fn nb_log_posteriors_match((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        let n_s = star.n_s();
        let train: Vec<usize> = (0..n_s).step_by(2).collect();
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let nb = NaiveBayes::default();
        let m_mat = nb.fit(&data, &train, &feats);
        let m_fac = fit_factorized_nb(&view, &nb, &train, &feats).unwrap();
        for row in 0..n_s {
            let lp_mat = m_mat.log_posterior(&data, row);
            let lp_fac = m_fac.log_posterior(&view, row);
            for (a, b) in lp_mat.iter().zip(&lp_fac) {
                prop_assert!((a - b).abs() < 1e-12, "row {row}: {a} vs {b}");
            }
        }
    }

    /// Logistic regression: the SGD consumes identical codes in an
    /// identical order, so the weights are *bitwise* equal.
    #[test]
    fn logreg_weights_bitwise_equal((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        let train: Vec<usize> = (0..star.n_s()).collect();
        let feats: Vec<usize> = (0..data.n_features()).collect();
        for lr in [
            LogisticRegression::default().with_epochs(3),
            LogisticRegression::l1(0.01).with_epochs(2),
            LogisticRegression::l2(0.05).with_epochs(2),
        ] {
            let m_mat = lr.fit(&data, &train, &feats);
            let m_fac = fit_factorized_logreg(&view, &lr, &train, &feats);
            prop_assert_eq!(m_mat.weights(), m_fac.weights());
            prop_assert_eq!(m_mat.bias(), m_fac.bias());
        }
    }

    /// The factorized view exposes exactly the materialized layout:
    /// same feature count, names, domains, and codes row by row.
    #[test]
    fn view_codes_match_materialized((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let view = FactorizedView::new(&star).unwrap();
        prop_assert_eq!(data.n_features(), view.n_features());
        for f in 0..data.n_features() {
            prop_assert_eq!(data.feature_name(f), view.feature_name(f));
            prop_assert_eq!(data.feature_domain_size(f), view.feature_domain_size(f));
            for row in 0..star.n_s() {
                prop_assert_eq!(data.code(f, row), view.code(f, row));
            }
        }
    }

    /// The pushed-down aggregates cover every entity row exactly once:
    /// the FK fanout histogram and the (FK, Y) group counts both sum
    /// to n_S.
    #[test]
    fn pushed_down_counts_sum_to_n_s((n_r, xr, fks, xs, ys) in star_instance()) {
        let star = build_star(n_r, xr, fks, xs, ys);
        let n_s = star.n_s() as u64;
        let hist = fanout(star.entity(), "fk").unwrap();
        prop_assert_eq!(hist.iter().sum::<u64>(), n_s);
        let sub = star.entity().project(&["fk", "y"]).unwrap();
        let groups = group_count(&sub, &["fk", "y"]).unwrap();
        prop_assert_eq!(groups.iter().map(|g| g.count).sum::<u64>(), n_s);
    }
}
