//! The "wide CSV" analyst workflow: you received one denormalized CSV
//! (someone already joined everything). Recover the normalized structure
//! and the join-avoidance decision from the data alone:
//!
//! 1. load the CSV into a nominal table;
//! 2. infer single-determinant FDs from the instance;
//! 3. decompose into a star schema (the appendix-C construction);
//! 4. ask the decision rules which recovered joins were unnecessary.
//!
//! Run with: `cargo run --release --example wide_csv_workflow`

use std::fmt::Write as _;

use hamlet::core::planner::join_stats;
use hamlet::core::rules::{DecisionRule, TrRule};
use hamlet::relational::decompose::{decompose_star, infer_single_fds};
use hamlet::relational::{read_csv, ColumnSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Synthesize the "wide CSV an analyst would receive": ratings with
    // user attributes inlined (UserID functionally determines them).
    let n_users = 40usize;
    let n_rows = 4000;
    let mut rng = StdRng::seed_from_u64(11);
    let ages: Vec<u32> = (0..n_users).map(|_| rng.gen_range(0..5)).collect();
    let countries: Vec<u32> = (0..n_users).map(|_| rng.gen_range(0..8)).collect();
    let mut csv = String::from("Stars,UserID,Age,Country,ItemPrice\n");
    for _ in 0..n_rows {
        let u = rng.gen_range(0..n_users);
        let stars = 1 + (ages[u] + rng.gen_range(0..3u32)) % 5;
        let _ = writeln!(
            csv,
            "{stars},u{u},a{},c{},{:.2}",
            ages[u],
            countries[u],
            5.0 + rng.gen::<f64>() * 95.0
        );
    }

    // 1. Load.
    let specs = vec![
        ("Stars", ColumnSpec::target("Stars")),
        ("UserID", ColumnSpec::feature("UserID")),
        ("Age", ColumnSpec::feature("Age")),
        ("Country", ColumnSpec::feature("Country")),
        ("ItemPrice", ColumnSpec::numeric_feature("ItemPrice", 10)),
    ];
    let wide = read_csv("Ratings", &csv, &specs, ',').expect("CSV loads");
    println!(
        "Loaded wide table: {} rows x {} columns",
        wide.n_rows(),
        wide.schema().len()
    );

    // 2. Infer FDs from the instance.
    let fds: Vec<_> = infer_single_fds(&wide, 10)
        .into_iter()
        .filter(|fd| fd.determinant == vec!["UserID".to_string()])
        .collect();
    for fd in &fds {
        println!("Inferred FD: {:?} -> {:?}", fd.determinant, fd.dependents);
    }

    // 3. Decompose (appendix C construction).
    let star = decompose_star(&wide, &fds).expect("star decomposition");
    println!(
        "Recovered star schema: entity ({} features) + {} attribute table(s) of {} rows",
        star.d_s(),
        star.k(),
        star.attributes()[0].n_rows()
    );

    // 4. Decide.
    let stats = join_stats(&star, 0, star.n_s() / 2);
    let rule = TrRule::default();
    println!(
        "TR = {:.1} (tau = {}): {:?}",
        rule.statistic(&stats),
        rule.tau,
        rule.decide(&stats)
    );
    println!(
        "=> The user-attribute columns never needed to be in the CSV at all:\n\
         UserID carries their information, and the tuple ratio says the\n\
         variance risk of relying on it is negligible."
    );
}
