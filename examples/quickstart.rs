//! Quickstart: the paper's running example — predicting customer churn
//! with a `Customers ⋈ Employers` key–foreign-key join — end to end:
//!
//! 1. build the normalized tables;
//! 2. ask the TR and ROR rules whether the join is safe to avoid;
//! 3. train Naive Bayes both ways and verify the rules' prediction.
//!
//! Run with: `cargo run --release --example quickstart`

use hamlet::core::planner::{join_stats, plan, PlanKind};
use hamlet::core::rules::{DecisionRule, RorRule, TrRule};
use hamlet::ml::classifier::{zero_one_error, Classifier};
use hamlet::ml::dataset::Dataset;
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::ml::split::HoldoutSplit;
use hamlet::relational::{AttributeTable, Domain, StarSchema, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- 1. Normalized data -------------------------------------------
    // Employers(EmployerID, Country, Revenue); 400 employers.
    let n_employers = 400usize;
    let n_customers = 40_000usize;
    let mut rng = StdRng::seed_from_u64(1);

    let rid = Domain::indexed("EmployerID", n_employers).shared();
    let country = Domain::indexed("Country", 30).shared();
    let revenue = Domain::indexed("Revenue", 8).shared();
    // Each employer gets a country, a revenue bin, and a hidden
    // "stability" that churn depends on (employer identity matters).
    let countries: Vec<u32> = (0..n_employers).map(|_| rng.gen_range(0..30)).collect();
    let revenues: Vec<u32> = (0..n_employers).map(|_| rng.gen_range(0..8)).collect();
    let stability: Vec<f64> = revenues.iter().map(|&r| r as f64 / 7.0).collect();

    let employers = TableBuilder::new("Employers")
        .primary_key("EmployerID", rid.clone(), (0..n_employers as u32).collect())
        .feature("Country", country, countries)
        .feature("Revenue", revenue, revenues)
        .build()
        .expect("employers table is valid");

    // Customers(CustomerID, Churn, Gender, Age, EmployerID).
    let gender = Domain::from_labels("Gender", &["F", "M"]).shared();
    let age = Domain::indexed("Age", 6).shared();
    let churn = Domain::boolean("Churn").shared();
    let mut genders = Vec::with_capacity(n_customers);
    let mut ages = Vec::with_capacity(n_customers);
    let mut fks = Vec::with_capacity(n_customers);
    let mut churns = Vec::with_capacity(n_customers);
    for _ in 0..n_customers {
        let g = rng.gen_range(0..2u32);
        let a = rng.gen_range(0..6u32);
        let e = rng.gen_range(0..n_employers as u32);
        // Churn probability: older customers at low-stability employers churn.
        let p = 0.15 + 0.4 * (1.0 - stability[e as usize]) + 0.05 * a as f64;
        churns.push(u32::from(rng.gen::<f64>() < p.min(0.95)));
        genders.push(g);
        ages.push(a);
        fks.push(e);
    }
    let customers = TableBuilder::new("Customers")
        .primary_key(
            "CustomerID",
            Domain::indexed("CustomerID", n_customers).shared(),
            (0..n_customers as u32).collect(),
        )
        .target("Churn", churn, churns)
        .feature("Gender", gender, genders)
        .feature("Age", age, ages)
        .foreign_key("EmployerID", "Employers", rid, fks)
        .build()
        .expect("customers table is valid");

    let star = StarSchema::new(
        customers,
        vec![AttributeTable {
            fk: "EmployerID".into(),
            table: employers,
        }],
    )
    .expect("star schema is valid");

    // --- 2. Ask the decision rules ------------------------------------
    let split = HoldoutSplit::paper_protocol(star.n_s(), 42);
    let stats = join_stats(&star, 0, split.train.len());
    println!("Join: Customers ⋈ Employers");
    println!(
        "  n_train = {}, n_R = {}, q_R* = {}, H(Y) = {:.3} bits",
        stats.n_train, stats.n_r, stats.q_r_star, stats.target_entropy_bits
    );
    let tr = TrRule::default();
    let ror = RorRule::default();
    println!(
        "  TR  = {:8.2}  (tau = {:>4})  -> {:?}",
        tr.statistic(&stats),
        tr.tau,
        tr.decide(&stats)
    );
    println!(
        "  ROR = {:8.4}  (rho = {:>4})  -> {:?}",
        ror.statistic(&stats),
        ror.rho,
        ror.decide(&stats)
    );

    // --- 3. Verify by training both ways ------------------------------
    let nb = NaiveBayes::default();
    let mut errors = Vec::new();
    for kind in [PlanKind::JoinAll, PlanKind::NoJoins] {
        let p = plan(&star, kind, &tr, split.train.len());
        let table = p.materialize(&star).expect("plan materializes");
        let data = Dataset::from_table(&table);
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let model = nb.fit(&data, &split.train, &feats);
        let err = zero_one_error(&model, &data, &split.test);
        println!(
            "  {:8} -> {} features, test error {:.4}",
            kind.name(),
            feats.len(),
            err
        );
        errors.push(err);
    }
    let diff = (errors[1] - errors[0]).abs();
    println!(
        "  |NoJoins - JoinAll| = {:.4} -> avoiding the join was {}",
        diff,
        if diff < 0.01 {
            "SAFE, as predicted"
        } else {
            "risky"
        }
    );
}
