//! Source selection (Sec 5.4 / Sec 7): analysts with a dozen candidate
//! tables "were interested in our TR rule because it helps them quickly
//! decide which tables to start with". This example ranks every
//! attribute table across all seven datasets by its rule statistics —
//! the metadata-only triage an analyst would run before any joins.
//!
//! Run with: `cargo run --release --example source_selection`

use hamlet::core::planner::join_stats;
use hamlet::core::rules::{DecisionRule, RorRule, TrRule};
use hamlet::datagen::realistic::DatasetSpec;

fn main() {
    let scale = 0.05;
    let seed = 3;
    let mut rows = Vec::new();
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        for (i, at) in spec.tables.iter().enumerate() {
            let stats = join_stats(&g.star, i, n_train);
            rows.push((
                format!("{}.{}", spec.name, at.table),
                TrRule::default().statistic(&stats),
                RorRule::default().statistic(&stats),
                TrRule::default().decide(&stats).is_avoid(),
                stats.fk_closed,
            ));
        }
    }
    // Highest tuple ratio first: the safest tables to *skip*.
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "{:<28} {:>10} {:>8}  {:<18} note",
        "Table", "TR", "ROR", "verdict"
    );
    for (name, tr, ror, avoid, closed) in rows {
        println!(
            "{name:<28} {tr:>10.2} {ror:>8.3}  {:<18} {}",
            if !closed {
                "must join (open)"
            } else if avoid {
                "safe to avoid"
            } else {
                "join first"
            },
            if avoid && closed {
                "skip it; the FK already carries its information"
            } else {
                ""
            }
        );
    }
    println!(
        "\nTables at the top contribute least per byte joined: defer or skip them.\n\
         Tables at the bottom (small TR / high ROR) are where joins actually pay."
    );
}
