//! Appendix E demo: why Tree-Augmented Naive Bayes can be *less*
//! accurate than plain Naive Bayes on KFK-joined data — the FD
//! `FK -> X_R` drags every foreign feature under the FK in TAN's
//! dependency tree, so they participate only through Kronecker-delta
//! conditionals.
//!
//! Run with: `cargo run --release --example tan_vs_nb`

use hamlet::experiments::tan_appendix::compare;

fn main() {
    for (n_s, n_r) in [(1000usize, 40usize), (4000, 40), (4000, 200)] {
        let cmp = compare(n_s, n_r, 4, 2016);
        println!("n_S = {n_s}, |D_FK| = {n_r}:");
        println!("  Naive Bayes test error: {:.4}", cmp.nb_error);
        println!("  TAN test error:         {:.4}", cmp.tan_error);
        println!(
            "  foreign features parented by FK: {}/{}",
            cmp.xr_under_fk, cmp.xr_total
        );
        for (f, p) in &cmp.tree {
            println!("    {f:<6} <- {p}");
        }
        println!();
    }
    println!(
        "The FD FK -> X_R maximizes I(X_r; FK | Y), so TAN hangs every foreign\n\
         feature off the FK; their conditionals P(X_r | FK, Y) are deterministic\n\
         deltas that add parameters without adding signal."
    );
}
