//! A miniature version of the paper's Monte-Carlo simulation study
//! (Sec 4.1): measure how avoiding a KFK join affects test error and net
//! variance as the foreign-key domain grows, using the exact Domingos
//! bias/variance decomposition.
//!
//! Run with: `cargo run --release --example simulation_study [n_s]`

use hamlet::datagen::sim::{Scenario, SimulationConfig};
use hamlet::datagen::skew::FkSkew;
use hamlet::experiments::{simulate, FeatureSetChoice, MonteCarloOpts};

fn main() {
    let n_s: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let opts = MonteCarloOpts {
        train_sets: 40,
        repeats: 4,
        base_seed: 2016,
    };
    println!(
        "Scenario 1 (lone X_r is the true concept), p = 0.1, n_S = {n_s}; {} train sets x {} worlds",
        opts.train_sets, opts.repeats
    );
    println!(
        "{:>7} | {:>22} | {:>22} | {:>22}",
        "|D_FK|", "UseAll err (netvar)", "NoJoin err (netvar)", "NoFK err (netvar)"
    );
    for n_r in [10usize, 50, 100, 200, 400] {
        if n_r * 2 >= n_s {
            continue;
        }
        let cfg = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 4,
            n_r,
            p: 0.1,
            skew: FkSkew::Uniform,
        };
        let est = simulate(&cfg, n_s, &opts);
        print!("{n_r:>7} |");
        for (i, _) in FeatureSetChoice::ALL.iter().enumerate() {
            print!(
                " {:>12.4} ({:.4}) |",
                est[i].test_error, est[i].net_variance
            );
        }
        println!();
    }
    println!(
        "\nReading: NoJoin (the FK as representative) drifts away from the 0.1 noise floor\n\
         as |D_FK| grows — a pure variance effect, exactly the paper's Figure 3(B)."
    );
}
