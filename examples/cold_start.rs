//! Cold start (Sec 2.1): between periodic model revisions, new entities
//! appear whose FK values are outside the closed domain. The standard
//! practice the paper cites — an "Others" placeholder record — end to
//! end: revise the attribute table, remap incoming FKs, keep scoring.
//!
//! Run with: `cargo run --release --example cold_start`

use hamlet::datagen::realistic::DatasetSpec;
use hamlet::ml::classifier::{zero_one_error, Classifier};
use hamlet::ml::dataset::Dataset;
use hamlet::ml::naive_bayes::NaiveBayes;
use hamlet::relational::{kfk_join, AttributeDef, Domain, DomainRevision, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Take MovieLens' Movies table as the closed-domain dimension.
    let g = DatasetSpec::movielens().generate(0.01, 9);
    let movies = &g.star.attributes()[0];
    println!(
        "Revision time: Movies has {} rows; adding an 'Others' record.",
        movies.n_rows()
    );
    let defaults = vec![0u32; movies.n_features()];
    let rev = DomainRevision::new(movies, &defaults).expect("revision builds");

    // A month later: 30% of incoming ratings reference movies added
    // after the revision.
    let mut rng = StdRng::seed_from_u64(4);
    let n = 5_000usize;
    let raw: Vec<u32> = (0..n)
        .map(|_| {
            if rng.gen::<f64>() < 0.3 {
                movies.n_rows() as u32 + rng.gen_range(0..500u32)
            } else {
                rng.gen_range(0..movies.n_rows() as u32)
            }
        })
        .collect();
    println!(
        "Incoming batch: {:.1}% cold-start rate.",
        100.0 * rev.cold_start_rate(&raw)
    );

    // Remap, join, train, score — no panics, no dangling keys.
    let fk = rev.remap_fk(&raw);
    let y: Vec<u32> = raw.iter().map(|&v| v % 5).collect();
    let entity = TableBuilder::new("Ratings")
        .target("Stars", Domain::indexed("Stars", 5).shared(), y)
        .column(
            AttributeDef::foreign_key("MovieID", "Movies"),
            fk.domain().clone(),
            fk.codes().to_vec(),
        )
        .build()
        .expect("entity builds");
    let joined = kfk_join(&entity, "MovieID", &rev.attribute.table).expect("join works");
    let data = Dataset::from_table(&joined);
    let rows: Vec<usize> = (0..n).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let model = NaiveBayes::default().fit(&data, &rows[..n / 2], &feats);
    println!(
        "Model trained across the revision boundary; holdout error {:.4}.",
        zero_one_error(&model, &data, &rows[n / 2..])
    );
    println!(
        "When the cold-start rate gets high, re-run the advisor: the widened\n\
         domain changes |D_FK| and therefore the TR/ROR verdicts."
    );
}
