//! The join advisor on all seven datasets: per-join statistics, both
//! rules' verdicts with plain-language explanations, skew diagnostics,
//! and the recommended plan — the "suggestions for analysts" integration
//! Sec 5.4 envisions.
//!
//! Run with: `cargo run --release --example join_advisor`

use hamlet::core::advisor::{advise, AdvisorConfig};
use hamlet::datagen::realistic::DatasetSpec;
use hamlet::relational::profile_star;

fn main() {
    let scale = 0.05;
    let seed = 1;
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let report =
            advise(&g.star, g.star.n_s() / 2, &AdvisorConfig::default()).expect("valid catalog");
        println!("=== {} ===", spec.name);
        print!("{}", report.render());
        let plan = report.plan();
        println!(
            "Recommended input: entity table{}\n",
            if plan.joined.is_empty() {
                " only (no joins!)".to_string()
            } else {
                format!(
                    " + {}",
                    plan.joined
                        .iter()
                        .map(|&i| spec.tables[i].table)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        );
    }

    // Deep-dive: profile one schema the way the advisor sees it.
    let g = DatasetSpec::walmart().generate(0.01, seed);
    println!("=== Walmart profile (scale 0.01) ===");
    print!("{}", profile_star(&g.star).render());
}
