//! Full analyst pipeline on a synthetic MovieLens1M-shaped dataset:
//! generate the normalized star schema, compare the JoinAll and JoinOpt
//! plans under all four feature-selection methods, and report errors,
//! selected features, and wall-clock speedups — the workflow behind the
//! paper's Figure 7.
//!
//! Run with: `cargo run --release --example feature_selection_pipeline`

use hamlet::core::planner::{plan, PlanKind};
use hamlet::core::rules::TrRule;
use hamlet::datagen::realistic::DatasetSpec;
use hamlet::experiments::{prepare_plan, run_method};
use hamlet::fs::Method;

fn main() {
    let scale = 0.05;
    let seed = 7;
    let spec = DatasetSpec::movielens();
    println!(
        "Dataset: {} at scale {scale} (full-scale n_S = {})",
        spec.name, spec.n_s
    );
    let g = spec.generate(scale, seed);
    let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;

    let rule = TrRule::default();
    let join_all = plan(&g.star, PlanKind::JoinAll, &rule, n_train);
    let join_opt = plan(&g.star, PlanKind::JoinOpt, &rule, n_train);
    println!(
        "JoinOpt avoided {} of {} joins:",
        join_opt.avoided(&g.star).len(),
        g.star.k()
    );
    for d in &join_opt.decisions {
        println!("  {} (fk {}): {:?}", d.table, d.fk, d.decision);
    }

    let prepared_all = prepare_plan(&g.star, join_all, seed).expect("synthetic star materializes");
    let prepared_opt = prepare_plan(&g.star, join_opt, seed).expect("synthetic star materializes");
    println!(
        "\n{:<20} {:>12} {:>12} {:>9} {:>8}  selected (JoinOpt)",
        "Method", "JoinAll err", "JoinOpt err", "speedup", "fits"
    );
    for method in Method::ALL {
        let a = run_method(&prepared_all, method);
        let o = run_method(&prepared_opt, method);
        let speedup = a.selection_time.as_secs_f64() / o.selection_time.as_secs_f64().max(1e-9);
        println!(
            "{:<20} {:>12.4} {:>12.4} {:>8.1}x {:>8}  {:?}",
            method.name(),
            a.test_error,
            o.test_error,
            speedup,
            o.selection.model_fits,
            o.selected_names
        );
    }
    println!("\nBoth errors should match closely: MovieLens1M's joins are safe to avoid.");
}
