//! The `hamlet` CLI. See `hamlet::cli` for subcommands and `hamlet help`
//! for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hamlet::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
