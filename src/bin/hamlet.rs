//! The `hamlet` CLI. See `hamlet::cli` for subcommands and `hamlet help`
//! for usage.

use hamlet_obs::CountingAlloc;

// Counting allocator so `--metrics` reports a real
// `hamlet_peak_alloc_bytes`; costs two relaxed atomic ops per
// (de)allocation.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    hamlet_obs::alloc::install_meter(&ALLOC);
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hamlet::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
