//! # hamlet
//!
//! A production-quality Rust reproduction of
//! *"To Join or Not to Join? Thinking Twice about Joins before Feature
//! Selection"* (Kumar, Naughton, Patel, Zhu — SIGMOD 2016).
//!
//! Analysts working over normalized schemas join attribute tables to
//! gather features before running feature selection. Because a foreign
//! key functionally determines all the features it brings in, such joins
//! can often be **avoided safely**: drop the foreign features a priori
//! and let the key act as their representative. This crate bundles the
//! full system:
//!
//! * [`relational`] — columnar star-schema substrate with KFK joins;
//! * [`ml`] — Naive Bayes, logistic regression (L1/L2), TAN, metrics,
//!   bias/variance decomposition, information theory;
//! * [`fs`] — forward/backward wrappers, MI/IGR filters, embedded L1/L2;
//! * [`core`] — the paper's contribution: VC dimensions, the worst-case
//!   ROR, the tuple ratio, the thresholded decision rules, and the
//!   JoinAll/JoinOpt/NoJoins/JoinAllNoFK planner;
//! * [`factorized`] — factorized learning: JoinAll accuracy at
//!   NoJoins-like memory, training through FK indirection with zero
//!   join materialization;
//! * [`trees`] — CART decision trees and gradient boosting over
//!   categorical codes, factorized over the star schema via
//!   pushed-down count aggregates (the JoinBoost recipe);
//! * [`discovery`] — schema discovery: mine FK edges and multi-table
//!   FDs from raw CSVs via per-column sketches and factorized FD
//!   verification, synthesizing the manifest the advisor consumes;
//! * [`datagen`] — simulation worlds, FK skew, and synthetic analogs of
//!   the paper's seven datasets;
//! * [`experiments`] — one module per paper table/figure, with
//!   cell-level checkpoint/resume for the Monte-Carlo runs;
//! * [`chaos`] — fault injection: seeded corpus corruption and named
//!   failpoints (`HAMLET_FAILPOINTS`) for resilience testing.
//!
//! ## Quickstart
//!
//! ```
//! use hamlet::core::rules::{DecisionRule, JoinStats, TrRule};
//!
//! // Should we join Customers with Employers before feature selection?
//! let stats = JoinStats {
//!     n_train: 100_000,        // training examples
//!     n_r: 1_200,              // employers (= |D_FK|)
//!     q_r_star: 2,             // smallest employer-feature domain
//!     fk_closed: true,         // EmployerID domain is closed
//!     target_entropy_bits: 0.97,
//! };
//! let decision = TrRule::default().decide(&stats);
//! assert!(decision.is_avoid()); // TR = 83 >= 20: skip the join
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/experiments`
//! for the per-figure reproduction harness.

pub mod cli;

pub use hamlet_chaos as chaos;
pub use hamlet_core as core;
pub use hamlet_datagen as datagen;
pub use hamlet_discovery as discovery;
pub use hamlet_experiments as experiments;
pub use hamlet_factorized as factorized;
pub use hamlet_fs as fs;
pub use hamlet_ml as ml;
pub use hamlet_obs as obs;
pub use hamlet_relational as relational;
pub use hamlet_serve as serve;
pub use hamlet_trees as trees;
