//! The `hamlet` command-line tool.
//!
//! Subcommands:
//!
//! * `advise --dataset <name> [--scale S] [--family F] [--relaxed]` —
//!   run the join advisor on one of the seven built-in synthetic
//!   datasets with family-specific thresholds (`--strategy factorize`
//!   recommends factorized execution for joins that must be kept);
//! * `train --dataset <name> [--scale S] [--model nb|logreg|tree|gbt]
//!   [--strategy factorize|materialize]` — train a classifier over the
//!   star schema; the factorize path never materializes a join and
//!   reports parity against the materialized reference;
//! * `retune [--family F] [...]` — Monte-Carlo revalidation of the
//!   per-family join-avoidance thresholds over the simulation grid;
//! * `profile --dataset <name> [--scale S]` — print the star-schema
//!   profile (row counts, domains, entropies, TR/q_R*);
//! * `csv-advise <file.csv> --target <col> [--numeric col:bins]...
//!   [--skip col]... [--min-distinct N]` — load a wide (denormalized)
//!   CSV, infer functional dependencies, decompose into a star schema,
//!   and advise which recovered joins were unnecessary;
//! * `advise-files <schema.manifest>` — load a normalized multi-table
//!   dataset from CSVs via a manifest and advise on its joins;
//! * `simulate --scenario <name> [...]` — run one point of the paper's
//!   Monte-Carlo simulation; `--resume` checkpoints completed cells
//!   under `results/checkpoints/` so a crashed run picks up where it
//!   left off (bit-for-bit).
//!
//! The module is process-free (string in, string out) so the integration
//! suite can drive it directly; `src/bin/hamlet.rs` is a thin shell.

use std::fmt::Write as _;
use std::time::Instant;

use hamlet_core::advisor::{advise, AdvisorConfig};
use hamlet_core::rules::{RorRule, TrRule, RELAXED_RHO, RELAXED_TAU};
use hamlet_core::ModelFamily;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_discovery::{discover_dir, DiscoveryConfig, DiscoveryReport, FdScope};
use hamlet_factorized::{fit_factorized_logreg, fit_factorized_nb, FactorizedView};
use hamlet_ml::{zero_one_error, Classifier, Dataset, LogisticRegression, NaiveBayes};
use hamlet_obs::RunJournal;
use hamlet_relational::decompose::{decompose_star, infer_single_fds, select_compatible_fds};
use hamlet_relational::{
    lint_star, profile_star, read_csv, ColumnSpec, DirtyPolicy, FkPolicy, LintConfig, LoadPolicy,
    Manifest, StarLoad, StarSchema, TablePolicy,
};
use hamlet_serve::{
    artifact, build_artifact, build_artifact_with_availability, ModelKind, Scorer, ServerConfig,
};
use hamlet_trees::{fit_factorized_gbt, fit_factorized_tree, CartTree, Gbt};

/// CLI error: a user-facing message (exit code 2 in the binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
hamlet — join avoidance for feature selection over normalized data

USAGE:
  hamlet advise --dataset <name> [--scale S] [--family F] [--relaxed] [--markdown] [--strategy factorize|materialize]
  hamlet train (--dataset <name> [--scale S] | --discover DIR) [--model nb|logreg|tree|gbt] [--strategy factorize|materialize]
  hamlet profile --dataset <name> [--scale S]
  hamlet csv-advise <file.csv> --target <col> [--numeric col:bins]... [--skip col]... [--min-distinct N]
  hamlet advise-files (<schema.manifest> | --discover DIR) [--family F] [--relaxed] [--on-dirty P] [--on-dangling-fk P] [--allow-degraded]
  hamlet discover <dir> [--target col] [--family F] [--relaxed] [--strategy factorize|materialize]
                  [--min-containment X] [--max-violations N] [--sketch-size N] [--on-dirty P]
                  [--out FILE] [--report FILE]
  hamlet simulate [--scenario lone|all|entity-fk] [--n-s N] [--n-r N]
                  [--train-sets T] [--repeats R] [--seed S] [--resume] [--out FILE]
  hamlet retune [--family F] [--n-s N] [--train-sets T] [--repeats R] [--seed S]
  hamlet save-model (--dataset <name> [--scale S] | --manifest FILE [--allow-degraded] | --discover DIR)
                    --out FILE [--model nb|logreg|tan|tree|gbt] [--relaxed]
  hamlet predict --model FILE --in FILE [--out FILE]
  hamlet serve --model FILE [--model ID=FILE]... [--port N] [--threads N] [--queue N]
               [--max-requests-per-conn N] [--idle-ms MS] [--batch-window-us US] [--fallback]
  hamlet reload [--port N]
  hamlet datasets
  hamlet help

Model serving:
  save-model runs the advisor, fits the chosen family over the advisor-
  approved view (avoided joins stay avoided; unseen FK values get a
  trained Others bucket), and writes a versioned, checksummed artifact.
  predict scores a JSON file of rows offline. serve answers
  GET /healthz, GET /metrics, GET /models, POST /predict, POST /reload,
  and per-model /models/<id>/predict + /models/<id>/healthz over
  HTTP/1.1 keep-alive (pipelining-safe; --max-requests-per-conn caps one
  connection, 0 = unlimited; --idle-ms closes silent keep-alive
  connections) until SIGTERM/ctrl-c, then drains in-flight requests and
  exits 0; a full request queue is shed with 503. SIGHUP or
  `hamlet reload` hot-swaps every disk-backed model atomically — a
  failed reload keeps the old models serving. Concurrent single-row
  predicts within --batch-window-us (else HAMLET_BATCH_WINDOW_US, else
  0 = off) are micro-batched, bit-for-bit identical to unbatched
  scoring. Worker count: --threads, else HAMLET_THREADS, else available
  parallelism.

Model families (--family, --model):
  naive_bayes (nb), logistic_regression (logreg), tan, tree (cart),
  gbt (boosted). The advisor quotes family-specific (rho, tau)
  thresholds — tree families carry Monte-Carlo re-tuned, more
  conservative values; retune re-derives them from simulation and
  prints the per-family evidence grid. GBT training reads
  HAMLET_GBT_ROUNDS (default 20) for the boosting-round count.

Schema discovery (discover; --discover DIR on advise-files, train, save-model):
  discover mines a directory of raw CSVs with no manifest: per-column
  fingerprint sketches propose FK edges by containment, the implied FDs
  FK -> X_R are verified factorized (count tables over per-table
  partitions — no join is ever materialized), and a validated manifest
  plus a JSON evidence report (every accepted AND rejected candidate)
  are written next to the corpus (--out / --report override).
  --min-containment (else HAMLET_FD_MIN_CONTAINMENT, default 1.0) sets
  the FK inclusion threshold; --max-violations (else
  HAMLET_FD_MAX_VIOLATIONS, default 0) tolerates dirty rows — FDs
  holding on all but that many rows still qualify, each exception
  journaled; --sketch-size (else HAMLET_SKETCH_SIZE, default 65536)
  caps per-column sketch memory. --discover DIR on advise-files, train,
  and save-model runs the same mining inline, so
  `discover` -> `advise` -> `train --strategy factorize` works with
  zero declared metadata.

Dirty-data policies (advise-files, save-model --manifest):
  --on-dirty abort|quarantine[:N]   bad CSV rows: fail fast (default) or set
                                    aside up to N rows per table
  --on-dangling-fk abort|drop|others  entity rows whose FK matches no row:
                                    fail fast (default), drop them, or map
                                    them to an injected Others record
  --allow-degraded                  a declared-but-unreadable attribute table
                                    becomes an FK-only surrogate (cold-start
                                    Others semantics) instead of aborting; the
                                    worst-case ROR bound is journaled and the
                                    artifact decision is marked degraded

Degraded-mode serving:
  serve --fallback answers scoring faults (and requests against degraded
  artifacts) from the model's prior-only surrogate instead of 5xx: responses
  carry an X-Hamlet-Degraded: true header and a \"degraded\":true field, and
  hamlet_serve_degraded_total counts them. A per-model circuit breaker trips
  after HAMLET_BREAKER_THRESHOLD consecutive faults (default 5) and probes
  full scoring every HAMLET_BREAKER_PROBE-th request (default 8) until one
  succeeds. Artifact loads retry transient IO errors with exponential backoff
  (HAMLET_RETRY_ATTEMPTS / HAMLET_RETRY_BASE_MS / HAMLET_RETRY_MAX_MS).
  Without --fallback a scoring fault keeps the legacy fail-fast behavior.

Checkpointing (simulate):
  --resume   persist each completed (repeat, train-set) cell atomically under
             results/checkpoints/ (or HAMLET_CHECKPOINT_DIR) and reuse cells
             from an earlier run of the same configuration; a rerun after a
             crash resumes bit-for-bit
  --out FILE write the report to FILE via the atomic writer (tmp+fsync+rename)

Observability (any subcommand):
  --trace    print the span tree (hierarchical wall-clock timings)
  --metrics  print Prometheus-style metrics (rows joined, fits, cells avoided, peak bytes)
Either flag also appends a JSONL entry to the run journal
(results/journal/runs.jsonl; override the directory with HAMLET_JOURNAL_DIR).

Built-in datasets: Walmart, Expedia, Flights, Yelp, MovieLens1M, LastFM, BookCrossing.
";

/// Finds `flag`'s value. Strict where the old version was silently
/// forgiving: a flag that is last on the line, followed by another
/// `--flag`, or given twice is an error, not `None` (which used to make
/// `train --scale` quietly run at the default scale).
fn parse_flag<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
    let mut found: Option<&'a str> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] != flag {
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .map(String::as_str)
            .filter(|v| !v.starts_with("--"))
            .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
        if found.is_some() {
            return Err(CliError(format!("{flag} given more than once")));
        }
        found = Some(value);
        i += 2;
    }
    Ok(found)
}

fn parse_multi<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == flag {
            out.push(args[i + 1].as_str());
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn dataset_arg(args: &[String]) -> Result<(DatasetSpec, f64), CliError> {
    let name = parse_flag(args, "--dataset")?
        .ok_or_else(|| CliError("missing --dataset <name>".into()))?;
    let spec = DatasetSpec::by_name(name).ok_or_else(|| {
        CliError(format!(
            "unknown dataset '{name}'; run `hamlet datasets` for the list"
        ))
    })?;
    let scale: f64 = parse_flag(args, "--scale")?
        .map(|s| {
            s.parse()
                .map_err(|_| CliError(format!("bad --scale '{s}'")))
        })
        .transpose()?
        .unwrap_or(0.05);
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(CliError(format!("--scale must be in (0, 1], got {scale}")));
    }
    Ok((spec, scale))
}

/// Parses the degradation-policy flags shared by file-loading
/// subcommands: `--on-dirty abort|quarantine[:N]`,
/// `--on-dangling-fk abort|drop|others`, and `--allow-degraded`
/// (tolerate unreadable attribute tables via FK-only surrogates).
/// Everything defaults to strict abort.
fn load_policy_args(args: &[String]) -> Result<LoadPolicy, CliError> {
    let on_dirty = match parse_flag(args, "--on-dirty")? {
        None => DirtyPolicy::Abort,
        Some(v) => DirtyPolicy::parse(v).ok_or_else(|| {
            CliError(format!(
                "--on-dirty must be 'abort', 'quarantine', or 'quarantine:N', got '{v}'"
            ))
        })?,
    };
    let on_dangling_fk = match parse_flag(args, "--on-dangling-fk")? {
        None => FkPolicy::Abort,
        Some(v) => FkPolicy::parse(v).ok_or_else(|| {
            CliError(format!(
                "--on-dangling-fk must be 'abort', 'drop', or 'others', got '{v}'"
            ))
        })?,
    };
    let on_missing_table = if args.iter().any(|a| a == "--allow-degraded") {
        TablePolicy::AllowDegraded
    } else {
        TablePolicy::Require
    };
    Ok(LoadPolicy {
        on_dirty,
        on_dangling_fk,
        on_missing_table,
    })
}

/// Renders the degradation report of a policy-driven load ("" when the
/// load was clean).
fn render_degradations(load: &StarLoad) -> String {
    if !load.degraded() {
        return String::new();
    }
    let mut out = String::from("\nDegradations applied during load:\n");
    for q in load.quarantine.iter().filter(|q| !q.rows.is_empty()) {
        let _ = writeln!(
            out,
            "  table '{}': quarantined {} of {} rows",
            q.table,
            q.rows.len(),
            q.total_rows
        );
        for r in q.rows.iter().take(5) {
            let _ = writeln!(out, "    row {}: {}", r.row, r.reason);
        }
        if q.rows.len() > 5 {
            let _ = writeln!(out, "    ... and {} more", q.rows.len() - 5);
        }
    }
    if !load.dropped_rows.is_empty() {
        let _ = writeln!(
            out,
            "  entity: dropped {} row(s) with dangling foreign keys",
            load.dropped_rows.len()
        );
    }
    if !load.others_rows.is_empty() {
        let _ = writeln!(
            out,
            "  entity: remapped {} row(s) to the Others record",
            load.others_rows.len()
        );
    }
    out
}

/// Parses `--strategy factorize|materialize` into "factorize?" —
/// `None` when the flag is absent.
fn strategy_arg(args: &[String]) -> Result<Option<bool>, CliError> {
    match parse_flag(args, "--strategy")? {
        None => Ok(None),
        Some("factorize") => Ok(Some(true)),
        Some("materialize") => Ok(Some(false)),
        Some(other) => Err(CliError(format!(
            "--strategy must be 'factorize' or 'materialize', got '{other}'"
        ))),
    }
}

/// Parses the discovery knobs shared by `discover` and the `--discover`
/// variants of `advise-files`/`train`/`save-model`: the environment is
/// read first (strict — a malformed knob is an error), then explicit
/// flags override it.
fn discovery_args(rest: &[String]) -> Result<DiscoveryConfig, CliError> {
    let mut cfg = DiscoveryConfig::from_env().map_err(|e| CliError(e.to_string()))?;
    if let Some(v) = parse_flag(rest, "--min-containment")? {
        let x: f64 = v
            .parse()
            .map_err(|_| CliError(format!("bad --min-containment '{v}'")))?;
        if !(x > 0.0 && x <= 1.0) {
            return Err(CliError(format!(
                "--min-containment must be in (0, 1], got {x}"
            )));
        }
        cfg.min_containment = x;
    }
    if let Some(v) = parse_flag(rest, "--max-violations")? {
        cfg.max_violations = v
            .parse()
            .map_err(|_| CliError(format!("bad --max-violations '{v}'")))?;
    }
    if let Some(v) = parse_flag(rest, "--sketch-size")? {
        let n: usize = v
            .parse()
            .map_err(|_| CliError(format!("bad --sketch-size '{v}'")))?;
        if n == 0 {
            return Err(CliError("--sketch-size must be positive".into()));
        }
        cfg.sketch_size = n;
    }
    if let Some(v) = parse_flag(rest, "--on-dirty")? {
        cfg.on_dirty = DirtyPolicy::parse(v).ok_or_else(|| {
            CliError(format!(
                "--on-dirty must be 'abort', 'quarantine', or 'quarantine:N', got '{v}'"
            ))
        })?;
    }
    if let Some(t) = parse_flag(rest, "--target")? {
        cfg.target = Some(t.to_string());
    }
    Ok(cfg)
}

/// Mines `dir` and loads the discovered star back from the same corpus;
/// the star the advisor sees is exactly what the synthesized manifest
/// describes, not a private in-memory variant. The load reuses the
/// mining dirty-row policy: a schema accepted within the violation
/// tolerance (e.g. a duplicated key row) must survive its own load, with
/// the offending rows quarantined and any FKs they strand mapped to the
/// paper's `Others` record rather than aborting.
fn discover_star(
    dir: &std::path::Path,
    rest: &[String],
) -> Result<(hamlet_discovery::Discovery, StarSchema), CliError> {
    let cfg = discovery_args(rest)?;
    let d = discover_dir(dir, &cfg).map_err(|e| CliError(e.to_string()))?;
    let policy = LoadPolicy {
        on_dirty: cfg.on_dirty,
        on_dangling_fk: match cfg.on_dirty {
            DirtyPolicy::Abort => FkPolicy::Abort,
            DirtyPolicy::Quarantine { .. } => FkPolicy::MapToOthers,
        },
        on_missing_table: TablePolicy::Require,
    };
    let load = d
        .manifest
        .load_policy(dir, &policy)
        .map_err(|e| CliError(e.to_string()))?;
    for q in load.quarantine.iter().filter(|q| !q.rows.is_empty()) {
        hamlet_obs::record_warning(format!(
            "discover: table '{}': quarantined {} of {} rows loading the discovered star",
            q.table,
            q.rows.len(),
            q.total_rows
        ));
    }
    if !load.others_rows.is_empty() {
        hamlet_obs::record_warning(format!(
            "discover: {} entity row(s) remapped to Others (FKs stranded by quarantined key rows)",
            load.others_rows.len()
        ));
    }
    Ok((d, load.star))
}

/// Renders a human summary of a discovery report: the mined star shape
/// plus candidate counts, so the console shows where the evidence lives
/// without dumping the full JSON.
fn render_discovery(report: &DiscoveryReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Discovered star over {} table(s): entity '{}', target '{}'",
        report.tables.len(),
        report.entity,
        report.target
    );
    let _ = writeln!(out, "  ({})", report.entity_reason);
    for e in report.accepted_fks() {
        let _ = writeln!(
            out,
            "  fk {} -> {} (containment {:.4}, {})",
            e.fk_column,
            e.key_file,
            e.containment,
            if e.closed { "closed" } else { "open" }
        );
    }
    let (fd_ok, fd_no) = report
        .fds
        .iter()
        .fold((0usize, 0usize), |(a, r), f| match f.accepted {
            true => (a + 1, r),
            false => (a, r + 1),
        });
    let _ = writeln!(
        out,
        "FDs verified without joins: {fd_ok} accepted, {fd_no} rejected (tolerance {})",
        report.max_violations
    );
    for f in report.accepted_fds().filter(|f| f.violations > 0) {
        let _ = writeln!(
            out,
            "  {}: {} -> {} held with {} violation(s) journaled",
            f.table, f.determinant, f.dependent, f.violations
        );
    }
    if report
        .fds
        .iter()
        .any(|f| f.scope == FdScope::Entity && f.accepted)
    {
        let _ = writeln!(
            out,
            "  entity-side: {}",
            report.entity_analysis.decompose_outcome
        );
    }
    let _ = writeln!(
        out,
        "Candidates examined: {} key(s), {} FK edge(s), {} FD check(s); all evidence in the report",
        report.keys.len(),
        report.fks.len(),
        report.fds.len()
    );
    for u in &report.unplaced {
        let _ = writeln!(out, "  warning: table '{}' left out: {}", u.table, u.reason);
    }
    out
}

/// The `discover` subcommand: mine a manifest-less directory of CSVs,
/// persist the synthesized manifest and the evidence report, then run
/// the advisor over the discovered star.
fn discover_cmd(rest: &[String]) -> Result<String, CliError> {
    let dir_arg = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError("missing <dir> with the corpus CSVs".into()))?;
    let dir = std::path::Path::new(dir_arg);
    let (d, star) = discover_star(dir, rest)?;
    let manifest_path = parse_flag(rest, "--out")?
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dir.join("discovered.manifest"));
    hamlet_obs::atomic_write(&manifest_path, d.manifest_text.as_bytes())
        .map_err(|e| CliError(format!("cannot write {}: {e}", manifest_path.display())))?;
    let report_path = parse_flag(rest, "--report")?
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dir.join("discovery-report.json"));
    d.report
        .write(&report_path)
        .map_err(|e| CliError(format!("cannot write {}: {e}", report_path.display())))?;

    let relaxed = rest.iter().any(|a| a == "--relaxed");
    let family = family_arg(rest)?;
    hamlet_obs::set_model_family(family.name());
    let mut config = advisor_config(relaxed, family);
    config.recommend_factorize = strategy_arg(rest)?.unwrap_or(false);
    let report = advise(&star, star.n_s() / 2, &config).map_err(|e| CliError(e.to_string()))?;
    Ok(format!(
        "{}\n{}\nwrote {} and {}\n",
        render_discovery(&d.report),
        report.render(),
        manifest_path.display(),
        report_path.display()
    ))
}

/// Runs one CLI invocation; `args` excludes the program name.
///
/// `--trace` and `--metrics` work on every subcommand: they append the
/// span tree / Prometheus metrics to the output, and either one also
/// appends a JSONL entry to the run journal (see [`RunJournal::dir`]).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    if !(trace || metrics) {
        return dispatch(args);
    }

    if trace {
        hamlet_obs::set_tracing(true);
    }
    let result = dispatch(args);
    hamlet_obs::set_tracing(false);
    let spans = hamlet_obs::drain_spans();

    let mut obs = String::new();
    if trace {
        obs.push_str(&hamlet_obs::render_span_tree(&spans));
        obs.push('\n');
    }
    // Peak-memory gauges are set unconditionally so they land in the
    // run journal's metric snapshot even without --metrics.
    // `peak_alloc` reads 0 when the running binary did not install the
    // counting allocator (e.g. the test harness); `hamlet` itself does.
    let peak = hamlet_obs::alloc::peak_bytes().unwrap_or(0);
    hamlet_obs::metrics::gauge("hamlet_peak_alloc_bytes").set_max(peak as u64);
    // Kernel-reported high-water RSS: the honest number for "did the
    // run fit HAMLET_MEM_BUDGET_MB" (heap + stacks + mapped).
    let rss = hamlet_obs::alloc::peak_rss_bytes().unwrap_or(0);
    hamlet_obs::metrics::gauge("hamlet_peak_rss_bytes").set_max(rss as u64);

    // The journal is appended before metrics render so a write failure
    // shows up as hamlet_journal_write_failures_total in this very
    // invocation's --metrics output, not just on stderr.
    let outcome = match &result {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("error: {e}"),
    };
    let entry = RunJournal::capture(
        format!("hamlet {}", args.join(" ")),
        outcome,
        hamlet_obs::rollup(&spans),
    );
    let journal_line = match entry.append_to(&RunJournal::dir()) {
        Ok(path) => Some(format!("journal: {}", path.display())),
        Err(e) => {
            hamlet_obs::counter_add!("hamlet_journal_write_failures_total", 1);
            eprintln!("warning: could not write run journal: {e}");
            None
        }
    };

    if metrics {
        obs.push_str(&hamlet_obs::render_metrics());
        obs.push('\n');
    }
    if let Some(line) = journal_line {
        let _ = writeln!(obs, "{line}");
    }

    result.map(|body| format!("{body}\n{obs}"))
}

fn dispatch(args: &[String]) -> Result<String, CliError> {
    let _span = hamlet_obs::span!(
        "cli.dispatch",
        cmd = args.first().map(String::as_str).unwrap_or("help")
    );
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_string()),
        Some("datasets") => {
            let mut out = String::new();
            for spec in DatasetSpec::all() {
                let _ = writeln!(
                    out,
                    "{:<14} #Y={} n_S={} k={} ({} closed FKs)",
                    spec.name,
                    spec.n_classes,
                    spec.n_s,
                    spec.tables.len(),
                    spec.tables.iter().filter(|t| t.closed).count()
                );
            }
            Ok(out)
        }
        Some("advise") => {
            let (spec, scale) = dataset_arg(&args[1..])?;
            let relaxed = args.iter().any(|a| a == "--relaxed");
            let family = family_arg(&args[1..])?;
            let recommend_factorize = strategy_arg(&args[1..])?.unwrap_or(false);
            let g = spec.generate(scale, 20_160_626);
            hamlet_obs::set_model_family(family.name());
            let mut config = advisor_config(relaxed, family);
            config.recommend_factorize = recommend_factorize;
            let report =
                advise(&g.star, g.star.n_s() / 2, &config).map_err(|e| CliError(e.to_string()))?;
            let body = if args.iter().any(|a| a == "--markdown") {
                report.render_markdown()
            } else {
                report.render()
            };
            Ok(format!(
                "{} (scale {scale}{})\n{}",
                spec.name,
                if relaxed { ", relaxed thresholds" } else { "" },
                body
            ))
        }
        Some("train") => {
            let rest = &args[1..];
            let model = parse_flag(rest, "--model")?.unwrap_or("nb");
            if !matches!(model, "nb" | "logreg" | "tree" | "gbt") {
                return Err(CliError(format!(
                    "--model must be 'nb', 'logreg', 'tree', or 'gbt', got '{model}'"
                )));
            }
            let factorize = strategy_arg(rest)?.unwrap_or(true);
            if let Some(f) = ModelFamily::parse(model) {
                hamlet_obs::set_model_family(f.name());
            }
            if let Some(dir) = parse_flag(rest, "--discover")? {
                if parse_flag(rest, "--dataset")?.is_some() {
                    return Err(CliError(
                        "--discover and --dataset are mutually exclusive".into(),
                    ));
                }
                let (d, star) = discover_star(std::path::Path::new(dir), rest)?;
                let body = train_star(&star, model, factorize)?;
                return Ok(format!(
                    "{} (discovered from {dir}), model {model}\n{body}",
                    d.report.entity
                ));
            }
            let (spec, scale) = dataset_arg(rest)?;
            let g = spec.generate(scale, 20_160_626);
            let body = train_star(&g.star, model, factorize)?;
            Ok(format!(
                "{} (scale {scale}), model {model}\n{body}",
                spec.name
            ))
        }
        Some("profile") => {
            let (spec, scale) = dataset_arg(&args[1..])?;
            let g = spec.generate(scale, 20_160_626);
            Ok(profile_star(&g.star).render())
        }
        Some("advise-files") => {
            let rest = &args[1..];
            let relaxed = rest.iter().any(|a| a == "--relaxed");
            let family = family_arg(rest)?;
            let (star, degradations) = if let Some(dir) = parse_flag(rest, "--discover")? {
                let (d, star) = discover_star(std::path::Path::new(dir), rest)?;
                (star, format!("\n{}", render_discovery(&d.report)))
            } else {
                let file = rest
                    .iter()
                    .find(|a| !a.starts_with("--"))
                    .ok_or_else(|| CliError("missing <schema.manifest>".into()))?;
                let policy = load_policy_args(rest)?;
                let text = std::fs::read_to_string(file)
                    .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
                let manifest = Manifest::parse(&text).map_err(|e| CliError(e.to_string()))?;
                let base = std::path::Path::new(file)
                    .parent()
                    .unwrap_or_else(|| std::path::Path::new("."));
                let load = manifest
                    .load_policy(base, &policy)
                    .map_err(|e| CliError(e.to_string()))?;
                let degradations = render_degradations(&load);
                (load.star, degradations)
            };
            hamlet_obs::set_model_family(family.name());
            let config = advisor_config(relaxed, family);
            let report =
                advise(&star, star.n_s() / 2, &config).map_err(|e| CliError(e.to_string()))?;
            let lints = lint_star(&star, &LintConfig::default());
            let mut out = format!("{}\n{}", profile_star(&star).render(), report.render());
            if !lints.is_empty() {
                out.push_str("\nData-quality warnings:\n");
                for l in lints {
                    out.push_str(&format!("  {l:?}\n"));
                }
            }
            out.push_str(&degradations);
            Ok(out)
        }
        Some("discover") => discover_cmd(&args[1..]),
        Some("simulate") => simulate_cmd(&args[1..]),
        Some("retune") => retune_cmd(&args[1..]),
        Some("save-model") => save_model_cmd(&args[1..]),
        Some("predict") => predict_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("reload") => reload_cmd(&args[1..]),
        Some("csv-advise") => {
            let rest = &args[1..];
            let file = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("missing <file.csv>".into()))?;
            let target = parse_flag(rest, "--target")?
                .ok_or_else(|| CliError("missing --target <col>".into()))?;
            let min_distinct: usize = parse_flag(rest, "--min-distinct")?
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError(format!("bad --min-distinct '{s}'")))
                })
                .transpose()?
                .unwrap_or(20);
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let numerics: Vec<(String, usize)> = parse_multi(rest, "--numeric")
                .into_iter()
                .map(|spec| {
                    let (name, bins) = spec.split_once(':').ok_or_else(|| {
                        CliError(format!("--numeric needs col:bins, got '{spec}'"))
                    })?;
                    let bins: usize = bins
                        .parse()
                        .map_err(|_| CliError(format!("bad bin count in '{spec}'")))?;
                    Ok((name.to_string(), bins))
                })
                .collect::<Result<_, CliError>>()?;
            let skips: Vec<&str> = parse_multi(rest, "--skip");
            csv_advise(&text, target, &numerics, &skips, min_distinct)
        }
        Some(other) => Err(CliError(format!("unknown subcommand '{other}'\n\n{USAGE}"))),
    }
}

/// Parses an optional numeric flag with a default.
fn num_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, CliError> {
    match parse_flag(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError(format!("bad {flag} '{v}'"))),
    }
}

/// The `simulate` pipeline: one point of the paper's Monte-Carlo
/// simulation (Sec 4.1), with optional cell-level checkpointing.
fn simulate_cmd(rest: &[String]) -> Result<String, CliError> {
    use hamlet_datagen::sim::{Scenario, SimulationConfig};
    use hamlet_datagen::skew::FkSkew;
    use hamlet_experiments::{
        monte_carlo_opts, simulate, FeatureSetChoice, MonteCarloOpts, CHECKPOINT_DIR_VAR,
        DEFAULT_CHECKPOINT_DIR,
    };

    let scenario = match parse_flag(rest, "--scenario")?.unwrap_or("lone") {
        "lone" => Scenario::LoneForeignFeature,
        "all" => Scenario::AllFeatures,
        "entity-fk" => Scenario::EntityAndFk,
        other => {
            return Err(CliError(format!(
                "--scenario must be 'lone', 'all', or 'entity-fk', got '{other}'"
            )))
        }
    };
    let n_s: usize = num_flag(rest, "--n-s", 1000)?;
    let n_r: usize = num_flag(rest, "--n-r", 40)?;
    if n_s == 0 || n_r == 0 {
        return Err(CliError("--n-s and --n-r must be positive".into()));
    }
    // Fig 3(A)'s fixed shape for everything not worth a flag.
    let cfg = SimulationConfig {
        scenario,
        d_s: 2,
        d_r: 4,
        n_r,
        p: 0.1,
        skew: FkSkew::Uniform,
    };
    let env = monte_carlo_opts();
    let opts = MonteCarloOpts {
        train_sets: num_flag(rest, "--train-sets", env.train_sets)?,
        repeats: num_flag(rest, "--repeats", env.repeats)?,
        base_seed: num_flag(rest, "--seed", env.base_seed)?,
    };
    if opts.train_sets == 0 || opts.repeats == 0 {
        return Err(CliError(
            "--train-sets and --repeats must be positive".into(),
        ));
    }

    let mut out = String::new();
    if rest.iter().any(|a| a == "--resume") {
        // Checkpointing is env-transparent in the runner; --resume just
        // supplies the default root when the variable is unset.
        if std::env::var_os(CHECKPOINT_DIR_VAR).is_none() {
            std::env::set_var(CHECKPOINT_DIR_VAR, DEFAULT_CHECKPOINT_DIR);
        }
        let _ = writeln!(
            out,
            "checkpoints: {}",
            std::env::var(CHECKPOINT_DIR_VAR).unwrap_or_default()
        );
    }

    let est = simulate(&cfg, n_s, &opts);
    let _ = writeln!(
        out,
        "scenario {scenario:?}, n_S = {n_s}, |D_FK| = {n_r}, {} train sets x {} worlds, seed {}",
        opts.train_sets, opts.repeats, opts.base_seed
    );
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "choice", "test err", "net var", "bias", "variance"
    );
    for (c, choice) in FeatureSetChoice::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            choice.name(),
            est[c].test_error,
            est[c].net_variance,
            est[c].bias,
            est[c].variance
        );
    }
    if let Some(path) = parse_flag(rest, "--out")? {
        hamlet_obs::atomic_write(std::path::Path::new(path), out.as_bytes())
            .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

/// Process signal plumbing for `hamlet serve`: SIGTERM and SIGINT flip
/// a stop flag the server's accept loop polls (graceful drain instead
/// of a hard kill); SIGHUP flips a reload flag (atomic registry
/// hot-swap from disk). Raw `signal(2)` against libc — the stores are
/// atomic and async-signal-safe, and no crate dependency is needed.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Flipped by the handler; read by the server via
    /// [`ServerConfig::stop_signal`](hamlet_serve::ServerConfig).
    pub static STOP: AtomicBool = AtomicBool::new(false);

    /// Flipped by SIGHUP; read by the server via
    /// [`ServerConfig::reload_signal`](hamlet_serve::ServerConfig),
    /// which clears it and re-reads every disk-backed model.
    pub static RELOAD: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_reload(_signum: i32) {
        RELOAD.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers: SIGTERM (15) and SIGINT (2) stop, SIGHUP
    /// (1) reloads.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(15, on_signal);
            signal(2, on_signal);
            signal(1, on_reload);
        }
    }
}

/// Shared `--relaxed`-aware advisor config.
fn advisor_config(relaxed: bool, family: ModelFamily) -> AdvisorConfig {
    let mut config = AdvisorConfig::for_family(family);
    if relaxed {
        // An explicit user override: the relaxed thresholds replace the
        // family-tuned ones whatever the family.
        config.tr = TrRule::with_tau(RELAXED_TAU);
        config.ror = RorRule::with_rho(RELAXED_RHO);
    }
    config
}

/// Parses `--family` (canonical names or the short aliases), defaulting
/// to Naive Bayes — the paper's primary model.
fn family_arg(args: &[String]) -> Result<ModelFamily, CliError> {
    match parse_flag(args, "--family")? {
        None => Ok(ModelFamily::NaiveBayes),
        Some(s) => ModelFamily::parse(s).ok_or_else(|| {
            CliError(format!(
                "--family must be one of naive_bayes|logistic_regression|tan|tree|gbt \
                 (or nb|logreg|cart|boosted), got '{s}'"
            ))
        }),
    }
}

/// The `retune` pipeline: Monte-Carlo revalidation of the per-family
/// join-avoidance thresholds over the simulation grid.
fn retune_cmd(rest: &[String]) -> Result<String, CliError> {
    use hamlet_experiments::{revalidate_all, revalidate_family, MonteCarloOpts};
    let n_s: usize = num_flag(rest, "--n-s", 400)?;
    let opts = MonteCarloOpts {
        train_sets: num_flag(rest, "--train-sets", 4)?,
        repeats: num_flag(rest, "--repeats", 2)?,
        base_seed: num_flag(rest, "--seed", 7)?,
    };
    if n_s == 0 || opts.train_sets == 0 || opts.repeats == 0 {
        return Err(CliError(
            "--n-s, --train-sets, and --repeats must be positive".into(),
        ));
    }
    let reports = match parse_flag(rest, "--family")? {
        Some(s) => {
            let family = ModelFamily::parse(s).ok_or_else(|| {
                CliError(format!(
                    "--family must be one of naive_bayes|logistic_regression|tan|tree|gbt \
                     (or nb|logreg|cart|boosted), got '{s}'"
                ))
            })?;
            hamlet_obs::set_model_family(family.name());
            vec![revalidate_family(family, n_s, &opts)]
        }
        None => revalidate_all(n_s, &opts),
    };
    let mut out = String::new();
    for r in &reports {
        out.push_str(&r.render());
        out.push('\n');
    }
    Ok(out)
}

/// The `save-model` pipeline: advise, fit, and write the artifact.
///
/// The star comes from either a built-in dataset (`--dataset`, possibly
/// scaled) or a CSV manifest (`--manifest`, with the same dirty-data
/// policy flags as `advise-files`; `--allow-degraded` tolerates
/// unreadable attribute tables via FK-only surrogates and marks the
/// affected decisions `degraded` in the artifact).
fn save_model_cmd(rest: &[String]) -> Result<String, CliError> {
    let model = parse_flag(rest, "--model")?.unwrap_or("nb");
    let kind = ModelKind::from_name(model).ok_or_else(|| {
        CliError(format!(
            "--model must be 'nb', 'logreg', 'tan', 'tree', or 'gbt', got '{model}'"
        ))
    })?;
    hamlet_obs::set_model_family(kind.family().name());
    let out_path =
        parse_flag(rest, "--out")?.ok_or_else(|| CliError("missing --out <file>".into()))?;
    let config = advisor_config(rest.iter().any(|a| a == "--relaxed"), kind.family());
    if let Some(dir) = parse_flag(rest, "--discover")? {
        if parse_flag(rest, "--manifest")?.is_some() || parse_flag(rest, "--dataset")?.is_some() {
            return Err(CliError(
                "--discover is mutually exclusive with --manifest and --dataset".into(),
            ));
        }
        let (d, star) = discover_star(std::path::Path::new(dir), rest)?;
        let built = build_artifact(&star, kind, &config, &d.report.entity)
            .map_err(|e| CliError(e.to_string()))?;
        artifact::save(&built.artifact, std::path::Path::new(out_path))
            .map_err(|e| CliError(e.to_string()))?;
        let avoided = built.artifact.decisions.iter().filter(|d| d.avoid).count();
        return Ok(format!(
            "{} (discovered from {dir}), model {model}\n\
             trained on {} rows, holdout error {:.4}\n\
             {} of {} joins avoided; {} input features\n\
             wrote {out_path}\n",
            d.report.entity,
            built.n_train,
            built.holdout_error,
            avoided,
            built.artifact.decisions.len(),
            built.artifact.features.len(),
        ));
    }
    let (built, headline) = match parse_flag(rest, "--manifest")? {
        Some(file) => {
            if parse_flag(rest, "--dataset")?.is_some() {
                return Err(CliError(
                    "--manifest and --dataset are mutually exclusive".into(),
                ));
            }
            let policy = load_policy_args(rest)?;
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let manifest = Manifest::parse(&text).map_err(|e| CliError(e.to_string()))?;
            let base = std::path::Path::new(file)
                .parent()
                .unwrap_or_else(|| std::path::Path::new("."));
            let load = manifest
                .load_policy(base, &policy)
                .map_err(|e| CliError(e.to_string()))?;
            let name = std::path::Path::new(file)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("manifest")
                .to_string();
            let built = build_artifact_with_availability(
                &load.star,
                kind,
                &config,
                &name,
                &load.substitutions,
            )
            .map_err(|e| CliError(e.to_string()))?;
            let mut headline = format!("{name} (from {file}), model {model}");
            if !load.substitutions.is_empty() {
                let _ = write!(
                    headline,
                    "\n{} table(s) replaced by FK-only surrogates (degraded build)",
                    load.substitutions.len()
                );
            }
            (built, headline)
        }
        None => {
            let (spec, scale) = dataset_arg(rest)?;
            let g = spec.generate(scale, 20_160_626);
            let built = build_artifact(&g.star, kind, &config, spec.name)
                .map_err(|e| CliError(e.to_string()))?;
            (
                built,
                format!("{} (scale {scale}), model {model}", spec.name),
            )
        }
    };
    artifact::save(&built.artifact, std::path::Path::new(out_path))
        .map_err(|e| CliError(e.to_string()))?;
    let avoided = built.artifact.decisions.iter().filter(|d| d.avoid).count();
    Ok(format!(
        "{headline}\n\
         trained on {} rows, holdout error {:.4}\n\
         {} of {} joins avoided; {} input features\n\
         wrote {out_path}\n",
        built.n_train,
        built.holdout_error,
        avoided,
        built.artifact.decisions.len(),
        built.artifact.features.len(),
    ))
}

/// The `predict` pipeline: offline file-to-file scoring.
fn predict_cmd(rest: &[String]) -> Result<String, CliError> {
    let model_path =
        parse_flag(rest, "--model")?.ok_or_else(|| CliError("missing --model <file>".into()))?;
    let in_path =
        parse_flag(rest, "--in")?.ok_or_else(|| CliError("missing --in <file>".into()))?;
    let a =
        artifact::load(std::path::Path::new(model_path)).map_err(|e| CliError(e.to_string()))?;
    hamlet_obs::set_model_family(a.model.family());
    let scorer = Scorer::new(a);
    let text = std::fs::read_to_string(in_path)
        .map_err(|e| CliError(format!("cannot read {in_path}: {e}")))?;
    let body = hamlet_obs::json::Json::parse(&text)
        .map_err(|e| CliError(format!("{in_path}: not valid JSON: {e}")))?;
    let preds = scorer
        .predict_body(&body)
        .map_err(|e| CliError(e.to_string()))?;
    let rendered = Scorer::render_predictions(&preds).to_string();
    match parse_flag(rest, "--out")? {
        Some(out_path) => {
            hamlet_obs::atomic_write(std::path::Path::new(out_path), rendered.as_bytes())
                .map_err(|e| CliError(format!("cannot write {out_path}: {e}")))?;
            Ok(format!(
                "wrote {} prediction(s) to {out_path}\n",
                preds.len()
            ))
        }
        None => Ok(format!("{rendered}\n")),
    }
}

/// Parses the repeatable `--model` flag into `(id, path)` registry
/// sources. One entry may be a bare `PATH` (it becomes the default
/// model, id `default`); every other entry must be `ID=PATH` so routing
/// ids are explicit.
fn parse_model_sources(rest: &[String]) -> Result<Vec<(String, std::path::PathBuf)>, CliError> {
    let entries = parse_multi(rest, "--model");
    if entries.is_empty() {
        return Err(CliError(
            "missing --model <file> (or --model ID=FILE)".into(),
        ));
    }
    let mut sources: Vec<(String, std::path::PathBuf)> = Vec::with_capacity(entries.len());
    let mut bare_seen = false;
    for entry in entries {
        match entry.split_once('=') {
            Some((id, path)) if !id.is_empty() && !path.is_empty() => {
                sources.push((id.to_string(), std::path::PathBuf::from(path)));
            }
            Some(_) => {
                return Err(CliError(format!(
                    "bad --model '{entry}': expected ID=PATH (or a bare PATH for the default model)"
                )))
            }
            None => {
                if bare_seen {
                    return Err(CliError(format!(
                        "--model '{entry}': only one bare PATH is allowed (it becomes the \
                         default model); give additional models explicit ids with ID=PATH"
                    )));
                }
                bare_seen = true;
                // The default model routes first; keep it at the front.
                sources.insert(0, ("default".to_string(), std::path::PathBuf::from(entry)));
            }
        }
    }
    Ok(sources)
}

/// The `serve` pipeline: load the model registry, listen until
/// SIGTERM/ctrl-c (SIGHUP hot-swaps the registry from disk), drain, and
/// report final stats.
fn serve_cmd(rest: &[String]) -> Result<String, CliError> {
    let sources = parse_model_sources(rest)?;
    let port: u16 = num_flag(rest, "--port", 7878)?;
    let threads_flag: Option<usize> = parse_flag(rest, "--threads")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError(format!("bad --threads '{v}'")))
        })
        .transpose()?;
    let queue: usize = num_flag(rest, "--queue", 64)?;
    let max_requests_per_conn: usize = num_flag(rest, "--max-requests-per-conn", 0)?;
    let idle_ms: u64 = num_flag(rest, "--idle-ms", 5_000)?;
    if queue == 0 || threads_flag == Some(0) || idle_ms == 0 {
        return Err(CliError(
            "--threads, --queue, and --idle-ms must be positive".into(),
        ));
    }
    let window_flag: Option<u64> = parse_flag(rest, "--batch-window-us")?
        .map(|v| {
            v.parse()
                .map_err(|_| CliError(format!("bad --batch-window-us '{v}'")))
        })
        .transpose()?;
    let batch_window = hamlet_serve::resolve_batch_window(window_flag);
    let fallback = rest.iter().any(|a| a == "--fallback");

    let registry = std::sync::Arc::new(
        hamlet_serve::Registry::from_sources(&sources, batch_window)
            .map_err(|e| CliError(e.to_string()))?,
    );
    let (dataset, family) = match registry.default_entry() {
        Some(entry) => {
            let a = entry.scorer.artifact();
            (a.dataset.clone(), a.model.family().to_string())
        }
        None => ("?".to_string(), "?".to_string()),
    };
    hamlet_obs::set_model_family(family.clone());
    let threads = hamlet_serve::resolve_threads(threads_flag);
    let n_models = sources.len();

    signals::install();
    let handle = hamlet_serve::start_with_registry(
        registry,
        ServerConfig {
            addr: format!("127.0.0.1:{port}"),
            threads,
            queue_capacity: queue,
            stop_signal: Some(&signals::STOP),
            reload_signal: Some(&signals::RELOAD),
            max_requests_per_conn,
            idle_timeout: std::time::Duration::from_millis(idle_ms),
            batch_window,
            fallback,
        },
    )
    .map_err(|e| CliError(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
    // Stderr so scripted callers can watch readiness without touching
    // the stdout report.
    eprintln!(
        "serving {n_models} model(s), default {dataset} ({family}) on 127.0.0.1:{} — \
         {threads} worker(s), queue {queue}, batch window {}µs; \
         SIGTERM or ctrl-c to drain, SIGHUP or POST /reload to hot-swap",
        handle.port(),
        batch_window.as_micros(),
    );
    let port = handle.port();
    // An accept-thread panic surfaces here as a nonzero exit with the
    // panic text, not a silent zero-stats success.
    let stats = handle.run_until_stopped().map_err(CliError)?;
    Ok(format!(
        "drained 127.0.0.1:{port}: served {} request(s), {} error(s), {} shed with 503, \
         {} reload(s)\n",
        stats.requests, stats.errors, stats.rejected, stats.reloads
    ))
}

/// The `reload` subcommand: asks a running server to hot-swap its
/// registry by POSTing `/reload` (the scripted alternative to SIGHUP).
fn reload_cmd(rest: &[String]) -> Result<String, CliError> {
    use std::io::{Read, Write};
    let port: u16 = num_flag(rest, "--port", 7878)?;
    let addr = format!("127.0.0.1:{port}");
    let mut stream = std::net::TcpStream::connect(&addr)
        .map_err(|e| CliError(format!("cannot reach {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    stream
        .write_all(
            b"POST /reload HTTP/1.1\r\nHost: hamlet\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
        )
        .map_err(|e| CliError(format!("{addr}: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| CliError(format!("{addr}: {e}")))?;
    let resp = String::from_utf8_lossy(&raw);
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    if resp.starts_with("HTTP/1.1 200") {
        Ok(format!("{addr} reloaded: {body}\n"))
    } else {
        Err(CliError(format!(
            "{addr} refused the reload: {}",
            if body.is_empty() { &resp } else { body }
        )))
    }
}

/// The `train` pipeline: fits the requested classifier over `star`
/// under the 50/25/25 holdout protocol.
///
/// With `factorize`, training reads every joined column through FK
/// indirection (no `kfk_join` runs) and the output includes a parity
/// check against the materialized reference — the models must be
/// *identical*, not merely close, because both paths execute the same
/// float operations on the same codes.
pub fn train_star(star: &StarSchema, model: &str, factorize: bool) -> Result<String, CliError> {
    let err = |e: hamlet_relational::RelationalError| CliError(e.to_string());
    if matches!(model, "tree" | "gbt") {
        return train_star_trees(star, model, factorize);
    }
    let perm: Vec<usize> = (0..star.n_s()).collect();
    let split = star.split_rows(&perm, 0.5, 0.25);

    // Materialized path: the subject under --strategy materialize, the
    // parity reference under --strategy factorize.
    let t0 = Instant::now();
    let wide = star.materialize_all().map_err(err)?;
    let data = Dataset::from_table(&wide);
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let (mat_err, mat_elapsed, nb_mat, lr_mat);
    match model {
        "nb" => {
            let m = NaiveBayes::default().fit(&data, &split.train, &feats);
            mat_elapsed = t0.elapsed();
            mat_err = zero_one_error(&m, &data, &split.test);
            nb_mat = Some(m);
            lr_mat = None;
        }
        _ => {
            let m = LogisticRegression::default().fit(&data, &split.train, &feats);
            mat_elapsed = t0.elapsed();
            mat_err = zero_one_error(&m, &data, &split.test);
            nb_mat = None;
            lr_mat = Some(m);
        }
    }
    if !factorize {
        return Ok(format!(
            "materialize: trained in {:.1} ms, holdout error {mat_err:.4}\n",
            mat_elapsed.as_secs_f64() * 1e3
        ));
    }

    let t1 = Instant::now();
    let view = FactorizedView::new(star).map_err(err)?;
    let (fac_err, fac_elapsed, parity);
    match model {
        "nb" => {
            let m = fit_factorized_nb(&view, &NaiveBayes::default(), &split.train, &feats)
                .map_err(err)?;
            fac_elapsed = t1.elapsed();
            fac_err = zero_one_error(&m, &view, &split.test);
            parity = nb_mat.as_ref() == Some(&m);
        }
        _ => {
            let m =
                fit_factorized_logreg(&view, &LogisticRegression::default(), &split.train, &feats);
            fac_elapsed = t1.elapsed();
            fac_err = zero_one_error(&m, &view, &split.test);
            parity = lr_mat
                .as_ref()
                .map(|r| r.weights() == m.weights() && r.bias() == m.bias())
                .unwrap_or(false);
        }
    }
    Ok(format!(
        "factorize: trained in {:.1} ms, holdout error {fac_err:.4}\n\
         materialized reference: trained in {:.1} ms, holdout error {mat_err:.4}\n\
         parity: {}\n\
         wide-table cells never allocated: {}\n",
        fac_elapsed.as_secs_f64() * 1e3,
        mat_elapsed.as_secs_f64() * 1e3,
        if parity {
            "exact (identical model)"
        } else {
            "MISMATCH"
        },
        view.cells_avoided()
    ))
}

/// Tree-family `train` arms: CART via pushed-down count aggregates,
/// GBT via the ordered factorized code stream — both asserted against
/// the materialized reference with the fitted model's own `PartialEq`
/// (the factorized tree is the identical arena, not merely close).
fn train_star_trees(star: &StarSchema, model: &str, factorize: bool) -> Result<String, CliError> {
    let err = |e: hamlet_relational::RelationalError| CliError(e.to_string());
    let perm: Vec<usize> = (0..star.n_s()).collect();
    let split = star.split_rows(&perm, 0.5, 0.25);
    let t0 = Instant::now();
    let wide = star.materialize_all().map_err(err)?;
    let data = Dataset::from_table(&wide);
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let cart = CartTree::default();
    let gbt = Gbt::from_env();

    let (mat_err, mat_elapsed, cart_mat, gbt_mat);
    if model == "tree" {
        let m = cart.fit(&data, &split.train, &feats);
        mat_elapsed = t0.elapsed();
        mat_err = zero_one_error(&m, &data, &split.test);
        cart_mat = Some(m);
        gbt_mat = None;
    } else {
        let m = gbt.fit(&data, &split.train, &feats);
        mat_elapsed = t0.elapsed();
        mat_err = zero_one_error(&m, &data, &split.test);
        cart_mat = None;
        gbt_mat = Some(m);
    }
    if !factorize {
        return Ok(format!(
            "materialize: trained in {:.1} ms, holdout error {mat_err:.4}\n",
            mat_elapsed.as_secs_f64() * 1e3
        ));
    }

    let t1 = Instant::now();
    let view = FactorizedView::new(star).map_err(err)?;
    let (fac_err, fac_elapsed, parity);
    if model == "tree" {
        let m = fit_factorized_tree(&view, &cart, &split.train, &feats);
        fac_elapsed = t1.elapsed();
        fac_err = zero_one_error(&m, &view, &split.test);
        parity = cart_mat.as_ref() == Some(&m);
    } else {
        let m = fit_factorized_gbt(&view, &gbt, &split.train, &feats);
        fac_elapsed = t1.elapsed();
        fac_err = zero_one_error(&m, &view, &split.test);
        parity = gbt_mat.as_ref() == Some(&m);
    }
    Ok(format!(
        "factorize: trained in {:.1} ms, holdout error {fac_err:.4}\n\
         materialized reference: trained in {:.1} ms, holdout error {mat_err:.4}\n\
         parity: {}\n\
         wide-table cells never allocated: {}\n",
        fac_elapsed.as_secs_f64() * 1e3,
        mat_elapsed.as_secs_f64() * 1e3,
        if parity {
            "exact (identical model)"
        } else {
            "MISMATCH"
        },
        view.cells_avoided()
    ))
}

/// The `csv-advise` pipeline on in-memory CSV text.
pub fn csv_advise(
    text: &str,
    target: &str,
    numerics: &[(String, usize)],
    skips: &[&str],
    min_distinct: usize,
) -> Result<String, CliError> {
    // Column specs: header-driven.
    let header = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| CliError("empty CSV".into()))?;
    let names: Vec<&str> = header.split(',').map(|h| h.trim_matches('"')).collect();
    if !names.contains(&target) {
        return Err(CliError(format!("target column '{target}' not in header")));
    }
    let specs: Vec<(&str, ColumnSpec)> = names
        .iter()
        .map(|&n| {
            let spec = if skips.contains(&n) {
                ColumnSpec::Skip
            } else if n == target {
                ColumnSpec::target(n)
            } else if let Some((_, bins)) = numerics.iter().find(|(c, _)| c == n) {
                ColumnSpec::numeric_feature(n, *bins)
            } else {
                ColumnSpec::feature(n)
            };
            (n, spec)
        })
        .collect();
    let wide = read_csv("wide", text, &specs, ',')
        .map_err(|e| CliError(format!("CSV parse error: {e}")))?;

    let mut out = format!(
        "Loaded {} rows x {} columns.\n",
        wide.n_rows(),
        wide.schema().len()
    );

    let inferred = infer_single_fds(&wide, min_distinct);
    let compatible = select_compatible_fds(&inferred);
    if compatible.is_empty() {
        out.push_str(
            "No functional dependencies found: the table appears to be fully normalized already.\n",
        );
        return Ok(out);
    }
    for fd in &compatible {
        let _ = writeln!(
            out,
            "Inferred FD: {} -> {}",
            fd.determinant[0],
            fd.dependents.join(", ")
        );
    }
    let star = decompose_star(&wide, &compatible)
        .map_err(|e| CliError(format!("decomposition failed: {e}")))?;
    let report = advise(&star, star.n_s() / 2, &AdvisorConfig::default())
        .map_err(|e| CliError(e.to_string()))?;
    out.push('\n');
    out.push_str(&report.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.0.contains("unknown subcommand"));
    }

    #[test]
    fn datasets_lists_seven() {
        let out = run(&argv("datasets")).unwrap();
        assert_eq!(out.lines().count(), 7);
        assert!(out.contains("MovieLens1M"));
    }

    #[test]
    fn advise_on_builtin() {
        let out = run(&argv("advise --dataset walmart --scale 0.01")).unwrap();
        assert!(out.contains("AVOID the join"), "{out}");
        assert!(out.contains("Indicators"));
    }

    #[test]
    fn advise_relaxed_flips_flights_airports() {
        let strict = run(&argv("advise --dataset flights --scale 0.05")).unwrap();
        let relaxed = run(&argv("advise --dataset flights --scale 0.05 --relaxed")).unwrap();
        assert!(strict.contains("SrcAirports (via SrcAirportID): PERFORM"));
        assert!(relaxed.contains("SrcAirports (via SrcAirportID): AVOID"));
    }

    #[test]
    fn profile_prints_tr() {
        let out = run(&argv("profile --dataset yelp --scale 0.01")).unwrap();
        assert!(out.contains("TR ="), "{out}");
    }

    #[test]
    fn bad_args_are_reported() {
        assert!(run(&argv("advise")).unwrap_err().0.contains("--dataset"));
        assert!(run(&argv("advise --dataset nope"))
            .unwrap_err()
            .0
            .contains("unknown dataset"));
        assert!(run(&argv("advise --dataset yelp --scale 7"))
            .unwrap_err()
            .0
            .contains("--scale"));
        assert!(run(&argv("csv-advise")).unwrap_err().0.contains("file.csv"));
        assert!(run(&argv("train")).unwrap_err().0.contains("--dataset"));
        assert!(run(&argv("train --dataset yelp --model svm"))
            .unwrap_err()
            .0
            .contains("--model"));
        assert!(run(&argv("train --dataset yelp --strategy teleport"))
            .unwrap_err()
            .0
            .contains("--strategy"));
    }

    #[test]
    fn flag_without_value_is_an_error() {
        // Regression: `--scale` as the last token used to parse as
        // "flag absent" and silently run at the default scale.
        assert!(run(&argv("advise --dataset walmart --scale"))
            .unwrap_err()
            .0
            .contains("--scale requires a value"));
        assert!(run(&argv("advise --scale --relaxed --dataset walmart"))
            .unwrap_err()
            .0
            .contains("--scale requires a value"));
        assert!(run(&argv("advise --dataset walmart --dataset yelp"))
            .unwrap_err()
            .0
            .contains("more than once"));
    }

    #[test]
    fn trace_and_metrics_produce_observability_output_and_a_journal() {
        use hamlet_obs::json::Json;
        let dir = std::env::temp_dir().join("hamlet_cli_journal_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("HAMLET_JOURNAL_DIR", &dir);
        let out = run(&argv(
            "train --dataset walmart --scale 0.01 --trace --metrics",
        ))
        .unwrap();
        std::env::remove_var("HAMLET_JOURNAL_DIR");

        // Span tree with the instrumented hot paths.
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains("relational.materialize"), "{out}");
        assert!(out.contains("factorized.build_view"), "{out}");
        assert!(out.contains("ml.nb_fit"), "{out}");
        // Prometheus metrics, including the paper-facing ones.
        assert!(
            out.contains("# TYPE hamlet_rows_joined_total counter"),
            "{out}"
        );
        assert!(out.contains("hamlet_wide_cells_avoided_total"), "{out}");
        assert!(out.contains("hamlet_nb_fits_total"), "{out}");
        // Journal written and parseable.
        assert!(out.contains("journal: "), "{out}");
        let text = std::fs::read_to_string(dir.join("runs.jsonl")).unwrap();
        let line = text.lines().last().unwrap();
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
        assert!(v
            .get("command")
            .and_then(Json::as_str)
            .unwrap()
            .contains("train --dataset walmart"));
        assert!(v
            .get("spans")
            .and_then(Json::as_arr)
            .is_some_and(|s| !s.is_empty()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_without_trace_records_no_spans() {
        let dir = std::env::temp_dir().join("hamlet_cli_metrics_only_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("HAMLET_JOURNAL_DIR", &dir);
        let out = run(&argv("profile --dataset walmart --scale 0.01 --metrics")).unwrap();
        std::env::remove_var("HAMLET_JOURNAL_DIR");
        assert!(!out.contains("span tree"), "{out}");
        assert!(out.contains("# TYPE"), "{out}");
        assert!(dir.join("runs.jsonl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_strategy_factorize() {
        let out = run(&argv(
            "advise --dataset flights --scale 0.05 --strategy factorize",
        ))
        .unwrap();
        assert!(out.contains("FACTORIZE the join"), "{out}");
        assert!(out.contains("cells"), "{out}");
    }

    #[test]
    fn train_nb_factorized_parity() {
        let out = run(&argv("train --dataset walmart --scale 0.01 --model nb")).unwrap();
        assert!(out.contains("parity: exact (identical model)"), "{out}");
        assert!(out.contains("wide-table cells never allocated"), "{out}");
    }

    #[test]
    fn train_logreg_factorized_parity() {
        let out = run(&argv(
            "train --dataset walmart --scale 0.01 --model logreg --strategy factorize",
        ))
        .unwrap();
        assert!(out.contains("model logreg"), "{out}");
        assert!(out.contains("parity: exact (identical model)"), "{out}");
    }

    #[test]
    fn train_tree_factorized_parity() {
        let out = run(&argv("train --dataset walmart --scale 0.01 --model tree")).unwrap();
        assert!(out.contains("model tree"), "{out}");
        assert!(out.contains("parity: exact (identical model)"), "{out}");
        assert!(out.contains("wide-table cells never allocated"), "{out}");
    }

    #[test]
    fn train_gbt_factorized_parity() {
        std::env::set_var("HAMLET_GBT_ROUNDS", "3");
        let out = run(&argv("train --dataset walmart --scale 0.01 --model gbt")).unwrap();
        std::env::remove_var("HAMLET_GBT_ROUNDS");
        assert!(out.contains("model gbt"), "{out}");
        assert!(out.contains("parity: exact (identical model)"), "{out}");
    }

    #[test]
    fn advise_family_tree_prints_retuned_thresholds() {
        let out = run(&argv("advise --dataset walmart --scale 0.01 --family tree")).unwrap();
        assert!(out.contains("Model family tree"), "{out}");
        assert!(out.contains("Monte-Carlo re-tuned"), "{out}");
        let nb = run(&argv("advise --dataset walmart --scale 0.01")).unwrap();
        assert!(nb.contains("Model family naive_bayes"), "{nb}");
        assert!(nb.contains("paper defaults"), "{nb}");
        assert_ne!(out, nb, "family must change the advisor output");
    }

    #[test]
    fn bad_family_is_reported() {
        assert!(run(&argv("advise --dataset walmart --family svm"))
            .unwrap_err()
            .0
            .contains("--family"));
    }

    #[test]
    fn retune_smoke_prints_family_grid() {
        let out = run(&argv(
            "retune --family tree --n-s 200 --train-sets 2 --repeats 1 --seed 5",
        ))
        .unwrap();
        assert!(out.contains("tree"), "{out}");
        assert!(out.contains("n_R"), "{out}");
    }

    #[test]
    fn train_materialize_only() {
        let out = run(&argv(
            "train --dataset walmart --scale 0.01 --strategy materialize",
        ))
        .unwrap();
        assert!(out.contains("materialize: trained in"), "{out}");
        assert!(!out.contains("parity"), "{out}");
    }

    #[test]
    fn csv_advise_pipeline() {
        // userid determines age; 40 users x 100 rows each.
        let mut csv = String::from("stars,userid,age\n");
        for i in 0..4000 {
            let u = i % 40;
            let _ = writeln!(csv, "{},u{},a{}", (u + i / 40) % 5, u, u % 7);
        }
        let out = csv_advise(&csv, "stars", &[], &[], 20).unwrap();
        assert!(out.contains("Inferred FD: userid -> age"), "{out}");
        assert!(out.contains("AVOID the join"), "{out}");
    }

    #[test]
    fn csv_advise_normalized_input() {
        let mut csv = String::from("y,a,b\n");
        for i in 0..100 {
            let _ = writeln!(csv, "{},{},{}", i % 2, i % 7, (i / 3) % 5);
        }
        let out = csv_advise(&csv, "y", &[], &[], 5).unwrap();
        assert!(out.contains("fully normalized"), "{out}");
    }

    #[test]
    fn csv_advise_numeric_and_skip() {
        let mut csv = String::from("y,u,age,junk\n");
        for i in 0..2000 {
            let u = i % 40;
            let _ = writeln!(csv, "{},u{},{}.5,x{}", i % 2, u, 20 + u % 9, i);
        }
        let numerics = vec![("age".to_string(), 8usize)];
        let out = csv_advise(&csv, "y", &numerics, &["junk"], 20).unwrap();
        assert!(out.contains("x 3 columns"), "{out}");
        assert!(out.contains("Inferred FD: u -> age"), "{out}");
    }

    #[test]
    fn csv_advise_missing_target() {
        let csv = "a,b\n1,2\n";
        assert!(csv_advise(csv, "zzz", &[], &[], 2)
            .unwrap_err()
            .0
            .contains("target"));
    }
}

#[cfg(test)]
mod manifest_cli_tests {
    use super::*;
    use std::fmt::Write;

    #[test]
    fn advise_files_end_to_end() {
        let dir = std::env::temp_dir().join("hamlet_cli_manifest");
        std::fs::create_dir_all(&dir).unwrap();
        // 50 employers x 100 customers each: TR = 50 -> safe to avoid.
        let mut customers = String::from("Churn,Age,EmployerID\n");
        for i in 0..5000 {
            let e = i % 50;
            let _ = writeln!(customers, "{},{},e{}", (e + i / 50) % 2, 20 + i % 40, e);
        }
        let mut employers = String::from("EmployerID,Country\n");
        for e in 0..50 {
            let _ = writeln!(employers, "e{},c{}", e, e % 8);
        }
        std::fs::write(dir.join("customers.csv"), customers).unwrap();
        std::fs::write(dir.join("employers.csv"), employers).unwrap();
        let manifest = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";
        let mpath = dir.join("schema.manifest");
        std::fs::write(&mpath, manifest).unwrap();

        let out = run(&["advise-files".to_string(), mpath.display().to_string()]).unwrap();
        assert!(out.contains("TR = 50.0"), "{out}");
        assert!(out.contains("AVOID the join"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_files_missing_manifest() {
        let err = run(&["advise-files".to_string(), "/no/such/file".to_string()]).unwrap_err();
        assert!(err.0.contains("cannot read"));
    }

    /// Writes a small dirty corpus (one ragged customer row, one
    /// dangling FK) and returns the manifest path.
    fn write_dirty_corpus(dir: &std::path::Path) -> std::path::PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let mut customers = String::from("Churn,Age,EmployerID\n");
        for i in 0..3000 {
            let e = i % 30;
            let _ = writeln!(customers, "{},{},e{}", (e + i / 30) % 2, 20 + i % 40, e);
        }
        customers.push_str("1,33\n"); // ragged
        customers.push_str("0,44,e999\n"); // dangling FK
        let mut employers = String::from("EmployerID,Country\n");
        for e in 0..30 {
            let _ = writeln!(employers, "e{},c{}", e, e % 8);
        }
        std::fs::write(dir.join("customers.csv"), customers).unwrap();
        std::fs::write(dir.join("employers.csv"), employers).unwrap();
        let manifest = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";
        let mpath = dir.join("schema.manifest");
        std::fs::write(&mpath, manifest).unwrap();
        mpath
    }

    #[test]
    fn advise_files_dirty_data_aborts_by_default() {
        let dir = std::env::temp_dir().join("hamlet_cli_dirty_abort");
        let mpath = write_dirty_corpus(&dir);
        let err = run(&["advise-files".to_string(), mpath.display().to_string()]).unwrap_err();
        assert!(err.0.contains("expected 3"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_files_degradation_policies() {
        let dir = std::env::temp_dir().join("hamlet_cli_dirty_degrade");
        let mpath = write_dirty_corpus(&dir);
        let out = run(&[
            "advise-files".to_string(),
            mpath.display().to_string(),
            "--on-dirty".to_string(),
            "quarantine".to_string(),
            "--on-dangling-fk".to_string(),
            "drop".to_string(),
        ])
        .unwrap();
        assert!(out.contains("Degradations applied during load:"), "{out}");
        assert!(out.contains("quarantined 1 of 3002 rows"), "{out}");
        assert!(out.contains("dropped 1 row(s)"), "{out}");

        // `others` keeps the row by widening the attribute table.
        let out = run(&[
            "advise-files".to_string(),
            mpath.display().to_string(),
            "--on-dirty".to_string(),
            "quarantine:5".to_string(),
            "--on-dangling-fk".to_string(),
            "others".to_string(),
        ])
        .unwrap();
        assert!(
            out.contains("remapped 1 row(s) to the Others record"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_policy_values_are_reported() {
        let dir = std::env::temp_dir().join("hamlet_cli_dirty_badflag");
        let mpath = write_dirty_corpus(&dir);
        let err = run(&[
            "advise-files".to_string(),
            mpath.display().to_string(),
            "--on-dirty".to_string(),
            "maybe".to_string(),
        ])
        .unwrap_err();
        assert!(err.0.contains("--on-dirty"), "{}", err.0);
        let err = run(&[
            "advise-files".to_string(),
            mpath.display().to_string(),
            "--on-dangling-fk".to_string(),
            "ignore".to_string(),
        ])
        .unwrap_err();
        assert!(err.0.contains("--on-dangling-fk"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod simulate_cli_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    const TINY: &str = "--n-s 120 --n-r 10 --train-sets 4 --repeats 2 --seed 11";

    #[test]
    fn simulate_prints_three_choices() {
        let out = run(&argv(&format!("simulate {TINY}"))).unwrap();
        assert!(out.contains("UseAll"), "{out}");
        assert!(out.contains("NoJoin"), "{out}");
        assert!(out.contains("NoFK"), "{out}");
        assert!(out.contains("4 train sets x 2 worlds"), "{out}");
    }

    #[test]
    fn simulate_resume_reproduces_the_uncheckpointed_run() {
        // Serialized with other checkpoint/failpoint users: both the
        // checkpoint env var and failpoint registry are process-global.
        let _g = hamlet_chaos::failpoint::serial();
        let baseline = run(&argv(&format!("simulate {TINY}"))).unwrap();

        let dir = std::env::temp_dir().join("hamlet_cli_simulate_resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("HAMLET_CHECKPOINT_DIR", &dir);
        let first = run(&argv(&format!("simulate {TINY} --resume"))).unwrap();
        let second = run(&argv(&format!("simulate {TINY} --resume"))).unwrap();
        std::env::remove_var("HAMLET_CHECKPOINT_DIR");

        // Identical modulo the checkpoint banner; cells were written.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("checkpoints:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&first), strip(&baseline));
        assert_eq!(first, second);
        assert!(dir.exists(), "checkpoint cells were persisted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_out_writes_report_atomically() {
        let dir = std::env::temp_dir().join("hamlet_cli_simulate_out");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sim.txt");
        let out = run(&[
            argv(&format!("simulate {TINY} --out")),
            vec![path.display().to_string()],
        ]
        .concat())
        .unwrap();
        assert!(out.contains("wrote "), "{out}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("UseAll"), "{written}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_bad_args_are_reported() {
        assert!(run(&argv("simulate --scenario warp"))
            .unwrap_err()
            .0
            .contains("--scenario"));
        assert!(run(&argv("simulate --n-s zero"))
            .unwrap_err()
            .0
            .contains("--n-s"));
        assert!(run(&argv("simulate --n-s 0"))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(run(&argv("simulate --train-sets 0 --n-s 100"))
            .unwrap_err()
            .0
            .contains("positive"));
    }
}

#[cfg(test)]
mod serving_cli_tests {
    use super::*;
    use hamlet_obs::json::Json;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn save_model_then_predict_offline() {
        let dir = std::env::temp_dir().join("hamlet_cli_save_predict");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.json");

        let out = run(&argv(&format!(
            "save-model --dataset walmart --scale 0.01 --model nb --out {}",
            model.display()
        )))
        .unwrap();
        assert!(out.contains("holdout error"), "{out}");
        assert!(out.contains("wrote "), "{out}");

        // The artifact round-trips through the public loader.
        let a = hamlet_serve::artifact::load(&model).unwrap();
        assert_eq!(a.model.family(), "naive_bayes");
        assert_eq!(a.dataset, "Walmart");

        // Offline scoring: one all-zero positional row (code 0 is valid
        // in every domain) plus one cold-start row with a huge FK code.
        let zeros: Vec<String> = a.features.iter().map(|_| "0".to_string()).collect();
        let cold: Vec<String> = a
            .features
            .iter()
            .map(|f| {
                if f.fk.is_some() {
                    "999999".into()
                } else {
                    "0".into()
                }
            })
            .collect();
        let rows = dir.join("rows.json");
        std::fs::write(
            &rows,
            format!("[[{}],[{}]]", zeros.join(","), cold.join(",")),
        )
        .unwrap();
        let preds_path = dir.join("preds.json");
        let out = run(&argv(&format!(
            "predict --model {} --in {} --out {}",
            model.display(),
            rows.display(),
            preds_path.display()
        )))
        .unwrap();
        assert!(out.contains("wrote 2 prediction(s)"), "{out}");
        let preds = Json::parse(&std::fs::read_to_string(&preds_path).unwrap()).unwrap();
        let arr = preds.get("predictions").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert!(arr[0].get("class").and_then(Json::as_f64).is_some());

        // Without --out the predictions go to stdout.
        let out = run(&argv(&format!(
            "predict --model {} --in {}",
            model.display(),
            rows.display()
        )))
        .unwrap();
        assert!(out.contains("\"predictions\":["), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_model_supports_all_three_families() {
        let dir = std::env::temp_dir().join("hamlet_cli_save_families");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (kind, family) in [("logreg", "logistic_regression"), ("tan", "tan")] {
            let model = dir.join(format!("{kind}.json"));
            run(&argv(&format!(
                "save-model --dataset walmart --scale 0.01 --model {kind} --out {}",
                model.display()
            )))
            .unwrap();
            let a = hamlet_serve::artifact::load(&model).unwrap();
            assert_eq!(a.model.family(), family);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_a_typed_cli_error() {
        let dir = std::env::temp_dir().join("hamlet_cli_corrupt_artifact");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.json");
        run(&argv(&format!(
            "save-model --dataset walmart --scale 0.01 --out {}",
            model.display()
        )))
        .unwrap();

        // Truncate the artifact; predict and serve must degrade with a
        // typed error, not a panic.
        let text = std::fs::read_to_string(&model).unwrap();
        std::fs::write(&model, &text[..text.len() / 2]).unwrap();
        let rows = dir.join("rows.json");
        std::fs::write(&rows, "[[0,0]]").unwrap();
        let err = run(&argv(&format!(
            "predict --model {} --in {}",
            model.display(),
            rows.display()
        )))
        .unwrap_err();
        assert!(err.0.contains("not valid JSON"), "{}", err.0);
        let err = run(&argv(&format!("serve --model {}", model.display()))).unwrap_err();
        assert!(err.0.contains("not valid JSON"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_load_failpoint_degrades_with_a_typed_error() {
        let _g = hamlet_chaos::failpoint::serial();
        let dir = std::env::temp_dir().join("hamlet_cli_serve_failpoint");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let model = dir.join("model.json");
        run(&argv(&format!(
            "save-model --dataset walmart --scale 0.01 --out {}",
            model.display()
        )))
        .unwrap();
        let rows = dir.join("rows.json");
        std::fs::write(&rows, "[[0,0]]").unwrap();

        hamlet_chaos::failpoint::set_failpoints("serve.artifact_load=io").unwrap();
        let err = run(&argv(&format!(
            "predict --model {} --in {}",
            model.display(),
            rows.display()
        )))
        .unwrap_err();
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(err.0.contains("injected IO failure"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serving_bad_args_are_reported() {
        assert!(run(&argv("save-model --dataset walmart"))
            .unwrap_err()
            .0
            .contains("--out"));
        assert!(run(&argv(
            "save-model --dataset walmart --model svm --out /tmp/x"
        ))
        .unwrap_err()
        .0
        .contains("--model"));
        assert!(run(&argv("predict --in /tmp/x"))
            .unwrap_err()
            .0
            .contains("--model"));
        assert!(run(&argv("predict --model /tmp/x"))
            .unwrap_err()
            .0
            .contains("--in"));
        assert!(run(&argv("serve")).unwrap_err().0.contains("--model"));
        assert!(run(&argv("serve --model /tmp/x --queue 0"))
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(run(&argv("serve --model /no/such/artifact.json"))
            .unwrap_err()
            .0
            .contains("model artifact"));
        assert!(
            run(&argv("predict --model /no/such/artifact.json --in /tmp/x"))
                .unwrap_err()
                .0
                .contains("model artifact")
        );
    }

    #[test]
    fn usage_mentions_the_serving_commands() {
        let usage = run(&argv("help")).unwrap();
        for cmd in ["save-model", "predict", "serve", "reload"] {
            assert!(usage.contains(cmd), "usage is missing {cmd}");
        }
        for flag in [
            "--max-requests-per-conn",
            "--batch-window-us",
            "--idle-ms",
            "--fallback",
            "--allow-degraded",
            "--manifest",
        ] {
            assert!(usage.contains(flag), "usage is missing {flag}");
        }
    }

    #[test]
    fn save_model_from_a_manifest_tolerates_a_missing_table_when_allowed() {
        use std::fmt::Write;
        let dir = std::env::temp_dir().join("hamlet_cli_save_manifest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut customers = String::from("Churn,Age,EmployerID\n");
        for i in 0..3000 {
            let e = i % 30;
            let _ = writeln!(customers, "{},{},e{}", (e + i / 30) % 2, 20 + i % 40, e);
        }
        let mut employers = String::from("EmployerID,Country\n");
        for e in 0..30 {
            let _ = writeln!(employers, "e{},c{}", e, e % 8);
        }
        std::fs::write(dir.join("customers.csv"), customers).unwrap();
        std::fs::write(dir.join("employers.csv"), employers).unwrap();
        let manifest = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";
        let mpath = dir.join("churn.manifest");
        std::fs::write(&mpath, manifest).unwrap();
        let model = dir.join("model.json");

        // Clean corpus: a normal (non-degraded) manifest build.
        let out = run(&argv(&format!(
            "save-model --manifest {} --out {}",
            mpath.display(),
            model.display()
        )))
        .unwrap();
        assert!(out.contains("churn (from "), "{out}");
        assert!(!out.contains("FK-only surrogates"), "{out}");
        let a = hamlet_serve::artifact::load(&model).unwrap();
        assert_eq!(a.dataset, "churn");
        assert!(a.decisions.iter().all(|d| !d.degraded));

        // Withhold the attribute table: the strict default aborts...
        std::fs::remove_file(dir.join("employers.csv")).unwrap();
        let err = run(&argv(&format!(
            "save-model --manifest {} --out {}",
            mpath.display(),
            model.display()
        )))
        .unwrap_err();
        assert!(err.0.contains("employers"), "{}", err.0);

        // ...and --allow-degraded ships an FK-only surrogate artifact
        // whose decision is marked degraded.
        let out = run(&argv(&format!(
            "save-model --manifest {} --allow-degraded --out {}",
            mpath.display(),
            model.display()
        )))
        .unwrap();
        assert!(out.contains("FK-only surrogates"), "{out}");
        let a = hamlet_serve::artifact::load(&model).unwrap();
        assert!(
            a.decisions.iter().any(|d| d.degraded),
            "degraded decision recorded in the artifact"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_model_rejects_manifest_plus_dataset() {
        let err = run(&argv(
            "save-model --manifest /tmp/x --dataset walmart --out /tmp/y",
        ))
        .unwrap_err();
        assert!(err.0.contains("mutually exclusive"), "{}", err.0);
    }

    #[test]
    fn multi_model_flag_parsing() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(str::to_string).collect() };
        // One bare path becomes the default model, ids stay explicit.
        let sources = parse_model_sources(&args("--model a.json --model canary=b.json")).unwrap();
        assert_eq!(
            sources,
            vec![
                ("default".into(), std::path::PathBuf::from("a.json")),
                ("canary".into(), std::path::PathBuf::from("b.json")),
            ]
        );
        // The bare path routes as the default even when listed second.
        let sources = parse_model_sources(&args("--model canary=b.json --model a.json")).unwrap();
        assert_eq!(sources[0].0, "default");
        // Two bare paths are ambiguous.
        let err = parse_model_sources(&args("--model a.json --model b.json")).unwrap_err();
        assert!(err.0.contains("ID=PATH"), "{}", err.0);
        // Empty id or path is malformed.
        let err = parse_model_sources(&args("--model =b.json")).unwrap_err();
        assert!(err.0.contains("expected ID=PATH"), "{}", err.0);
        assert!(parse_model_sources(&[]).unwrap_err().0.contains("--model"));
    }

    #[test]
    fn reload_against_no_server_is_a_typed_error() {
        // Port 1 is never bound in the test environment.
        let err = run(&argv("reload --port 1")).unwrap_err();
        assert!(err.0.contains("cannot reach"), "{}", err.0);
    }
}

#[cfg(test)]
mod markdown_cli_tests {
    use super::*;

    #[test]
    fn advise_markdown_flag() {
        let args: Vec<String> = "advise --dataset walmart --scale 0.01 --markdown"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let out = run(&args).unwrap();
        assert!(out.contains("| Table | FK |"), "{out}");
        assert!(out.contains("**avoid**"));
    }
}
