//! The `hamlet` command-line tool.
//!
//! Subcommands:
//!
//! * `advise --dataset <name> [--scale S] [--relaxed]` — run the join
//!   advisor on one of the seven built-in synthetic datasets
//!   (`--strategy factorize` recommends factorized execution for joins
//!   that must be kept);
//! * `train --dataset <name> [--scale S] [--model nb|logreg]
//!   [--strategy factorize|materialize]` — train a classifier over the
//!   star schema; the factorize path never materializes a join and
//!   reports parity against the materialized reference;
//! * `profile --dataset <name> [--scale S]` — print the star-schema
//!   profile (row counts, domains, entropies, TR/q_R*);
//! * `csv-advise <file.csv> --target <col> [--numeric col:bins]...
//!   [--skip col]... [--min-distinct N]` — load a wide (denormalized)
//!   CSV, infer functional dependencies, decompose into a star schema,
//!   and advise which recovered joins were unnecessary;
//! * `advise-files <schema.manifest>` — load a normalized multi-table
//!   dataset from CSVs via a manifest and advise on its joins.
//!
//! The module is process-free (string in, string out) so the integration
//! suite can drive it directly; `src/bin/hamlet.rs` is a thin shell.

use std::fmt::Write as _;
use std::time::Instant;

use hamlet_core::advisor::{advise, AdvisorConfig};
use hamlet_core::rules::{RorRule, TrRule, RELAXED_RHO, RELAXED_TAU};
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_factorized::{fit_factorized_logreg, fit_factorized_nb, FactorizedView};
use hamlet_ml::{zero_one_error, Classifier, Dataset, LogisticRegression, NaiveBayes};
use hamlet_obs::RunJournal;
use hamlet_relational::decompose::{decompose_star, infer_single_fds, select_compatible_fds};
use hamlet_relational::{
    lint_star, profile_star, read_csv, ColumnSpec, LintConfig, Manifest, StarSchema,
};

/// CLI error: a user-facing message (exit code 2 in the binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
hamlet — join avoidance for feature selection over normalized data

USAGE:
  hamlet advise --dataset <name> [--scale S] [--relaxed] [--markdown] [--strategy factorize|materialize]
  hamlet train --dataset <name> [--scale S] [--model nb|logreg] [--strategy factorize|materialize]
  hamlet profile --dataset <name> [--scale S]
  hamlet csv-advise <file.csv> --target <col> [--numeric col:bins]... [--skip col]... [--min-distinct N]
  hamlet advise-files <schema.manifest> [--relaxed]
  hamlet datasets
  hamlet help

Observability (any subcommand):
  --trace    print the span tree (hierarchical wall-clock timings)
  --metrics  print Prometheus-style metrics (rows joined, fits, cells avoided, peak bytes)
Either flag also appends a JSONL entry to the run journal
(results/journal/runs.jsonl; override the directory with HAMLET_JOURNAL_DIR).

Built-in datasets: Walmart, Expedia, Flights, Yelp, MovieLens1M, LastFM, BookCrossing.
";

/// Finds `flag`'s value. Strict where the old version was silently
/// forgiving: a flag that is last on the line, followed by another
/// `--flag`, or given twice is an error, not `None` (which used to make
/// `train --scale` quietly run at the default scale).
fn parse_flag<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
    let mut found: Option<&'a str> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] != flag {
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .map(String::as_str)
            .filter(|v| !v.starts_with("--"))
            .ok_or_else(|| CliError(format!("{flag} requires a value")))?;
        if found.is_some() {
            return Err(CliError(format!("{flag} given more than once")));
        }
        found = Some(value);
        i += 2;
    }
    Ok(found)
}

fn parse_multi<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == flag {
            out.push(args[i + 1].as_str());
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn dataset_arg(args: &[String]) -> Result<(DatasetSpec, f64), CliError> {
    let name = parse_flag(args, "--dataset")?
        .ok_or_else(|| CliError("missing --dataset <name>".into()))?;
    let spec = DatasetSpec::by_name(name).ok_or_else(|| {
        CliError(format!(
            "unknown dataset '{name}'; run `hamlet datasets` for the list"
        ))
    })?;
    let scale: f64 = parse_flag(args, "--scale")?
        .map(|s| {
            s.parse()
                .map_err(|_| CliError(format!("bad --scale '{s}'")))
        })
        .transpose()?
        .unwrap_or(0.05);
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(CliError(format!("--scale must be in (0, 1], got {scale}")));
    }
    Ok((spec, scale))
}

/// Parses `--strategy factorize|materialize` into "factorize?" —
/// `None` when the flag is absent.
fn strategy_arg(args: &[String]) -> Result<Option<bool>, CliError> {
    match parse_flag(args, "--strategy")? {
        None => Ok(None),
        Some("factorize") => Ok(Some(true)),
        Some("materialize") => Ok(Some(false)),
        Some(other) => Err(CliError(format!(
            "--strategy must be 'factorize' or 'materialize', got '{other}'"
        ))),
    }
}

/// Runs one CLI invocation; `args` excludes the program name.
///
/// `--trace` and `--metrics` work on every subcommand: they append the
/// span tree / Prometheus metrics to the output, and either one also
/// appends a JSONL entry to the run journal (see [`RunJournal::dir`]).
pub fn run(args: &[String]) -> Result<String, CliError> {
    let trace = args.iter().any(|a| a == "--trace");
    let metrics = args.iter().any(|a| a == "--metrics");
    if !(trace || metrics) {
        return dispatch(args);
    }

    if trace {
        hamlet_obs::set_tracing(true);
    }
    let result = dispatch(args);
    hamlet_obs::set_tracing(false);
    let spans = hamlet_obs::drain_spans();

    let mut obs = String::new();
    if trace {
        obs.push_str(&hamlet_obs::render_span_tree(&spans));
        obs.push('\n');
    }
    if metrics {
        // Reads 0 when the running binary did not install the counting
        // allocator (e.g. the test harness); `hamlet` itself does.
        let peak = hamlet_obs::alloc::peak_bytes().unwrap_or(0);
        hamlet_obs::metrics::gauge("hamlet_peak_alloc_bytes").set_max(peak as u64);
        obs.push_str(&hamlet_obs::render_metrics());
        obs.push('\n');
    }

    let outcome = match &result {
        Ok(_) => "ok".to_string(),
        Err(e) => format!("error: {e}"),
    };
    let entry = RunJournal::capture(
        format!("hamlet {}", args.join(" ")),
        outcome,
        hamlet_obs::rollup(&spans),
    );
    match entry.append_to(&RunJournal::dir()) {
        Ok(path) => {
            let _ = writeln!(obs, "journal: {}", path.display());
        }
        Err(e) => eprintln!("warning: could not write run journal: {e}"),
    }

    result.map(|body| format!("{body}\n{obs}"))
}

fn dispatch(args: &[String]) -> Result<String, CliError> {
    let _span = hamlet_obs::span!(
        "cli.dispatch",
        cmd = args.first().map(String::as_str).unwrap_or("help")
    );
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(USAGE.to_string()),
        Some("datasets") => {
            let mut out = String::new();
            for spec in DatasetSpec::all() {
                let _ = writeln!(
                    out,
                    "{:<14} #Y={} n_S={} k={} ({} closed FKs)",
                    spec.name,
                    spec.n_classes,
                    spec.n_s,
                    spec.tables.len(),
                    spec.tables.iter().filter(|t| t.closed).count()
                );
            }
            Ok(out)
        }
        Some("advise") => {
            let (spec, scale) = dataset_arg(&args[1..])?;
            let relaxed = args.iter().any(|a| a == "--relaxed");
            let recommend_factorize = strategy_arg(&args[1..])?.unwrap_or(false);
            let g = spec.generate(scale, 20_160_626);
            let mut config = if relaxed {
                AdvisorConfig {
                    tr: TrRule::with_tau(RELAXED_TAU),
                    ror: RorRule::with_rho(RELAXED_RHO),
                    ..Default::default()
                }
            } else {
                AdvisorConfig::default()
            };
            config.recommend_factorize = recommend_factorize;
            let report = advise(&g.star, g.star.n_s() / 2, &config);
            let body = if args.iter().any(|a| a == "--markdown") {
                report.render_markdown()
            } else {
                report.render()
            };
            Ok(format!(
                "{} (scale {scale}{})\n{}",
                spec.name,
                if relaxed { ", relaxed thresholds" } else { "" },
                body
            ))
        }
        Some("train") => {
            let rest = &args[1..];
            let (spec, scale) = dataset_arg(rest)?;
            let model = parse_flag(rest, "--model")?.unwrap_or("nb");
            if !matches!(model, "nb" | "logreg") {
                return Err(CliError(format!(
                    "--model must be 'nb' or 'logreg', got '{model}'"
                )));
            }
            let factorize = strategy_arg(rest)?.unwrap_or(true);
            let g = spec.generate(scale, 20_160_626);
            let body = train_star(&g.star, model, factorize)?;
            Ok(format!(
                "{} (scale {scale}), model {model}\n{body}",
                spec.name
            ))
        }
        Some("profile") => {
            let (spec, scale) = dataset_arg(&args[1..])?;
            let g = spec.generate(scale, 20_160_626);
            Ok(profile_star(&g.star).render())
        }
        Some("advise-files") => {
            let rest = &args[1..];
            let file = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("missing <schema.manifest>".into()))?;
            let relaxed = rest.iter().any(|a| a == "--relaxed");
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let manifest = Manifest::parse(&text).map_err(|e| CliError(e.to_string()))?;
            let base = std::path::Path::new(file)
                .parent()
                .unwrap_or_else(|| std::path::Path::new("."));
            let star = manifest.load(base).map_err(|e| CliError(e.to_string()))?;
            let config = if relaxed {
                AdvisorConfig {
                    tr: TrRule::with_tau(RELAXED_TAU),
                    ror: RorRule::with_rho(RELAXED_RHO),
                    ..Default::default()
                }
            } else {
                AdvisorConfig::default()
            };
            let report = advise(&star, star.n_s() / 2, &config);
            let lints = lint_star(&star, &LintConfig::default());
            let mut out = format!("{}\n{}", profile_star(&star).render(), report.render());
            if !lints.is_empty() {
                out.push_str("\nData-quality warnings:\n");
                for l in lints {
                    out.push_str(&format!("  {l:?}\n"));
                }
            }
            Ok(out)
        }
        Some("csv-advise") => {
            let rest = &args[1..];
            let file = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError("missing <file.csv>".into()))?;
            let target = parse_flag(rest, "--target")?
                .ok_or_else(|| CliError("missing --target <col>".into()))?;
            let min_distinct: usize = parse_flag(rest, "--min-distinct")?
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError(format!("bad --min-distinct '{s}'")))
                })
                .transpose()?
                .unwrap_or(20);
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let numerics: Vec<(String, usize)> = parse_multi(rest, "--numeric")
                .into_iter()
                .map(|spec| {
                    let (name, bins) = spec.split_once(':').ok_or_else(|| {
                        CliError(format!("--numeric needs col:bins, got '{spec}'"))
                    })?;
                    let bins: usize = bins
                        .parse()
                        .map_err(|_| CliError(format!("bad bin count in '{spec}'")))?;
                    Ok((name.to_string(), bins))
                })
                .collect::<Result<_, CliError>>()?;
            let skips: Vec<&str> = parse_multi(rest, "--skip");
            csv_advise(&text, target, &numerics, &skips, min_distinct)
        }
        Some(other) => Err(CliError(format!("unknown subcommand '{other}'\n\n{USAGE}"))),
    }
}

/// The `train` pipeline: fits the requested classifier over `star`
/// under the 50/25/25 holdout protocol.
///
/// With `factorize`, training reads every joined column through FK
/// indirection (no `kfk_join` runs) and the output includes a parity
/// check against the materialized reference — the models must be
/// *identical*, not merely close, because both paths execute the same
/// float operations on the same codes.
pub fn train_star(star: &StarSchema, model: &str, factorize: bool) -> Result<String, CliError> {
    let err = |e: hamlet_relational::RelationalError| CliError(e.to_string());
    let perm: Vec<usize> = (0..star.n_s()).collect();
    let split = star.split_rows(&perm, 0.5, 0.25);

    // Materialized path: the subject under --strategy materialize, the
    // parity reference under --strategy factorize.
    let t0 = Instant::now();
    let wide = star.materialize_all().map_err(err)?;
    let data = Dataset::from_table(&wide);
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let (mat_err, mat_elapsed, nb_mat, lr_mat);
    match model {
        "nb" => {
            let m = NaiveBayes::default().fit(&data, &split.train, &feats);
            mat_elapsed = t0.elapsed();
            mat_err = zero_one_error(&m, &data, &split.test);
            nb_mat = Some(m);
            lr_mat = None;
        }
        _ => {
            let m = LogisticRegression::default().fit(&data, &split.train, &feats);
            mat_elapsed = t0.elapsed();
            mat_err = zero_one_error(&m, &data, &split.test);
            nb_mat = None;
            lr_mat = Some(m);
        }
    }
    if !factorize {
        return Ok(format!(
            "materialize: trained in {:.1} ms, holdout error {mat_err:.4}\n",
            mat_elapsed.as_secs_f64() * 1e3
        ));
    }

    let t1 = Instant::now();
    let view = FactorizedView::new(star).map_err(err)?;
    let (fac_err, fac_elapsed, parity);
    match model {
        "nb" => {
            let m = fit_factorized_nb(&view, &NaiveBayes::default(), &split.train, &feats)
                .map_err(err)?;
            fac_elapsed = t1.elapsed();
            fac_err = zero_one_error(&m, &view, &split.test);
            parity = nb_mat.as_ref() == Some(&m);
        }
        _ => {
            let m =
                fit_factorized_logreg(&view, &LogisticRegression::default(), &split.train, &feats);
            fac_elapsed = t1.elapsed();
            fac_err = zero_one_error(&m, &view, &split.test);
            parity = lr_mat
                .as_ref()
                .map(|r| r.weights() == m.weights() && r.bias() == m.bias())
                .unwrap_or(false);
        }
    }
    Ok(format!(
        "factorize: trained in {:.1} ms, holdout error {fac_err:.4}\n\
         materialized reference: trained in {:.1} ms, holdout error {mat_err:.4}\n\
         parity: {}\n\
         wide-table cells never allocated: {}\n",
        fac_elapsed.as_secs_f64() * 1e3,
        mat_elapsed.as_secs_f64() * 1e3,
        if parity {
            "exact (identical model)"
        } else {
            "MISMATCH"
        },
        view.cells_avoided()
    ))
}

/// The `csv-advise` pipeline on in-memory CSV text.
pub fn csv_advise(
    text: &str,
    target: &str,
    numerics: &[(String, usize)],
    skips: &[&str],
    min_distinct: usize,
) -> Result<String, CliError> {
    // Column specs: header-driven.
    let header = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| CliError("empty CSV".into()))?;
    let names: Vec<&str> = header.split(',').map(|h| h.trim_matches('"')).collect();
    if !names.contains(&target) {
        return Err(CliError(format!("target column '{target}' not in header")));
    }
    let specs: Vec<(&str, ColumnSpec)> = names
        .iter()
        .map(|&n| {
            let spec = if skips.contains(&n) {
                ColumnSpec::Skip
            } else if n == target {
                ColumnSpec::target(n)
            } else if let Some((_, bins)) = numerics.iter().find(|(c, _)| c == n) {
                ColumnSpec::numeric_feature(n, *bins)
            } else {
                ColumnSpec::feature(n)
            };
            (n, spec)
        })
        .collect();
    let wide = read_csv("wide", text, &specs, ',')
        .map_err(|e| CliError(format!("CSV parse error: {e}")))?;

    let mut out = format!(
        "Loaded {} rows x {} columns.\n",
        wide.n_rows(),
        wide.schema().len()
    );

    let inferred = infer_single_fds(&wide, min_distinct);
    let compatible = select_compatible_fds(&inferred);
    if compatible.is_empty() {
        out.push_str(
            "No functional dependencies found: the table appears to be fully normalized already.\n",
        );
        return Ok(out);
    }
    for fd in &compatible {
        let _ = writeln!(
            out,
            "Inferred FD: {} -> {}",
            fd.determinant[0],
            fd.dependents.join(", ")
        );
    }
    let star = decompose_star(&wide, &compatible)
        .map_err(|e| CliError(format!("decomposition failed: {e}")))?;
    let report = advise(&star, star.n_s() / 2, &AdvisorConfig::default());
    out.push('\n');
    out.push_str(&report.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.0.contains("unknown subcommand"));
    }

    #[test]
    fn datasets_lists_seven() {
        let out = run(&argv("datasets")).unwrap();
        assert_eq!(out.lines().count(), 7);
        assert!(out.contains("MovieLens1M"));
    }

    #[test]
    fn advise_on_builtin() {
        let out = run(&argv("advise --dataset walmart --scale 0.01")).unwrap();
        assert!(out.contains("AVOID the join"), "{out}");
        assert!(out.contains("Indicators"));
    }

    #[test]
    fn advise_relaxed_flips_flights_airports() {
        let strict = run(&argv("advise --dataset flights --scale 0.05")).unwrap();
        let relaxed = run(&argv("advise --dataset flights --scale 0.05 --relaxed")).unwrap();
        assert!(strict.contains("SrcAirports (via SrcAirportID): PERFORM"));
        assert!(relaxed.contains("SrcAirports (via SrcAirportID): AVOID"));
    }

    #[test]
    fn profile_prints_tr() {
        let out = run(&argv("profile --dataset yelp --scale 0.01")).unwrap();
        assert!(out.contains("TR ="), "{out}");
    }

    #[test]
    fn bad_args_are_reported() {
        assert!(run(&argv("advise")).unwrap_err().0.contains("--dataset"));
        assert!(run(&argv("advise --dataset nope"))
            .unwrap_err()
            .0
            .contains("unknown dataset"));
        assert!(run(&argv("advise --dataset yelp --scale 7"))
            .unwrap_err()
            .0
            .contains("--scale"));
        assert!(run(&argv("csv-advise")).unwrap_err().0.contains("file.csv"));
        assert!(run(&argv("train")).unwrap_err().0.contains("--dataset"));
        assert!(run(&argv("train --dataset yelp --model svm"))
            .unwrap_err()
            .0
            .contains("--model"));
        assert!(run(&argv("train --dataset yelp --strategy teleport"))
            .unwrap_err()
            .0
            .contains("--strategy"));
    }

    #[test]
    fn flag_without_value_is_an_error() {
        // Regression: `--scale` as the last token used to parse as
        // "flag absent" and silently run at the default scale.
        assert!(run(&argv("advise --dataset walmart --scale"))
            .unwrap_err()
            .0
            .contains("--scale requires a value"));
        assert!(run(&argv("advise --scale --relaxed --dataset walmart"))
            .unwrap_err()
            .0
            .contains("--scale requires a value"));
        assert!(run(&argv("advise --dataset walmart --dataset yelp"))
            .unwrap_err()
            .0
            .contains("more than once"));
    }

    #[test]
    fn trace_and_metrics_produce_observability_output_and_a_journal() {
        use hamlet_obs::json::Json;
        let dir = std::env::temp_dir().join("hamlet_cli_journal_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("HAMLET_JOURNAL_DIR", &dir);
        let out = run(&argv(
            "train --dataset walmart --scale 0.01 --trace --metrics",
        ))
        .unwrap();
        std::env::remove_var("HAMLET_JOURNAL_DIR");

        // Span tree with the instrumented hot paths.
        assert!(out.contains("span tree"), "{out}");
        assert!(out.contains("relational.materialize"), "{out}");
        assert!(out.contains("factorized.build_view"), "{out}");
        assert!(out.contains("ml.nb_fit"), "{out}");
        // Prometheus metrics, including the paper-facing ones.
        assert!(
            out.contains("# TYPE hamlet_rows_joined_total counter"),
            "{out}"
        );
        assert!(out.contains("hamlet_wide_cells_avoided_total"), "{out}");
        assert!(out.contains("hamlet_nb_fits_total"), "{out}");
        // Journal written and parseable.
        assert!(out.contains("journal: "), "{out}");
        let text = std::fs::read_to_string(dir.join("runs.jsonl")).unwrap();
        let line = text.lines().last().unwrap();
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
        assert!(v
            .get("command")
            .and_then(Json::as_str)
            .unwrap()
            .contains("train --dataset walmart"));
        assert!(v
            .get("spans")
            .and_then(Json::as_arr)
            .is_some_and(|s| !s.is_empty()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_without_trace_records_no_spans() {
        let dir = std::env::temp_dir().join("hamlet_cli_metrics_only_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("HAMLET_JOURNAL_DIR", &dir);
        let out = run(&argv("profile --dataset walmart --scale 0.01 --metrics")).unwrap();
        std::env::remove_var("HAMLET_JOURNAL_DIR");
        assert!(!out.contains("span tree"), "{out}");
        assert!(out.contains("# TYPE"), "{out}");
        assert!(dir.join("runs.jsonl").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_strategy_factorize() {
        let out = run(&argv(
            "advise --dataset flights --scale 0.05 --strategy factorize",
        ))
        .unwrap();
        assert!(out.contains("FACTORIZE the join"), "{out}");
        assert!(out.contains("cells"), "{out}");
    }

    #[test]
    fn train_nb_factorized_parity() {
        let out = run(&argv("train --dataset walmart --scale 0.01 --model nb")).unwrap();
        assert!(out.contains("parity: exact (identical model)"), "{out}");
        assert!(out.contains("wide-table cells never allocated"), "{out}");
    }

    #[test]
    fn train_logreg_factorized_parity() {
        let out = run(&argv(
            "train --dataset walmart --scale 0.01 --model logreg --strategy factorize",
        ))
        .unwrap();
        assert!(out.contains("model logreg"), "{out}");
        assert!(out.contains("parity: exact (identical model)"), "{out}");
    }

    #[test]
    fn train_materialize_only() {
        let out = run(&argv(
            "train --dataset walmart --scale 0.01 --strategy materialize",
        ))
        .unwrap();
        assert!(out.contains("materialize: trained in"), "{out}");
        assert!(!out.contains("parity"), "{out}");
    }

    #[test]
    fn csv_advise_pipeline() {
        // userid determines age; 40 users x 100 rows each.
        let mut csv = String::from("stars,userid,age\n");
        for i in 0..4000 {
            let u = i % 40;
            let _ = writeln!(csv, "{},u{},a{}", (u + i / 40) % 5, u, u % 7);
        }
        let out = csv_advise(&csv, "stars", &[], &[], 20).unwrap();
        assert!(out.contains("Inferred FD: userid -> age"), "{out}");
        assert!(out.contains("AVOID the join"), "{out}");
    }

    #[test]
    fn csv_advise_normalized_input() {
        let mut csv = String::from("y,a,b\n");
        for i in 0..100 {
            let _ = writeln!(csv, "{},{},{}", i % 2, i % 7, (i / 3) % 5);
        }
        let out = csv_advise(&csv, "y", &[], &[], 5).unwrap();
        assert!(out.contains("fully normalized"), "{out}");
    }

    #[test]
    fn csv_advise_numeric_and_skip() {
        let mut csv = String::from("y,u,age,junk\n");
        for i in 0..2000 {
            let u = i % 40;
            let _ = writeln!(csv, "{},u{},{}.5,x{}", i % 2, u, 20 + u % 9, i);
        }
        let numerics = vec![("age".to_string(), 8usize)];
        let out = csv_advise(&csv, "y", &numerics, &["junk"], 20).unwrap();
        assert!(out.contains("x 3 columns"), "{out}");
        assert!(out.contains("Inferred FD: u -> age"), "{out}");
    }

    #[test]
    fn csv_advise_missing_target() {
        let csv = "a,b\n1,2\n";
        assert!(csv_advise(csv, "zzz", &[], &[], 2)
            .unwrap_err()
            .0
            .contains("target"));
    }
}

#[cfg(test)]
mod manifest_cli_tests {
    use super::*;
    use std::fmt::Write;

    #[test]
    fn advise_files_end_to_end() {
        let dir = std::env::temp_dir().join("hamlet_cli_manifest");
        std::fs::create_dir_all(&dir).unwrap();
        // 50 employers x 100 customers each: TR = 50 -> safe to avoid.
        let mut customers = String::from("Churn,Age,EmployerID\n");
        for i in 0..5000 {
            let e = i % 50;
            let _ = writeln!(customers, "{},{},e{}", (e + i / 50) % 2, 20 + i % 40, e);
        }
        let mut employers = String::from("EmployerID,Country\n");
        for e in 0..50 {
            let _ = writeln!(employers, "e{},c{}", e, e % 8);
        }
        std::fs::write(dir.join("customers.csv"), customers).unwrap();
        std::fs::write(dir.join("employers.csv"), employers).unwrap();
        let manifest = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";
        let mpath = dir.join("schema.manifest");
        std::fs::write(&mpath, manifest).unwrap();

        let out = run(&["advise-files".to_string(), mpath.display().to_string()]).unwrap();
        assert!(out.contains("TR = 50.0"), "{out}");
        assert!(out.contains("AVOID the join"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn advise_files_missing_manifest() {
        let err = run(&["advise-files".to_string(), "/no/such/file".to_string()]).unwrap_err();
        assert!(err.0.contains("cannot read"));
    }
}

#[cfg(test)]
mod markdown_cli_tests {
    use super::*;

    #[test]
    fn advise_markdown_flag() {
        let args: Vec<String> = "advise --dataset walmart --scale 0.01 --markdown"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let out = run(&args).unwrap();
        assert!(out.contains("| Table | FK |"), "{out}");
        assert!(out.contains("**avoid**"));
    }
}
